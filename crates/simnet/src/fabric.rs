//! The communication fabric shared by all ranks of a [`World`].
//!
//! The fabric owns, for every communicator context, one mailbox per
//! member (a FIFO queue guarded by a mutex + condvar). Directed receive
//! (`recv(from)`) is implemented by the receiving rank stashing
//! out-of-order messages — messages from one sender to one receiver stay
//! FIFO because they travel through a single queue and a FIFO stash.
//!
//! The fabric also hosts the rendezvous state for **communicator splits**
//! (the MPI `comm_split` equivalent): a split is a collective, so all
//! members of the parent communicator deposit their `(color, key)` and the
//! last one to arrive partitions the members into groups, allocates one
//! fresh context per group, and wakes everyone.
//!
//! Every blocking point (mailbox receive, split rendezvous, the world
//! barrier) is instrumented for the [`verify`](crate::verify) layer: the
//! blocking rank registers what it waits for, waits with a short timeout
//! so it can observe a verifier abort, and is torn down with an
//! `AbortPanic` when the world is aborted. `Fabric::watchdog_scan`
//! implements the deadlock detector that runs
//! over those registrations.
//!
//! Lock ordering (to keep the fabric itself deadlock-free):
//! mailbox map → mailbox queue → verify slot; splits map → split state →
//! (state dropped) → splits map; barrier state → verify slot. The
//! watchdog never holds a verify slot while taking a fabric lock — it
//! snapshots the slots first.
//!
//! [`World`]: crate::world::World

use std::collections::{HashMap, HashSet, VecDeque};
use std::future::Future;
use std::panic::Location;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{
    Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};
use std::task::{Context, Poll};
use std::time::Duration;

use crate::fault::{FaultKick, FaultPlan, FaultState, MsgMeta};
use crate::readyset::ReadySet;
use crate::trace::{BlockPoint, ChoicePoint, Repro, Resource, SchedEvent, Schedule, ScheduleTrace};
use crate::verify::{lock_unpoisoned, CollectiveOp, SlotView, VerifyState, WaitInfo, WaitKind};

/// Identifier of a communicator context. Every communicator created during
/// a run has a distinct context, so traffic on different communicators can
/// never be confused.
pub type Ctx = u64;

/// Context id of the world communicator (created by [`Fabric::new`]).
pub(crate) const WORLD_CTX: Ctx = 0;

/// How often a blocked primitive re-checks the abort flag. Waits are
/// condvar-notified, so this only bounds the wake-up delay if a
/// notification is missed — it is not a busy-wait interval.
const ABORT_POLL: Duration = Duration::from_millis(100);

/// Largest world for which barrier/split waits record their full
/// `waiting_on` rank lists. Building the list is O(P) per blocked
/// arrival and storing it O(P) per waiter — an O(P^2) time/memory term —
/// so past this size waits record an empty list. Deadlock detection on
/// the event-loop engine is counter-based and does not consult the
/// lists; only report verbosity (and the thread-backend watchdog's
/// wait-for edges, irrelevant at thread-impossible P) degrades.
const WAIT_LIST_MAX_WORLD: usize = 4096;

fn read_unpoisoned<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

fn write_unpoisoned<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

/// A message in flight.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sender's index *within the communicator* the message was sent on.
    pub from: usize,
    /// Sender's clock when the send was posted (used for critical-path
    /// accounting on the receiving side).
    pub sent_at: f64,
    /// The data; its length is the metered word count.
    pub payload: Vec<f64>,
    /// Sender's vector clock at send time (happens-before audit; see
    /// `crate::verify`).
    pub(crate) vclock: Option<Arc<[u64]>>,
    /// Reliable-delivery metadata (sequence number + checksum); present
    /// iff the world runs with a fault plan.
    pub(crate) meta: Option<MsgMeta>,
}

struct Mailbox {
    q: Mutex<VecDeque<Message>>,
    cv: Condvar,
}

/// Result of a communicator split for a single color.
///
/// `members` is shared behind an `Arc`: the group is computed once at the
/// rendezvous and every member's `Comm` points at the same vector, so a
/// world-sized split costs one member list per *group*, not one per rank
/// (an O(P^2) memory term at 10^5–10^6 ranks otherwise).
#[derive(Debug, Clone)]
pub(crate) struct SplitGroup {
    pub ctx: Ctx,
    /// World ranks of the members, ordered by `(key, parent index)`.
    pub members: Arc<Vec<usize>>,
}

struct SplitState {
    /// `(color, key, world_rank)` per parent index; `None` until deposited.
    entries: Vec<Option<(i64, i64, usize)>>,
    /// Parent communicator's world ranks (so the fault layer can count
    /// which members are still alive).
    parent_members: Vec<usize>,
    arrived: usize,
    consumed: usize,
    /// color -> group; populated by the last live rank to arrive.
    result: Option<Arc<HashMap<i64, SplitGroup>>>,
}

struct SplitCell {
    state: Mutex<SplitState>,
    cv: Condvar,
}

struct BarrierState {
    /// Which world ranks have arrived in the current generation.
    arrived: Vec<bool>,
    count: usize,
    generation: u64,
}

struct BarrierCell {
    st: Mutex<BarrierState>,
    cv: Condvar,
}

/// SplitMix64 step — the scheduler's tie-breaking PRNG, also the mixer
/// behind every fault-injection decision (see [`crate::fault`]). Tiny,
/// seedable, and fully deterministic, which is all either client needs.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A rank's state in the deterministic scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RankStatus {
    /// Thread not yet started; nobody runs until all ranks attach.
    NotAttached,
    /// Runnable (or currently running, when it also holds the baton).
    Ready,
    /// Parked at a blocking point whose condition was unmet when checked.
    Blocked,
    /// Program finished (normally or by unwinding).
    Done,
}

struct SchedInner {
    /// SplitMix64 state, seeded from the schedule seed (untouched in
    /// prefix-replay mode).
    rng: u64,
    /// Next index into the prefix when the schedule is
    /// [`Schedule::Prefix`]; counts picks either way.
    cursor: usize,
    status: Vec<RankStatus>,
    attached: usize,
    /// The rank holding the execution baton, if any.
    current: Option<usize>,
    /// Whether to materialize the event log and [`ChoicePoint`] stream.
    /// Off for scale runs: recording is O(picks) memory plus an O(P)
    /// runnable-set snapshot per pick.
    record: bool,
    /// Opt-in targeted-wakeup policy: a progress event re-readies only
    /// the ranks blocked on the touched resource instead of every
    /// blocked rank. Changes seeded pick streams (fewer spurious
    /// re-checks), so the default stays broadcast — golden traces and
    /// DPOR certificates pin the broadcast schedules.
    targeted: bool,
    /// Order-statistics mirror of the `Ready` entries of `status`;
    /// `select(k)` is the k-th smallest runnable rank.
    ready: ReadySet,
    /// Number of `Blocked` entries of `status`.
    blocked: usize,
    /// Number of `NotAttached` entries of `status`.
    not_attached: usize,
    /// Broadcast-policy wake list: every currently-blocked rank, drained
    /// on each progress event (amortized O(1) per block, where scanning
    /// `status` would be O(P) per post).
    blocked_list: Vec<usize>,
    /// What each blocked rank blocks on (wake-key; `None` when not
    /// blocked). Guards stale targeted-wakeup registrations.
    blocked_on: Vec<Option<Resource>>,
    /// Targeted-policy wake lists, keyed by blocking resource.
    waiters: HashMap<Resource, Vec<usize>>,
    /// Totally-ordered event log (appended under this mutex).
    events: Vec<SchedEvent>,
    /// First-class pick stream: one entry per scheduler pick, carrying
    /// the runnable set, the chosen rank, and (filled in as the segment
    /// executes) the fabric resources the segment touched.
    choices: Vec<ChoicePoint>,
}

impl SchedInner {
    fn push_event(&mut self, ev: SchedEvent) {
        if self.record {
            self.events.push(ev);
        }
    }

    fn touch(&mut self, res: Resource) {
        if let Some(cp) = self.choices.last_mut() {
            if !cp.touched.contains(&res) {
                cp.touched.push(res);
            }
        }
    }

    fn mark_attached(&mut self, r: usize) {
        debug_assert_eq!(self.status[r], RankStatus::NotAttached);
        self.status[r] = RankStatus::Ready;
        self.ready.insert(r);
        self.not_attached -= 1;
        self.attached += 1;
    }

    fn mark_blocked(&mut self, r: usize, key: Resource) {
        debug_assert_eq!(self.status[r], RankStatus::Ready);
        self.status[r] = RankStatus::Blocked;
        self.ready.remove(r);
        self.blocked += 1;
        self.blocked_on[r] = Some(key);
        if self.targeted {
            self.waiters.entry(key).or_default().push(r);
        } else {
            self.blocked_list.push(r);
        }
    }

    fn mark_unblocked(&mut self, r: usize) {
        debug_assert_eq!(self.status[r], RankStatus::Blocked);
        self.status[r] = RankStatus::Ready;
        self.ready.insert(r);
        self.blocked -= 1;
        self.blocked_on[r] = None;
    }

    fn mark_done(&mut self, r: usize) {
        match self.status[r] {
            RankStatus::Ready => self.ready.remove(r),
            RankStatus::Blocked => {
                self.blocked -= 1;
                self.blocked_on[r] = None;
            }
            RankStatus::NotAttached => self.not_attached -= 1,
            RankStatus::Done => {}
        }
        self.status[r] = RankStatus::Done;
    }

    /// Re-ready every blocked rank (broadcast progress event). Unblock
    /// order is irrelevant — readiness is a set, and the next pick is a
    /// function of the set — so draining the policy-specific structures
    /// in their own order preserves determinism.
    fn unblock_all(&mut self) {
        if self.targeted {
            let waiters = std::mem::take(&mut self.waiters);
            for (key, list) in waiters {
                for r in list {
                    if self.status[r] == RankStatus::Blocked && self.blocked_on[r] == Some(key) {
                        self.mark_unblocked(r);
                    }
                }
            }
        } else {
            let list = std::mem::take(&mut self.blocked_list);
            for r in list {
                if self.status[r] == RankStatus::Blocked {
                    self.mark_unblocked(r);
                }
            }
        }
    }

    /// Re-ready only the ranks blocked on `key` (targeted policy).
    fn unblock_key(&mut self, key: Resource) {
        if let Some(list) = self.waiters.remove(&key) {
            for r in list {
                if self.status[r] == RankStatus::Blocked && self.blocked_on[r] == Some(key) {
                    self.mark_unblocked(r);
                }
            }
        }
    }
}

/// Cooperative deterministic scheduler: present iff the world was built
/// with [`World::with_seed`](crate::World::with_seed) or
/// [`World::with_schedule`](crate::World::with_schedule). Exactly one
/// rank runs at a time; the baton changes hands at every blocking point
/// and at every send / collective entry. Ties among runnable ranks are
/// resolved by the [`Schedule`]: a [`splitmix64`] draw when seeded, or
/// by following a recorded choice prefix (then always picking the
/// smallest runnable rank — the *canonical completion*) when replaying.
/// All scheduling decisions and fabric events are appended to `events`
/// under one mutex, so the log is totally ordered and identical
/// `(program, schedule)` pairs replay byte-identically.
struct DetState {
    schedule: Schedule,
    st: Mutex<SchedInner>,
    cv: Condvar,
}

/// What [`Fabric::sched_pick_locked`] decided.
#[derive(Debug, Clone, PartialEq, Eq)]
enum PickOutcome {
    /// The baton was handed to a runnable rank.
    Picked,
    /// Nobody is runnable, but nobody is blocked either (everyone done
    /// or still attaching) — nothing to do.
    Idle,
    /// Provable deadlock: nobody runnable, nobody attaching, at least
    /// one rank blocked.
    Deadlock,
    /// Prefix replay named a rank that is not runnable at this pick —
    /// the prefix does not correspond to a reachable branch of this
    /// program's schedule tree.
    Diverged {
        /// The rank the prefix demanded.
        wanted: usize,
        /// Zero-based pick index at which it diverged.
        at: usize,
    },
}

/// What a [`BatonYield`] does on its first poll (the scheduler-visible
/// event of the yield point it encodes).
#[derive(Debug, Clone, Copy)]
enum YieldAction {
    Post { from_world: usize, ctx: Ctx, to_world: usize, words: u64 },
    Collective { rank: usize, ctx: Ctx, op: CollectiveOp, elems: u64 },
    Block { rank: usize, point: BlockPoint },
}

/// The one suspension point of the event-loop engine: a future whose
/// first poll performs a scheduler yield (recording the event and
/// handing the baton to the next pick) and which completes when the
/// scheduler hands the baton back to `rank`.
///
/// The executor upholds the invariant that only the rank named by the
/// scheduler's `current` is ever polled, so a poll observing
/// `current == Some(rank)` *is* baton possession — the async analogue of
/// returning from `sched_wait_for_baton`, with no condvar involved.
pub(crate) struct BatonYield<'f> {
    fabric: &'f Fabric,
    rank: usize,
    action: Option<YieldAction>,
}

impl Future for BatonYield<'_> {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        // All fields are Unpin, so plain mutable access is fine.
        let me = &mut *self;
        if let Some(action) = me.action.take() {
            me.fabric.sched_yield_action(action);
        }
        if me.fabric.sched_baton_ready(me.rank) {
            Poll::Ready(())
        } else {
            Poll::Pending
        }
    }
}

/// The shared fabric. One per [`World`](crate::world::World); ranks hold it
/// behind an `Arc`.
pub struct Fabric {
    next_ctx: AtomicU64,
    mailboxes: RwLock<HashMap<(Ctx, usize), Arc<Mailbox>>>,
    splits: Mutex<HashMap<(Ctx, u64), Arc<SplitCell>>>,
    /// Zero-cost world barrier, for callers that need to delimit phases
    /// without perturbing the metered costs.
    barrier: BarrierCell,
    /// Communication-correctness state (wait registry, collective ledger,
    /// abort flag).
    pub(crate) verify: VerifyState,
    /// Deterministic scheduler; `None` in free-running (default) mode.
    det: Option<DetState>,
    /// Fault-injection state; `None` when the world has no fault plan
    /// (the default), in which case every fault hook is a no-op and the
    /// fabric behaves byte-identically to the pre-fault-layer code.
    fault: Option<FaultState>,
    /// True when the single-threaded event-loop engine drives this world:
    /// rank primitives suspend their continuation (return `Pending`) at
    /// yield points instead of parking an OS thread on a condvar.
    event_loop: bool,
}

impl Fabric {
    pub(crate) fn new(world_size: usize) -> Fabric {
        Fabric {
            next_ctx: AtomicU64::new(1),
            mailboxes: RwLock::new(HashMap::new()),
            splits: Mutex::new(HashMap::new()),
            barrier: BarrierCell {
                st: Mutex::new(BarrierState {
                    arrived: vec![false; world_size],
                    count: 0,
                    generation: 0,
                }),
                cv: Condvar::new(),
            },
            verify: VerifyState::new(world_size),
            det: None,
            fault: None,
            event_loop: false,
        }
    }

    /// Switch this fabric into event-loop mode (see the `event_loop`
    /// field). Requires a deterministic schedule; must run before any
    /// rank program starts.
    pub(crate) fn enable_event_loop(&mut self) {
        assert!(
            self.det.is_some(),
            "pmm-simnet: the event-loop engine requires a deterministic schedule"
        );
        self.event_loop = true;
    }

    /// Whether the event-loop engine drives this world.
    pub(crate) fn is_event_loop(&self) -> bool {
        self.event_loop
    }

    /// Attach a fault plan (validated) with its resolved decision seed.
    /// Like [`Fabric::enable_det`], must run before any rank starts.
    pub(crate) fn enable_faults(&mut self, plan: FaultPlan, seed: u64) {
        plan.validate();
        self.fault = Some(FaultState::new(plan, seed, self.verify.world_size()));
    }

    /// The attached fault state, if any.
    pub(crate) fn fault(&self) -> Option<&FaultState> {
        self.fault.as_ref()
    }

    /// Current fault epoch (0 when no plan is attached or nobody died).
    pub(crate) fn fault_epoch(&self) -> u64 {
        self.fault.as_ref().map_or(0, FaultState::epoch)
    }

    /// World ranks killed so far (empty without a plan).
    pub(crate) fn dead_ranks(&self) -> Vec<usize> {
        self.fault.as_ref().map_or_else(Vec::new, FaultState::dead_ranks)
    }

    fn is_dead_rank(&self, world_rank: usize) -> bool {
        self.fault.as_ref().is_some_and(|f| f.is_dead(world_rank))
    }

    /// Record the death of `world_rank` and propagate it: note it for the
    /// failure report, bump the fault epoch, count the corpse as arrived
    /// in the world barrier, complete any split rendezvous that was only
    /// waiting on dead ranks, and wake every blocked primitive so
    /// survivors re-check their conditions (and observe the new epoch).
    pub(crate) fn mark_rank_dead(&self, world_rank: usize, note: String) {
        let Some(fault) = &self.fault else { return };
        if !fault.mark_dead(world_rank) {
            return;
        }
        self.verify.note_rank_failure(note);
        {
            let mut st = lock_unpoisoned(&self.barrier.st);
            self.barrier_sweep_dead_locked(&mut st);
        }
        let cells: Vec<Arc<SplitCell>> = lock_unpoisoned(&self.splits).values().cloned().collect();
        for cell in cells {
            let mut st = lock_unpoisoned(&cell.state);
            self.split_try_complete(&mut st);
        }
        self.wake_all_primitives();
        self.sched_unblock_all();
    }

    /// Mark every dead, not-yet-arrived rank as arrived in the current
    /// barrier generation; release the barrier if that completes it.
    /// No-op without a fault plan.
    fn barrier_sweep_dead_locked(&self, st: &mut BarrierState) {
        let Some(fault) = &self.fault else { return };
        let n = st.arrived.len();
        for r in 0..n {
            if !st.arrived[r] && fault.is_dead(r) {
                st.arrived[r] = true;
                st.count += 1;
            }
        }
        if st.count == n && n > 0 {
            st.count = 0;
            st.arrived.iter_mut().for_each(|a| *a = false);
            st.generation += 1;
            self.barrier.cv.notify_all();
        }
    }

    /// Notify every fabric condvar (blocked receives, split rendezvous,
    /// the barrier, the scheduler baton) so parked ranks re-check state.
    fn wake_all_primitives(&self) {
        let mailboxes: Vec<Arc<Mailbox>> =
            read_unpoisoned(&self.mailboxes).values().cloned().collect();
        for mb in mailboxes {
            mb.cv.notify_all();
        }
        let cells: Vec<Arc<SplitCell>> = lock_unpoisoned(&self.splits).values().cloned().collect();
        for cell in cells {
            cell.cv.notify_all();
        }
        self.barrier.cv.notify_all();
        if let Some(det) = &self.det {
            det.cv.notify_all();
        }
    }

    /// Whether a rank inside a failure-catching scope (watching from
    /// `watch`) should be kicked out of a blocking wait because the fault
    /// epoch moved under it.
    fn fault_kicked(&self, fault_watch: Option<u64>) -> bool {
        fault_watch.is_some_and(|watch| self.fault_epoch() > watch)
    }

    /// Whether a watched directed receive must abandon its wait: the
    /// fault epoch moved past the watermark, **or** the awaited peer is
    /// already dead. The second arm matters when the peer died between
    /// this rank's last dead-set read and the arming of its catch scope
    /// — that death never bumps the epoch again, so the watermark alone
    /// would leave the receiver blocked on a corpse forever.
    fn recv_fault_kicked(&self, fault_watch: Option<u64>, from_world: usize) -> bool {
        fault_watch.is_some() && (self.fault_kicked(fault_watch) || self.is_dead_rank(from_world))
    }

    /// Switch this fabric into deterministic scheduling mode under a
    /// [`Schedule`]. Must be called before any rank thread starts (the
    /// world does this between constructing the fabric and spawning
    /// ranks). `record` controls event-log/`ChoicePoint` materialization
    /// and `targeted` the wake-up policy — see the `SchedInner` field
    /// docs; `(true, false)` reproduces the seed-era behavior bit for
    /// bit.
    pub(crate) fn enable_schedule(&mut self, schedule: Schedule, record: bool, targeted: bool) {
        let n = self.verify.world_size();
        let rng = match &schedule {
            Schedule::Seeded(seed) => *seed,
            Schedule::Prefix(_) => 0,
        };
        self.det = Some(DetState {
            schedule,
            st: Mutex::new(SchedInner {
                rng,
                cursor: 0,
                status: vec![RankStatus::NotAttached; n],
                attached: 0,
                current: None,
                record,
                targeted,
                ready: ReadySet::new(n),
                blocked: 0,
                not_attached: n,
                blocked_list: Vec::new(),
                blocked_on: vec![None; n],
                waiters: HashMap::new(),
                events: Vec::new(),
                choices: Vec::new(),
            }),
            cv: Condvar::new(),
        });
    }

    /// The canonical replay recipe for this fabric's schedule, if
    /// deterministic mode is on. In prefix mode the recipe names the
    /// choices *actually made so far* (not just the configured prefix),
    /// so a failure deep in the canonical completion still replays.
    pub(crate) fn sched_repro(&self) -> Option<Repro> {
        let det = self.det.as_ref()?;
        let st = lock_unpoisoned(&det.st);
        Some(Self::sched_repro_locked(det, &st))
    }

    fn sched_repro_locked(det: &DetState, st: &SchedInner) -> Repro {
        match &det.schedule {
            Schedule::Seeded(seed) => Repro::Seed(*seed),
            Schedule::Prefix(_) => Repro::Prefix(st.choices.iter().map(|c| c.chosen).collect()),
        }
    }

    /// Extract the recorded schedule trace (deterministic mode only).
    /// Prefix-replay runs report seed 0 in the trace header; their
    /// identity is the choice prefix, not a seed.
    pub(crate) fn take_sched_trace(&self) -> Option<ScheduleTrace> {
        let det = self.det.as_ref()?;
        let mut st = lock_unpoisoned(&det.st);
        if !st.record {
            return None;
        }
        let seed = match &det.schedule {
            Schedule::Seeded(seed) => *seed,
            Schedule::Prefix(_) => 0,
        };
        Some(ScheduleTrace { seed, events: std::mem::take(&mut st.events) })
    }

    /// Extract the recorded [`ChoicePoint`] stream (deterministic mode
    /// only).
    pub(crate) fn take_choice_points(&self) -> Option<Vec<ChoicePoint>> {
        let det = self.det.as_ref()?;
        let mut st = lock_unpoisoned(&det.st);
        if !st.record {
            return None;
        }
        Some(std::mem::take(&mut st.choices))
    }

    /// Record that the currently-running segment touched `res` — the
    /// resource-footprint hook behind every mailbox post/pop, split
    /// deposit, barrier arrival, and collective registration. Appends to
    /// the latest [`ChoicePoint`] (deduplicated). No-op in free-running
    /// mode. Callers may hold a primitive lock: the established lock
    /// order is primitive → scheduler, never the reverse.
    pub(crate) fn det_touch(&self, res: Resource) {
        let Some(det) = &self.det else { return };
        lock_unpoisoned(&det.st).touch(res);
    }

    // ----- deterministic scheduler ------------------------------------------

    /// Rank start barrier: register this rank with the scheduler and wait
    /// for the baton. The last rank to attach triggers the first pick, so
    /// no program code runs before every rank is registered. No-op in
    /// free-running mode.
    pub(crate) fn sched_attach(&self, r: usize) {
        let Some(det) = &self.det else { return };
        let mut st = lock_unpoisoned(&det.st);
        st.mark_attached(r);
        if st.attached == st.status.len() {
            self.sched_pick_and_wait(det, st, r);
        } else {
            self.sched_wait_for_baton(det, st, r);
        }
    }

    /// Event-loop analogue of per-thread [`Fabric::sched_attach`]:
    /// register every rank at once and trigger the first pick (the same
    /// pick, from the same PRNG state, that the last attaching thread
    /// would have triggered). The executor then polls whichever rank
    /// holds the baton.
    pub(crate) fn sched_attach_all(&self) {
        let Some(det) = &self.det else { return };
        let mut st = lock_unpoisoned(&det.st);
        let n = st.status.len();
        for r in 0..n {
            st.mark_attached(r);
        }
        match Self::sched_pick_locked(det, &mut st) {
            PickOutcome::Picked | PickOutcome::Idle => {}
            // All ranks are ready, so the first pick cannot deadlock; a
            // prefix can still demand an out-of-range rank.
            PickOutcome::Deadlock => unreachable!("deadlock with every rank runnable"),
            PickOutcome::Diverged { wanted, at } => {
                let report = Self::diverged_report(det, &st, wanted, at);
                drop(st);
                self.abort(report);
            }
        }
    }

    /// Release the baton at a blocking point whose condition is unmet;
    /// returns once this rank is picked again (the caller then re-checks
    /// its condition and re-blocks if still unmet). Detects deadlock
    /// synchronously: if no rank is runnable while some rank is blocked,
    /// every blocked rank has re-checked its condition since the last
    /// progress event (each progress event re-readies all blocked ranks),
    /// so no wake-up can ever come — abort with a deadlock report.
    fn sched_block(&self, r: usize, point: BlockPoint) {
        let Some(det) = &self.det else { return };
        let mut st = lock_unpoisoned(&det.st);
        Self::sched_block_locked(&mut st, r, point);
        self.sched_pick_and_wait(det, st, r);
    }

    /// Shared body of the thread-backend [`Fabric::sched_block`] and the
    /// event-loop block yield: park `r`, log the event, charge the
    /// blocking resource to the running segment's footprint, and release
    /// the baton. The failed condition check *read* the blocking
    /// resource: a reordering against whoever writes it would change
    /// what this segment observed, so it belongs to the footprint.
    fn sched_block_locked(st: &mut SchedInner, r: usize, point: BlockPoint) {
        let res = match point {
            BlockPoint::Recv { ctx, index } => Resource::Mailbox { ctx, index },
            BlockPoint::Split { ctx, seq } => Resource::SplitCell { ctx, seq },
            BlockPoint::Barrier { .. } => Resource::Barrier,
        };
        st.mark_blocked(r, res);
        st.push_event(SchedEvent::Block { rank: r, point });
        st.touch(res);
        if st.current == Some(r) {
            st.current = None;
        }
    }

    /// Re-ready every blocked rank after a progress event (message post,
    /// split result, barrier release). The caller keeps the baton; the
    /// re-readied ranks re-check their conditions when next picked.
    fn sched_unblock_all(&self) {
        let Some(det) = &self.det else { return };
        lock_unpoisoned(&det.st).unblock_all();
    }

    /// Progress event on `key`: under the default broadcast policy every
    /// blocked rank is re-readied (what the golden traces pin); under
    /// the opt-in targeted policy only the ranks blocked on `key` wake.
    fn sched_wake(&self, key: Resource) {
        let Some(det) = &self.det else { return };
        let mut st = lock_unpoisoned(&det.st);
        if st.targeted {
            st.unblock_key(key);
        } else {
            st.unblock_all();
        }
    }

    /// Record a message post in the schedule trace and yield the baton
    /// (the sender stays runnable and may be re-picked immediately).
    pub(crate) fn sched_post_event(
        &self,
        from_world: usize,
        ctx: Ctx,
        to_world: usize,
        words: u64,
    ) {
        let Some(det) = &self.det else { return };
        let mut st = lock_unpoisoned(&det.st);
        st.push_event(SchedEvent::Post { from_world, ctx, to_world, words });
        self.sched_pick_and_wait(det, st, from_world);
    }

    /// Record a collective entry in the schedule trace and yield the
    /// baton, exactly like [`Fabric::sched_post_event`]. The ledger
    /// registration that precedes this call is part of the segment's
    /// footprint.
    pub(crate) fn sched_collective_event(
        &self,
        rank: usize,
        ctx: Ctx,
        op: CollectiveOp,
        elems: u64,
    ) {
        let Some(det) = &self.det else { return };
        let mut st = lock_unpoisoned(&det.st);
        st.push_event(SchedEvent::Collective { rank, ctx, op, elems });
        st.touch(Resource::Ledger { ctx });
        self.sched_pick_and_wait(det, st, rank);
    }

    /// Retire this rank from the scheduler (called from the world's rank
    /// teardown guard, so it also runs when the program unwinds). If the
    /// departing rank held the baton and everyone left is blocked, that
    /// is a deadlock — abort so the blocked ranks tear down instead of
    /// waiting on a rank that no longer exists.
    pub(crate) fn sched_finish(&self, r: usize) {
        let Some(det) = &self.det else { return };
        let mut st = lock_unpoisoned(&det.st);
        st.mark_done(r);
        st.push_event(SchedEvent::Done { rank: r });
        if st.current == Some(r) {
            st.current = None;
            if self.verify.is_aborted() {
                det.cv.notify_all();
                return;
            }
            match Self::sched_pick_locked(det, &mut st) {
                PickOutcome::Picked | PickOutcome::Idle => {}
                // No abort_panic on the failure arms: this may run inside
                // a Drop while the rank is already unwinding. The blocked
                // ranks observe the abort flag in their baton waits and
                // tear themselves down.
                PickOutcome::Deadlock => {
                    let stuck: Vec<usize> = st
                        .status
                        .iter()
                        .enumerate()
                        .filter_map(|(i, &s)| (s == RankStatus::Blocked).then_some(i))
                        .collect();
                    let repro = Self::sched_repro_locked(det, &st);
                    drop(st);
                    let views = self.verify.snapshot();
                    let mut report = self.deadlock_report(&views, &stuck);
                    report.push_str(&format!("deterministic schedule — {}\n", repro.hint()));
                    self.abort(report);
                }
                PickOutcome::Diverged { wanted, at } => {
                    let report = Self::diverged_report(det, &st, wanted, at);
                    drop(st);
                    self.abort(report);
                }
            }
        }
    }

    /// Hand the baton to the next runnable rank — drawn from the seeded
    /// PRNG, or dictated by the prefix (then the smallest runnable rank,
    /// the canonical completion). Records the pick as a [`ChoicePoint`].
    ///
    /// The pick is a deterministic function of (ready set, schedule
    /// state): `ReadySet::select(k)` is the k-th smallest runnable rank,
    /// exactly what indexing the old ascending `ready` vector was, so
    /// pick streams are bit-identical to the seed-era O(P)-per-pick
    /// implementation.
    fn sched_pick_locked(det: &DetState, st: &mut SchedInner) -> PickOutcome {
        let count = st.ready.len();
        if count == 0 {
            st.current = None;
            return if st.blocked == 0 || st.not_attached > 0 {
                PickOutcome::Idle
            } else {
                PickOutcome::Deadlock
            };
        }
        let r = match &det.schedule {
            Schedule::Seeded(_) => {
                st.ready.select((splitmix64(&mut st.rng) % count as u64) as usize)
            }
            Schedule::Prefix(prefix) => match prefix.get(st.cursor) {
                Some(&want) if want < st.status.len() && st.status[want] == RankStatus::Ready => {
                    want
                }
                Some(&want) => return PickOutcome::Diverged { wanted: want, at: st.cursor },
                None => st.ready.select(0),
            },
        };
        st.cursor += 1;
        if st.record {
            let ready: Vec<usize> = st
                .status
                .iter()
                .enumerate()
                .filter_map(|(i, &s)| (s == RankStatus::Ready).then_some(i))
                .collect();
            st.choices.push(ChoicePoint { ready, chosen: r, touched: Vec::new() });
            st.events.push(SchedEvent::Pick { rank: r });
        }
        st.current = Some(r);
        det.cv.notify_all();
        PickOutcome::Picked
    }

    /// Build the abort report for a [`PickOutcome::Diverged`] prefix.
    fn diverged_report(det: &DetState, st: &SchedInner, wanted: usize, at: usize) -> String {
        let repro = Self::sched_repro_locked(det, st);
        format!(
            "pmm-simnet: schedule prefix diverged at choice #{at}: the prefix demands rank \
             {wanted}, which is not runnable there — the prefix does not name a reachable \
             branch of this program's schedule tree\n\
             choices made before the divergence: {}\n",
            repro.hint()
        )
    }

    /// Shared tail of every live pick site: pick, then either wait for
    /// the baton or — on a provable deadlock / prefix divergence — abort
    /// the world and tear the calling rank down with an `AbortPanic`.
    fn sched_pick_and_wait(&self, det: &DetState, mut st: MutexGuard<'_, SchedInner>, r: usize) {
        match Self::sched_pick_locked(det, &mut st) {
            PickOutcome::Picked | PickOutcome::Idle => self.sched_wait_for_baton(det, st, r),
            outcome => self.sched_fail_pick(det, st, outcome, r),
        }
    }

    /// Abort the world for a failed pick (deadlock or prefix divergence)
    /// and tear rank `r` down with an `AbortPanic`. Shared by the
    /// thread-backend pick sites and the event-loop yield path (where the
    /// panic unwinds out of `poll` into the executor's `catch_unwind`).
    fn sched_fail_pick(
        &self,
        det: &DetState,
        st: MutexGuard<'_, SchedInner>,
        outcome: PickOutcome,
        r: usize,
    ) -> ! {
        match outcome {
            PickOutcome::Picked | PickOutcome::Idle => {
                unreachable!("sched_fail_pick on a successful pick")
            }
            PickOutcome::Deadlock => {
                let stuck: Vec<usize> = st
                    .status
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &s)| (s == RankStatus::Blocked).then_some(i))
                    .collect();
                let repro = Self::sched_repro_locked(det, &st);
                drop(st);
                let views = self.verify.snapshot();
                let mut report = self.deadlock_report(&views, &stuck);
                report.push_str(&format!("deterministic schedule — {}\n", repro.hint()));
                self.abort(report);
                self.verify.abort_panic(r)
            }
            PickOutcome::Diverged { wanted, at } => {
                let report = Self::diverged_report(det, &st, wanted, at);
                drop(st);
                self.abort(report);
                self.verify.abort_panic(r)
            }
        }
    }

    /// Park until the scheduler hands this rank the baton (or the world
    /// aborts). The timeout only bounds abort-observation latency —
    /// hand-offs are condvar-notified.
    fn sched_wait_for_baton(&self, det: &DetState, mut st: MutexGuard<'_, SchedInner>, r: usize) {
        loop {
            if self.verify.is_aborted() {
                drop(st);
                self.verify.abort_panic(r);
            }
            if st.current == Some(r) {
                st.status[r] = RankStatus::Ready;
                return;
            }
            st = det.cv.wait_timeout(st, ABORT_POLL).unwrap_or_else(PoisonError::into_inner).0;
        }
    }

    // ----- event-loop engine hooks ------------------------------------------

    /// The rank currently holding the baton (event-loop executor's poll
    /// target). `None` while attaching, after the last rank finishes, or
    /// when the world aborted mid-pick.
    pub(crate) fn sched_current(&self) -> Option<usize> {
        let det = self.det.as_ref()?;
        lock_unpoisoned(&det.st).current
    }

    /// Yield the baton after posting a message (event-loop analogue of
    /// [`Fabric::sched_post_event`]).
    pub(crate) fn yield_post(
        &self,
        from_world: usize,
        ctx: Ctx,
        to_world: usize,
        words: u64,
    ) -> BatonYield<'_> {
        BatonYield {
            fabric: self,
            rank: from_world,
            action: Some(YieldAction::Post { from_world, ctx, to_world, words }),
        }
    }

    /// Yield the baton after entering a collective (event-loop analogue
    /// of [`Fabric::sched_collective_event`]).
    pub(crate) fn yield_collective(
        &self,
        rank: usize,
        ctx: Ctx,
        op: CollectiveOp,
        elems: u64,
    ) -> BatonYield<'_> {
        BatonYield {
            fabric: self,
            rank,
            action: Some(YieldAction::Collective { rank, ctx, op, elems }),
        }
    }

    /// Yield the baton at a blocking point whose condition is unmet
    /// (event-loop analogue of [`Fabric::sched_block`]). The await
    /// completes once this rank is picked again; the caller then
    /// re-checks its condition and re-blocks if still unmet.
    pub(crate) fn yield_block(&self, rank: usize, point: BlockPoint) -> BatonYield<'_> {
        BatonYield { fabric: self, rank, action: Some(YieldAction::Block { rank, point }) }
    }

    /// First-poll action of a [`BatonYield`]: log the event, update rank
    /// state, and hand the baton to the next pick — `sched_post_event` /
    /// `sched_collective_event` / `sched_block` minus the condvar wait.
    fn sched_yield_action(&self, action: YieldAction) {
        let Some(det) = &self.det else { return };
        let mut st = lock_unpoisoned(&det.st);
        let r = match action {
            YieldAction::Post { from_world, ctx, to_world, words } => {
                st.push_event(SchedEvent::Post { from_world, ctx, to_world, words });
                from_world
            }
            YieldAction::Collective { rank, ctx, op, elems } => {
                st.push_event(SchedEvent::Collective { rank, ctx, op, elems });
                st.touch(Resource::Ledger { ctx });
                rank
            }
            YieldAction::Block { rank, point } => {
                Self::sched_block_locked(&mut st, rank, point);
                rank
            }
        };
        match Self::sched_pick_locked(det, &mut st) {
            PickOutcome::Picked | PickOutcome::Idle => {}
            outcome => self.sched_fail_pick(det, st, outcome, r),
        }
    }

    /// Event-loop poll check: does `r` hold the baton? Tears the polled
    /// continuation down with an `AbortPanic` if the world aborted (the
    /// executor's `catch_unwind` classifies it).
    fn sched_baton_ready(&self, r: usize) -> bool {
        if self.verify.is_aborted() {
            self.verify.abort_panic(r);
        }
        let Some(det) = &self.det else { return true };
        lock_unpoisoned(&det.st).current == Some(r)
    }

    /// Event-loop analogue of [`Fabric::take_any`]: the identical
    /// event/footprint sequence as the deterministic branch there, but
    /// suspending the continuation instead of parking a thread.
    pub(crate) async fn take_any_a(
        &self,
        ctx: Ctx,
        index: usize,
        me_world: usize,
        from_world: usize,
        site: &'static Location<'static>,
        fault_watch: Option<u64>,
    ) -> Option<Message> {
        let mb = self.mailbox(ctx, index);
        {
            let mut q = lock_unpoisoned(&mb.q);
            if let Some(m) = q.pop_front() {
                self.det_touch(Resource::Mailbox { ctx, index });
                return Some(m);
            }
            if self.recv_fault_kicked(fault_watch, from_world) {
                return None;
            }
        }
        self.verify.set_wait(
            me_world,
            WaitInfo {
                kind: WaitKind::Recv { from_world, ctx_index: index },
                ctx,
                waiting_on: vec![from_world],
                site,
            },
        );
        loop {
            self.yield_block(me_world, BlockPoint::Recv { ctx, index }).await;
            let mut q = lock_unpoisoned(&mb.q);
            if let Some(m) = q.pop_front() {
                self.det_touch(Resource::Mailbox { ctx, index });
                self.verify.clear_wait(me_world);
                return Some(m);
            }
            if self.recv_fault_kicked(fault_watch, from_world) {
                self.verify.clear_wait(me_world);
                return None;
            }
        }
    }

    fn alloc_ctx(&self) -> Ctx {
        self.next_ctx.fetch_add(1, Ordering::Relaxed)
    }

    fn mailbox(&self, ctx: Ctx, index: usize) -> Arc<Mailbox> {
        {
            let map = read_unpoisoned(&self.mailboxes);
            if let Some(mb) = map.get(&(ctx, index)) {
                return mb.clone();
            }
        }
        let mut map = write_unpoisoned(&self.mailboxes);
        map.entry((ctx, index))
            .or_insert_with(|| {
                Arc::new(Mailbox { q: Mutex::new(VecDeque::new()), cv: Condvar::new() })
            })
            .clone()
    }

    /// Post `msg` to member `to` of context `ctx`. Never blocks (mailboxes
    /// are unbounded).
    pub(crate) fn post(&self, ctx: Ctx, to: usize, msg: Message) {
        let mb = self.mailbox(ctx, to);
        lock_unpoisoned(&mb.q).push_back(msg);
        mb.cv.notify_all();
        self.det_touch(Resource::Mailbox { ctx, index: to });
        // A delivery is a progress event: re-ready blocked ranks so the
        // deterministic scheduler lets them re-check their conditions.
        self.sched_wake(Resource::Mailbox { ctx, index: to });
    }

    /// Blockingly take the next message from member `index`'s mailbox on
    /// context `ctx` (in arrival order; directed matching is done by the
    /// rank's stash). `from_world` is the world rank of the sender the
    /// caller is ultimately waiting for (deadlock-report metadata).
    ///
    /// `fault_watch` is the caller's fault-epoch watermark when it is
    /// inside a failure-catching scope: if a rank dies while we wait
    /// (epoch moves past the watermark) the wait returns `None` — after
    /// draining anything already queued — so the caller can surface a
    /// typed failure instead of hanging on a corpse.
    pub(crate) fn take_any(
        &self,
        ctx: Ctx,
        index: usize,
        me_world: usize,
        from_world: usize,
        site: &'static Location<'static>,
        fault_watch: Option<u64>,
    ) -> Option<Message> {
        let mb = self.mailbox(ctx, index);
        let mut q = lock_unpoisoned(&mb.q);
        if let Some(m) = q.pop_front() {
            self.det_touch(Resource::Mailbox { ctx, index });
            return Some(m);
        }
        if self.recv_fault_kicked(fault_watch, from_world) {
            return None;
        }
        self.verify.set_wait(
            me_world,
            WaitInfo {
                kind: WaitKind::Recv { from_world, ctx_index: index },
                ctx,
                waiting_on: vec![from_world],
                site,
            },
        );
        if self.det.is_some() {
            // Deterministic mode: yield the baton instead of sleeping on
            // the mailbox condvar; re-check after every re-pick.
            loop {
                drop(q);
                self.sched_block(me_world, BlockPoint::Recv { ctx, index });
                q = lock_unpoisoned(&mb.q);
                if let Some(m) = q.pop_front() {
                    self.det_touch(Resource::Mailbox { ctx, index });
                    self.verify.clear_wait(me_world);
                    return Some(m);
                }
                if self.recv_fault_kicked(fault_watch, from_world) {
                    self.verify.clear_wait(me_world);
                    return None;
                }
            }
        }
        loop {
            if self.verify.is_aborted() {
                drop(q);
                self.verify.abort_panic(me_world);
            }
            if let Some(m) = q.pop_front() {
                self.verify.clear_wait(me_world);
                return Some(m);
            }
            if self.recv_fault_kicked(fault_watch, from_world) {
                self.verify.clear_wait(me_world);
                return None;
            }
            q = mb.cv.wait_timeout(q, ABORT_POLL).unwrap_or_else(PoisonError::into_inner).0;
        }
    }

    /// Arrive at the barrier: sweep corpses, deposit this rank, and
    /// either release the barrier (returns `None`, waiters woken) or
    /// register the verify wait and return the generation to wait out.
    /// Shared head of the sync and async [`Fabric::hard_sync`] forms.
    fn barrier_arrive(&self, me_world: usize, site: &'static Location<'static>) -> Option<u64> {
        let world_size = self.verify.world_size();
        let mut st = lock_unpoisoned(&self.barrier.st);
        // Dead ranks can never arrive; count them so survivors are not
        // stuck waiting for a corpse (no-op without a fault plan).
        self.barrier_sweep_dead_locked(&mut st);
        let entered_gen = st.generation;
        st.arrived[me_world] = true;
        st.count += 1;
        self.det_touch(Resource::Barrier);
        if st.count == world_size {
            st.count = 0;
            st.arrived.iter_mut().for_each(|a| *a = false);
            st.generation += 1;
            self.barrier.cv.notify_all();
            self.sched_wake(Resource::Barrier);
            return None;
        }
        let waiting_on: Vec<usize> = if world_size > WAIT_LIST_MAX_WORLD {
            Vec::new()
        } else {
            st.arrived.iter().enumerate().filter_map(|(r, &a)| (!a).then_some(r)).collect()
        };
        self.verify.set_wait(
            me_world,
            WaitInfo {
                kind: WaitKind::Barrier { generation: entered_gen },
                ctx: WORLD_CTX,
                waiting_on,
                site,
            },
        );
        Some(entered_gen)
    }

    /// Zero-cost synchronization of all world ranks (not metered; test and
    /// phase-delimiting use only).
    pub(crate) fn hard_sync(&self, me_world: usize, site: &'static Location<'static>) {
        if self.verify.world_size() <= 1 || self.is_dead_rank(me_world) {
            return;
        }
        let Some(entered_gen) = self.barrier_arrive(me_world, site) else { return };
        let mut st = lock_unpoisoned(&self.barrier.st);
        if self.det.is_some() {
            while st.generation == entered_gen {
                drop(st);
                self.sched_block(me_world, BlockPoint::Barrier { generation: entered_gen });
                st = lock_unpoisoned(&self.barrier.st);
            }
            self.verify.clear_wait(me_world);
            return;
        }
        while st.generation == entered_gen {
            if self.verify.is_aborted() {
                drop(st);
                self.verify.abort_panic(me_world);
            }
            st = self
                .barrier
                .cv
                .wait_timeout(st, ABORT_POLL)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
        self.verify.clear_wait(me_world);
    }

    /// Event-loop analogue of [`Fabric::hard_sync`]: identical arrival,
    /// event, and wake sequence, suspending instead of parking.
    pub(crate) async fn hard_sync_a(&self, me_world: usize, site: &'static Location<'static>) {
        if self.verify.world_size() <= 1 || self.is_dead_rank(me_world) {
            return;
        }
        let Some(entered_gen) = self.barrier_arrive(me_world, site) else { return };
        loop {
            self.yield_block(me_world, BlockPoint::Barrier { generation: entered_gen }).await;
            if lock_unpoisoned(&self.barrier.st).generation != entered_gen {
                break;
            }
        }
        self.verify.clear_wait(me_world);
    }

    /// Complete a split rendezvous if every still-alive parent member has
    /// deposited (with at least one deposit): partition the deposited
    /// entries into groups and allocate their contexts. Without a fault
    /// plan "every alive member" is "every member", which is exactly the
    /// pre-fault-layer completion rule. Notifies waiters on completion.
    fn split_try_complete(&self, st: &mut SplitState) {
        if st.result.is_some() {
            return;
        }
        let all_live_arrived = st
            .parent_members
            .iter()
            .enumerate()
            .all(|(i, &w)| st.entries[i].is_some() || self.is_dead_rank(w));
        if st.arrived == 0 || !all_live_arrived {
            return;
        }
        let mut by_color: HashMap<i64, Vec<(i64, usize, usize)>> = HashMap::new();
        for (parent_idx, e) in st.entries.iter().enumerate() {
            // Entries of dead members stay `None` and simply do not join
            // any group — the survivors' groups shrink around them.
            let Some((c, k, w)) = *e else { continue };
            if c >= 0 {
                by_color.entry(c).or_default().push((k, parent_idx, w));
            }
        }
        let mut groups = HashMap::new();
        let mut colors: Vec<i64> = by_color.keys().copied().collect();
        colors.sort_unstable(); // deterministic ctx assignment
        for c in colors {
            let mut v = by_color.remove(&c).unwrap_or_else(|| {
                panic!("split rendezvous: color {c} vanished while grouping — fabric bug")
            });
            v.sort_unstable(); // by (key, parent index)
            let members: Vec<usize> = v.into_iter().map(|(_, _, w)| w).collect();
            groups.insert(c, SplitGroup { ctx: self.alloc_ctx(), members: Arc::new(members) });
        }
        st.result = Some(Arc::new(groups));
    }

    /// Collective communicator split. Called by every member of the parent
    /// context; `seq` is the caller's per-parent split sequence number
    /// (all members must call splits in the same order). `parent_members`
    /// are the parent communicator's world ranks in communicator order.
    ///
    /// `color < 0` means "no new communicator for me" (MPI_UNDEFINED).
    /// Returns the group for `color`, or `None` for negative colors.
    /// `fault_watch` works as in [`Fabric::take_any`]: `Err(FaultKick)`
    /// means a rank died mid-rendezvous while the caller was inside a
    /// failure-catching scope.
    #[allow(clippy::too_many_arguments)] // a rendezvous genuinely needs all of these
    pub(crate) fn split(
        &self,
        parent_ctx: Ctx,
        parent_members: &[usize],
        seq: u64,
        my_parent_index: usize,
        my_world_rank: usize,
        color: i64,
        key: i64,
        site: &'static Location<'static>,
        fault_watch: Option<u64>,
    ) -> Result<Option<SplitGroup>, FaultKick> {
        let cell = self.split_cell(parent_ctx, parent_members, seq);
        let completed = self.split_deposit(
            &cell,
            parent_ctx,
            parent_members,
            seq,
            my_parent_index,
            my_world_rank,
            color,
            key,
            site,
        );
        if !completed {
            let mut st = lock_unpoisoned(&cell.state);
            if self.det.is_some() {
                while st.result.is_none() {
                    if self.fault_kicked(fault_watch) {
                        self.verify.clear_wait(my_world_rank);
                        return Err(FaultKick);
                    }
                    drop(st);
                    self.sched_block(my_world_rank, BlockPoint::Split { ctx: parent_ctx, seq });
                    st = lock_unpoisoned(&cell.state);
                }
            } else {
                while st.result.is_none() {
                    if self.verify.is_aborted() {
                        drop(st);
                        self.verify.abort_panic(my_world_rank);
                    }
                    if self.fault_kicked(fault_watch) {
                        self.verify.clear_wait(my_world_rank);
                        return Err(FaultKick);
                    }
                    st = cell
                        .cv
                        .wait_timeout(st, ABORT_POLL)
                        .unwrap_or_else(PoisonError::into_inner)
                        .0;
                }
            }
            self.verify.clear_wait(my_world_rank);
        }
        Ok(self.split_finish(&cell, parent_ctx, seq, my_world_rank, color))
    }

    /// Event-loop analogue of [`Fabric::split`]: identical deposit,
    /// event, and wake sequence as the deterministic branch there,
    /// suspending instead of parking.
    #[allow(clippy::too_many_arguments)] // a rendezvous genuinely needs all of these
    pub(crate) async fn split_a(
        &self,
        parent_ctx: Ctx,
        parent_members: &[usize],
        seq: u64,
        my_parent_index: usize,
        my_world_rank: usize,
        color: i64,
        key: i64,
        site: &'static Location<'static>,
        fault_watch: Option<u64>,
    ) -> Result<Option<SplitGroup>, FaultKick> {
        let cell = self.split_cell(parent_ctx, parent_members, seq);
        let completed = self.split_deposit(
            &cell,
            parent_ctx,
            parent_members,
            seq,
            my_parent_index,
            my_world_rank,
            color,
            key,
            site,
        );
        if !completed {
            loop {
                if self.fault_kicked(fault_watch) {
                    self.verify.clear_wait(my_world_rank);
                    return Err(FaultKick);
                }
                self.yield_block(my_world_rank, BlockPoint::Split { ctx: parent_ctx, seq }).await;
                if lock_unpoisoned(&cell.state).result.is_some() {
                    break;
                }
            }
            self.verify.clear_wait(my_world_rank);
        }
        Ok(self.split_finish(&cell, parent_ctx, seq, my_world_rank, color))
    }

    /// Find or create the rendezvous cell for split `seq` of
    /// `parent_ctx`.
    fn split_cell(&self, parent_ctx: Ctx, parent_members: &[usize], seq: u64) -> Arc<SplitCell> {
        let mut splits = lock_unpoisoned(&self.splits);
        splits
            .entry((parent_ctx, seq))
            .or_insert_with(|| {
                Arc::new(SplitCell {
                    state: Mutex::new(SplitState {
                        entries: vec![None; parent_members.len()],
                        parent_members: parent_members.to_vec(),
                        arrived: 0,
                        consumed: 0,
                        result: None,
                    }),
                    cv: Condvar::new(),
                })
            })
            .clone()
    }

    /// Deposit one member's `(color, key)` into the rendezvous. Returns
    /// `true` if the split completed (waiters woken); on `false` the
    /// caller's verify wait is registered and it must wait for the
    /// result. Aborts the world on a double deposit.
    #[allow(clippy::too_many_arguments)]
    fn split_deposit(
        &self,
        cell: &SplitCell,
        parent_ctx: Ctx,
        parent_members: &[usize],
        seq: u64,
        my_parent_index: usize,
        my_world_rank: usize,
        color: i64,
        key: i64,
        site: &'static Location<'static>,
    ) -> bool {
        let mut st = lock_unpoisoned(&cell.state);
        if st.entries[my_parent_index].is_some() {
            drop(st);
            self.abort(format!(
                "pmm-verify: world rank {my_world_rank} deposited twice into split #{seq} of \
                 ctx {parent_ctx} at {site} — members issued splits in different orders"
            ));
            self.verify.abort_panic(my_world_rank);
        }
        st.entries[my_parent_index] = Some((color, key, my_world_rank));
        st.arrived += 1;
        self.det_touch(Resource::SplitCell { ctx: parent_ctx, seq });
        self.split_try_complete(&mut st);
        if st.result.is_some() {
            cell.cv.notify_all();
            self.sched_wake(Resource::SplitCell { ctx: parent_ctx, seq });
            true
        } else {
            let waiting_on: Vec<usize> = if parent_members.len() > WAIT_LIST_MAX_WORLD {
                Vec::new()
            } else {
                parent_members
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &w)| st.entries[i].is_none().then_some(w))
                    .collect()
            };
            self.verify.set_wait(
                my_world_rank,
                WaitInfo { kind: WaitKind::Split { seq }, ctx: parent_ctx, waiting_on, site },
            );
            false
        }
    }

    /// Read the completed result, retire this consumer (freeing the
    /// rendezvous slot once every depositor has read it), and project out
    /// the caller's color group.
    fn split_finish(
        &self,
        cell: &SplitCell,
        parent_ctx: Ctx,
        seq: u64,
        my_world_rank: usize,
        color: i64,
    ) -> Option<SplitGroup> {
        let mut st = lock_unpoisoned(&cell.state);
        let result = st
            .result
            .as_ref()
            .unwrap_or_else(|| {
                panic!("split #{seq} on ctx {parent_ctx}: woke without a result — fabric bug")
            })
            .clone();
        st.consumed += 1;
        // Once the result is set no further deposits are accepted, so
        // `arrived` is frozen and "everyone who deposited has read it" is
        // the cleanup condition (equal to the old `== parent size` rule in
        // fault-free worlds). A member kicked out mid-wait never consumes;
        // its cell is left behind, which only an injected death can cause.
        let everyone_done = st.consumed == st.arrived;
        drop(st); // splits-map lock is taken next; never hold state across it
        if everyone_done {
            // Everyone has read the result; free the rendezvous slot so
            // long runs don't accumulate split state.
            lock_unpoisoned(&self.splits).remove(&(parent_ctx, seq));
        }

        if color < 0 {
            None
        } else {
            Some(
                result
                    .get(&color)
                    .unwrap_or_else(|| {
                        panic!(
                            "split #{seq} on ctx {parent_ctx}: world rank {my_world_rank}'s \
                             color {color} missing from the computed groups — fabric bug"
                        )
                    })
                    .clone(),
            )
        }
    }

    /// Abort the world: store `report`, set the abort flag, and wake every
    /// blocked primitive so ranks tear themselves down promptly. First
    /// abort wins; later calls are no-ops.
    pub(crate) fn abort(&self, report: String) {
        if !self.verify.try_set_aborted(report) {
            return;
        }
        self.wake_all_primitives();
    }

    /// Count of messages posted but never taken, per mailbox (strict-drain
    /// audit).
    pub(crate) fn residual_messages(&self) -> Vec<(Ctx, usize, usize)> {
        let map = read_unpoisoned(&self.mailboxes);
        let mut out: Vec<(Ctx, usize, usize)> = map
            .iter()
            .filter_map(|(&(ctx, index), mb)| {
                let n = lock_unpoisoned(&mb.q).len();
                (n > 0).then_some((ctx, index, n))
            })
            .collect();
        out.sort_unstable();
        out
    }

    // ----- deadlock watchdog ------------------------------------------------

    /// One watchdog pass over the wait registry. Returns a deadlock report
    /// when the same non-empty set of ranks is blocked with no possible
    /// progress for two consecutive scans (`prev` carries the candidate
    /// set between scans as `(rank, wait-generation)` pairs).
    ///
    /// "Possible progress" is computed as a fixpoint: running ranks can
    /// progress; a blocked rank whose wait already has its wake-up
    /// condition satisfied (message queued, split result computed, barrier
    /// generation advanced) can progress; and a blocked rank waiting on
    /// any rank that can progress might still be served. Only ranks
    /// outside that closure are deadlocked — so the detector never flags a
    /// slow-but-live schedule.
    pub(crate) fn watchdog_scan(&self, prev: &mut Option<Vec<(usize, u64)>>) -> Option<String> {
        if self.verify.is_aborted() {
            return None;
        }
        let views = self.verify.snapshot();
        let n = views.len();
        let mut progressable = vec![false; n];
        let mut any_blocked = false;
        for (r, v) in views.iter().enumerate() {
            match &v.wait {
                None => progressable[r] = !v.done,
                Some(_) => any_blocked = true,
            }
        }
        if !any_blocked {
            *prev = None;
            return None;
        }
        // Wake-up hints: blocked ranks whose wait condition is already met.
        for (r, v) in views.iter().enumerate() {
            let Some(w) = &v.wait else { continue };
            let hinted = match &w.kind {
                WaitKind::Recv { ctx_index, .. } => {
                    let mb = read_unpoisoned(&self.mailboxes).get(&(w.ctx, *ctx_index)).cloned();
                    mb.is_some_and(|mb| !lock_unpoisoned(&mb.q).is_empty())
                }
                WaitKind::Split { seq } => {
                    let cell = lock_unpoisoned(&self.splits).get(&(w.ctx, *seq)).cloned();
                    cell.is_some_and(|c| lock_unpoisoned(&c.state).result.is_some())
                }
                WaitKind::Barrier { generation } => {
                    lock_unpoisoned(&self.barrier.st).generation > *generation
                }
            };
            if hinted {
                progressable[r] = true;
            }
        }
        // Propagate progress potential along wait-for edges.
        loop {
            let mut changed = false;
            for (r, v) in views.iter().enumerate() {
                if progressable[r] {
                    continue;
                }
                let Some(w) = &v.wait else { continue };
                if w.waiting_on.iter().any(|&o| o < n && progressable[o]) {
                    progressable[r] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let deadlocked: Vec<(usize, u64)> = views
            .iter()
            .enumerate()
            .filter(|&(r, v)| v.wait.is_some() && !progressable[r])
            .map(|(r, v)| (r, v.gen))
            .collect();
        if deadlocked.is_empty() {
            *prev = None;
            return None;
        }
        if prev.as_ref() != Some(&deadlocked) {
            // New candidate set (or a rank re-blocked, bumping its
            // generation): require one more stable scan before aborting.
            *prev = Some(deadlocked);
            return None;
        }
        let stuck: Vec<usize> = deadlocked.iter().map(|&(r, _)| r).collect();
        Some(self.deadlock_report(&views, &stuck))
    }

    fn deadlock_report(&self, views: &[SlotView], stuck: &[usize]) -> String {
        // When the fault plan killed a rank, blocked survivors are the
        // *consequence* of that injected failure, not a communication bug:
        // report the rank failure (naming the plan entry and replay seed)
        // and never the word "deadlock" or a wait-for cycle.
        let failures = self.verify.rank_failures();
        let mut report = if failures.is_empty() {
            format!(
                "pmm-verify: deadlock detected — {} rank(s) blocked with no possible progress\n",
                stuck.len()
            )
        } else {
            let mut r = format!(
                "pmm-verify: rank failure — {} rank(s) killed by the fault plan; {} surviving \
                 rank(s) blocked on communication that can never complete\n",
                failures.len(),
                stuck.len()
            );
            for line in &failures {
                r.push_str("  ");
                r.push_str(line);
                r.push('\n');
            }
            r
        };
        for &r in stuck {
            if let Some(w) = &views[r].wait {
                report.push_str(&format!(
                    "  rank {r}: blocked in {} on ctx {} at {}, waiting on ranks {:?}\n",
                    w.kind, w.ctx, w.site, w.waiting_on
                ));
            }
        }
        if failures.is_empty() {
            let stuck_set: HashSet<usize> = stuck.iter().copied().collect();
            if let Some(cycle) = wait_cycle(views, &stuck_set) {
                let path: Vec<String> = cycle.iter().map(|r| format!("rank {r}")).collect();
                report.push_str(&format!("wait-for cycle: {}\n", path.join(" -> ")));
            }
        }
        let pending = self.verify.all_pending_collectives();
        if !pending.is_empty() {
            report.push_str("partially-entered collectives:\n");
            for line in pending {
                report.push_str(&line);
                report.push('\n');
            }
        }
        report
    }
}

/// Walk wait-for edges inside the stuck set from its smallest member and
/// return the first cycle found, closed (first element repeated at the
/// end).
fn wait_cycle(views: &[SlotView], stuck: &HashSet<usize>) -> Option<Vec<usize>> {
    let start = *stuck.iter().min()?;
    let mut path: Vec<usize> = vec![start];
    let mut cur = start;
    loop {
        let w = views[cur].wait.as_ref()?;
        let next = *w.waiting_on.iter().find(|o| stuck.contains(o))?;
        if let Some(pos) = path.iter().position(|&r| r == next) {
            let mut cycle = path[pos..].to_vec();
            cycle.push(next);
            return Some(cycle);
        }
        path.push(next);
        cur = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn here() -> &'static Location<'static> {
        Location::caller()
    }

    fn msg(from: usize, sent_at: f64, payload: Vec<f64>) -> Message {
        Message { from, sent_at, payload, vclock: None, meta: None }
    }

    #[test]
    fn post_and_take_roundtrip() {
        let fabric = Fabric::new(1);
        fabric.post(WORLD_CTX, 0, msg(3, 1.5, vec![1.0, 2.0]));
        let m = fabric.take_any(WORLD_CTX, 0, 0, 0, here(), None).unwrap();
        assert_eq!(m.from, 3);
        assert_eq!(m.sent_at, 1.5);
        assert_eq!(m.payload, vec![1.0, 2.0]);
    }

    #[test]
    fn messages_between_contexts_are_isolated() {
        let fabric = Fabric::new(1);
        fabric.post(7, 0, msg(0, 0.0, vec![7.0]));
        fabric.post(8, 0, msg(0, 0.0, vec![8.0]));
        assert_eq!(fabric.take_any(8, 0, 0, 0, here(), None).unwrap().payload, vec![8.0]);
        assert_eq!(fabric.take_any(7, 0, 0, 0, here(), None).unwrap().payload, vec![7.0]);
    }

    #[test]
    fn split_partitions_by_color_and_orders_by_key() {
        // 4 "ranks" split into color = rank % 2, key = -rank (reverse order).
        let fabric = Arc::new(Fabric::new(4));
        let members = [0usize, 1, 2, 3];
        let mut handles = Vec::new();
        for r in 0..4usize {
            let f = fabric.clone();
            handles.push(thread::spawn(move || {
                f.split(WORLD_CTX, &members, 0, r, r, (r % 2) as i64, -(r as i64), here(), None)
            }));
        }
        let groups: Vec<_> =
            handles.into_iter().map(|h| h.join().unwrap().unwrap().unwrap()).collect();
        // ranks 0 and 2 share color 0; members sorted by key (descending rank)
        assert_eq!(*groups[0].members, vec![2, 0]);
        assert_eq!(*groups[2].members, vec![2, 0]);
        assert_eq!(*groups[1].members, vec![3, 1]);
        assert_eq!(*groups[3].members, vec![3, 1]);
        // distinct colors got distinct contexts
        assert_ne!(groups[0].ctx, groups[1].ctx);
        assert_eq!(groups[0].ctx, groups[2].ctx);
    }

    #[test]
    fn split_with_negative_color_yields_none() {
        let fabric = Arc::new(Fabric::new(2));
        let f2 = fabric.clone();
        let h = thread::spawn(move || f2.split(WORLD_CTX, &[0, 1], 0, 1, 1, -1, 0, here(), None));
        let g0 = fabric.split(WORLD_CTX, &[0, 1], 0, 0, 0, 0, 0, here(), None).unwrap();
        let g1 = h.join().unwrap().unwrap();
        assert!(g1.is_none());
        assert_eq!(*g0.unwrap().members, vec![0]);
    }

    #[test]
    fn split_state_is_cleaned_up() {
        let fabric = Arc::new(Fabric::new(2));
        let f2 = fabric.clone();
        let h = thread::spawn(move || f2.split(WORLD_CTX, &[0, 1], 5, 1, 1, 0, 0, here(), None));
        fabric.split(WORLD_CTX, &[0, 1], 5, 0, 0, 0, 0, here(), None).unwrap();
        h.join().unwrap().unwrap();
        assert!(lock_unpoisoned(&fabric.splits).is_empty());
    }

    #[test]
    fn watchdog_scan_flags_mutual_recv_after_two_stable_scans() {
        // Two ranks each blocked receiving from the other, nothing queued.
        let fabric = Fabric::new(2);
        fabric.verify.set_wait(
            0,
            WaitInfo {
                kind: WaitKind::Recv { from_world: 1, ctx_index: 0 },
                ctx: WORLD_CTX,
                waiting_on: vec![1],
                site: here(),
            },
        );
        fabric.verify.set_wait(
            1,
            WaitInfo {
                kind: WaitKind::Recv { from_world: 0, ctx_index: 1 },
                ctx: WORLD_CTX,
                waiting_on: vec![0],
                site: here(),
            },
        );
        let mut prev = None;
        assert!(fabric.watchdog_scan(&mut prev).is_none(), "first scan only arms the candidate");
        let report = fabric.watchdog_scan(&mut prev).expect("second stable scan must confirm");
        assert!(report.contains("deadlock detected"), "{report}");
        assert!(report.contains("rank 0"), "{report}");
        assert!(report.contains("rank 1"), "{report}");
        assert!(report.contains("wait-for cycle"), "{report}");
    }

    #[test]
    fn watchdog_scan_spares_recv_with_queued_message() {
        // Rank 0 waits on rank 1, but a message is already queued for it:
        // rank 0 is progressable, and rank 1 (waiting on rank 0) inherits
        // that via the fixpoint.
        let fabric = Fabric::new(2);
        fabric.post(WORLD_CTX, 0, msg(1, 0.0, vec![1.0]));
        fabric.verify.set_wait(
            0,
            WaitInfo {
                kind: WaitKind::Recv { from_world: 1, ctx_index: 0 },
                ctx: WORLD_CTX,
                waiting_on: vec![1],
                site: here(),
            },
        );
        fabric.verify.set_wait(
            1,
            WaitInfo {
                kind: WaitKind::Recv { from_world: 0, ctx_index: 1 },
                ctx: WORLD_CTX,
                waiting_on: vec![0],
                site: here(),
            },
        );
        let mut prev = None;
        for _ in 0..3 {
            assert!(fabric.watchdog_scan(&mut prev).is_none());
        }
    }

    #[test]
    fn watchdog_scan_spares_blocked_ranks_while_any_rank_runs() {
        // Rank 0 blocked on rank 1; rank 1 is running (no wait) — no
        // deadlock, however many scans pass.
        let fabric = Fabric::new(2);
        fabric.verify.set_wait(
            0,
            WaitInfo {
                kind: WaitKind::Recv { from_world: 1, ctx_index: 0 },
                ctx: WORLD_CTX,
                waiting_on: vec![1],
                site: here(),
            },
        );
        let mut prev = None;
        for _ in 0..3 {
            assert!(fabric.watchdog_scan(&mut prev).is_none());
        }
    }

    #[test]
    fn watchdog_scan_flags_recv_from_finished_rank() {
        // Rank 1 exited without sending; rank 0 still waits on it.
        let fabric = Fabric::new(2);
        fabric.verify.set_wait(
            0,
            WaitInfo {
                kind: WaitKind::Recv { from_world: 1, ctx_index: 0 },
                ctx: WORLD_CTX,
                waiting_on: vec![1],
                site: here(),
            },
        );
        fabric.verify.mark_done(1);
        let mut prev = None;
        assert!(fabric.watchdog_scan(&mut prev).is_none());
        let report = fabric.watchdog_scan(&mut prev).expect("recv from exited rank is a deadlock");
        assert!(report.contains("rank 0"), "{report}");
        assert!(report.contains("waiting on ranks [1]"), "{report}");
    }

    #[test]
    fn watchdog_requires_stability_across_generations() {
        // The candidate set is armed, but the rank re-blocks (generation
        // bump) before the second scan: the confirmation must start over.
        let fabric = Fabric::new(1);
        let block = |f: &Fabric| {
            f.verify.set_wait(
                0,
                WaitInfo {
                    kind: WaitKind::Recv { from_world: 0, ctx_index: 0 },
                    ctx: WORLD_CTX,
                    waiting_on: vec![0],
                    site: here(),
                },
            )
        };
        block(&fabric);
        let mut prev = None;
        assert!(fabric.watchdog_scan(&mut prev).is_none());
        block(&fabric); // same wait, new generation
        assert!(fabric.watchdog_scan(&mut prev).is_none(), "generation changed: re-arm");
        let report = fabric.watchdog_scan(&mut prev);
        assert!(report.is_some(), "stable for two scans now");
    }

    #[test]
    fn abort_wakes_blocked_take_any() {
        let fabric = Arc::new(Fabric::new(2));
        let f2 = fabric.clone();
        let h = thread::spawn(move || {
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                f2.take_any(WORLD_CTX, 0, 0, 1, here(), None);
            }));
            caught.expect_err("take_any must panic out of an aborted world")
        });
        // Give the receiver a moment to block, then abort.
        thread::sleep(Duration::from_millis(20));
        fabric.abort("test abort".to_string());
        let payload = h.join().expect("receiver thread joins");
        let abort = payload
            .downcast_ref::<crate::verify::AbortPanic>()
            .expect("panic payload is AbortPanic");
        assert!(abort.0.contains("test abort"), "{}", abort.0);
    }

    #[test]
    fn residual_messages_reports_undrained_mailboxes() {
        let fabric = Fabric::new(2);
        fabric.post(WORLD_CTX, 1, msg(0, 0.0, vec![1.0]));
        fabric.post(WORLD_CTX, 1, msg(0, 0.0, vec![2.0]));
        fabric.post(3, 0, msg(1, 0.0, vec![3.0]));
        assert_eq!(fabric.residual_messages(), vec![(WORLD_CTX, 1, 2), (3, 0, 1)]);
        fabric.take_any(3, 0, 0, 1, here(), None);
        assert_eq!(fabric.residual_messages(), vec![(WORLD_CTX, 1, 2)]);
    }

    #[test]
    fn dead_rank_completes_pending_split_with_survivors_only() {
        // Three ranks; rank 2 dies after ranks 0 and 1 have deposited.
        let mut fabric = Fabric::new(3);
        fabric.enable_faults(FaultPlan::none(), 0);
        let fabric = Arc::new(fabric);
        let members = [0usize, 1, 2];
        let mut handles = Vec::new();
        for r in 0..2usize {
            let f = fabric.clone();
            handles.push(thread::spawn(move || {
                f.split(WORLD_CTX, &members, 0, r, r, 0, r as i64, here(), None)
            }));
        }
        thread::sleep(Duration::from_millis(20));
        fabric.mark_rank_dead(2, "rank 2 killed by fault-plan entry kill=2@1".to_string());
        for h in handles {
            let group = h.join().unwrap().unwrap().unwrap();
            assert_eq!(*group.members, vec![0, 1], "dead member must be excluded");
        }
    }

    #[test]
    fn fault_kick_interrupts_blocked_take_any() {
        let mut fabric = Fabric::new(2);
        fabric.enable_faults(FaultPlan::none(), 0);
        let fabric = Arc::new(fabric);
        let f2 = fabric.clone();
        let watch = Some(fabric.fault_epoch());
        let h = thread::spawn(move || f2.take_any(WORLD_CTX, 0, 0, 1, here(), watch));
        thread::sleep(Duration::from_millis(20));
        fabric.mark_rank_dead(1, "rank 1 killed by fault-plan entry kill=1@1".to_string());
        assert!(h.join().unwrap().is_none(), "wait must be kicked, not served");
    }

    #[test]
    fn deadlock_report_with_rank_failure_names_the_kill_not_a_cycle() {
        let fabric = Fabric::new(2);
        fabric.verify.note_rank_failure(
            "rank 1 killed by fault-plan entry kill=1@3 (replay: PMM_SEED=7)".to_string(),
        );
        fabric.verify.set_wait(
            0,
            WaitInfo {
                kind: WaitKind::Recv { from_world: 1, ctx_index: 0 },
                ctx: WORLD_CTX,
                waiting_on: vec![1],
                site: here(),
            },
        );
        fabric.verify.mark_done(1);
        let mut prev = None;
        assert!(fabric.watchdog_scan(&mut prev).is_none());
        let report = fabric.watchdog_scan(&mut prev).expect("stuck survivor is reported");
        assert!(report.contains("rank failure"), "{report}");
        assert!(report.contains("kill=1@3"), "{report}");
        assert!(report.contains("PMM_SEED=7"), "{report}");
        assert!(!report.contains("deadlock detected"), "{report}");
        assert!(!report.contains("wait-for cycle"), "{report}");
    }
}
