//! Execution engines: the event-driven continuation core and the legacy
//! thread pool.
//!
//! A [`World`](crate::World) can execute a rank program on one of two
//! engines:
//!
//! - [`Engine::EventLoop`] — the primary engine. Every rank is a
//!   resumable continuation (a plain Rust future) stored in a slab; a
//!   single-threaded event loop polls exactly the rank that holds the
//!   scheduler baton, so a world of P ranks costs P futures, not P OS
//!   threads, and worlds of 10^5–10^6 ranks execute for real instead of
//!   falling back to closed-form cost models.
//! - [`Engine::Threads`] — the seed-era backend: one OS thread per rank,
//!   parked on condvars at blocking points. Retained for differential
//!   testing and for sync closures that cannot suspend.
//!
//! Both engines drive the *same* deterministic scheduler
//! (`SchedInner` in `fabric.rs`): picks, `SchedEvent` logs,
//! `ChoicePoint`s, meters, and simulated clocks are byte-identical
//! across engines for the same `Schedule`. The async rank primitives
//! (`Rank::recv_a` etc.) check the engine at runtime: on the thread
//! backend they delegate to the blocking sync implementations inside a
//! single poll, so one source of truth serves both engines.
//!
//! Engine selection: explicit [`World::with_engine`](crate::World::with_engine)
//! beats the [`ENGINE_ENV`] (`PMM_ENGINE`) environment variable, which
//! beats the default ([`Engine::EventLoop`] for async programs;
//! sync-closure `run`/`try_run` always use threads because a sync
//! closure cannot suspend).

use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::str::FromStr;
use std::task::{Context, Poll, Waker};

/// Environment variable selecting the execution engine
/// (`threads` or `event-loop`). Overridden by
/// [`World::with_engine`](crate::World::with_engine).
pub const ENGINE_ENV: &str = "PMM_ENGINE";

/// Which backend executes rank programs. See the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// One OS thread per rank (the seed-era backend).
    Threads,
    /// Single-threaded deterministic event loop over rank continuations
    /// (the primary engine).
    EventLoop,
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Engine::Threads => f.write_str("threads"),
            Engine::EventLoop => f.write_str("event-loop"),
        }
    }
}

impl FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Engine, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "threads" | "thread" => Ok(Engine::Threads),
            "event-loop" | "eventloop" | "event_loop" | "event" | "loop" => Ok(Engine::EventLoop),
            other => Err(format!(
                "unrecognized engine {other:?}: expected \"threads\" or \"event-loop\""
            )),
        }
    }
}

/// Resolve the engine from [`ENGINE_ENV`], falling back to `default`.
/// Malformed values fall back to `default` (matching
/// [`seed_from_env`](crate::seed_from_env)'s forgiving behavior).
pub fn engine_from_env(default: Engine) -> Engine {
    match std::env::var(ENGINE_ENV) {
        Ok(s) => s.parse().unwrap_or(default),
        Err(_) => default,
    }
}

/// A boxed, possibly non-`Send` future borrowing its rank — the shape of
/// an async rank program. `Rank` handles are deliberately not `Send`
/// across awaits on the event engine, so this is the local (non-`Send`)
/// analogue of the usual boxed-future alias.
pub type LocalBoxFuture<'a, T> = Pin<Box<dyn Future<Output = T> + 'a>>;

/// Drive `fut` to completion in a single poll.
///
/// This is how every sync wrapper (e.g. [`Rank::recv`](crate::Rank::recv)
/// wrapping `recv_a`) executes its async body on the thread backend: on
/// `Engine::Threads` the async primitives block *inside* `poll` (they
/// delegate to the condvar-based sync paths) and therefore always
/// complete in one poll.
///
/// # Panics
///
/// Panics if the future suspends, which means an event-loop-only
/// primitive was driven without the event loop — a bug in the caller.
pub fn poll_now<F: Future>(fut: F) -> F::Output {
    let mut fut = std::pin::pin!(fut);
    let waker = Waker::noop();
    let mut cx = Context::from_waker(waker);
    match fut.as_mut().poll(&mut cx) {
        Poll::Ready(v) => v,
        Poll::Pending => panic!(
            "pmm-engine: future suspended outside the event loop \
             (sync wrapper invoked while Engine::EventLoop is active; \
             use the async `_a` form of this primitive)"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_parses_aliases() {
        assert_eq!("threads".parse::<Engine>().unwrap(), Engine::Threads);
        assert_eq!("thread".parse::<Engine>().unwrap(), Engine::Threads);
        assert_eq!("event-loop".parse::<Engine>().unwrap(), Engine::EventLoop);
        assert_eq!("Event".parse::<Engine>().unwrap(), Engine::EventLoop);
        assert_eq!(" eventloop ".parse::<Engine>().unwrap(), Engine::EventLoop);
        assert!("fibers".parse::<Engine>().is_err());
    }

    #[test]
    fn engine_display_round_trips() {
        for e in [Engine::Threads, Engine::EventLoop] {
            assert_eq!(e.to_string().parse::<Engine>().unwrap(), e);
        }
    }

    #[test]
    fn poll_now_completes_ready_futures() {
        assert_eq!(poll_now(async { 41 + 1 }), 42);
    }

    #[test]
    #[should_panic(expected = "suspended outside the event loop")]
    fn poll_now_rejects_suspension() {
        struct Never;
        impl Future for Never {
            type Output = ();
            fn poll(self: Pin<&mut Self>, _: &mut Context<'_>) -> Poll<()> {
                Poll::Pending
            }
        }
        poll_now(Never);
    }
}
