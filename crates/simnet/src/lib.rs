//! # pmm-simnet — a metered, simulated distributed-memory machine
//!
//! This crate is the workspace's substitute for an MPI cluster. It realizes
//! the α-β-γ machine model of §3.1 of the paper as a *real concurrent
//! execution*: every simulated processor ("rank") is an OS thread with
//! private data, and the **only** way data moves between ranks is through
//! explicit messages over channels. Consequently, the word counts metered
//! here are exactly the communication volumes a distributed implementation
//! would incur — which is the quantity the paper's lower bounds constrain.
//!
//! ## What is metered
//!
//! * per-rank **traffic**: words and messages sent and received
//!   ([`Meter`]), with cheap snapshots so callers can attribute traffic to
//!   phases (e.g. "the All-Gather of A" vs "the Reduce-Scatter of C");
//! * per-rank **critical-path clock**: a Lamport-style clock advanced by
//!   `α + βw` per message, `γ` per flop, with full-duplex exchanges costed
//!   once (§3.1: links are bidirectional, a pair can exchange with no
//!   contention). Run with [`MachineParams::BANDWIDTH_ONLY`] and the final
//!   clock *is* the bandwidth cost along the critical path;
//! * per-rank **memory**: a high-water mark of explicitly acquired words,
//!   used by the limited-memory experiments (§6.2);
//! * optional **structured event traces** ([`tracer`]) of every message,
//!   compute call, collective entry, and phase scope — feeding the
//!   per-phase cost attribution, the critical-path analyzer, and the
//!   Chrome `trace_event` export, as well as the Fig. 1 style
//!   who-talks-to-whom analyses.
//!
//! ## Shape of the API
//!
//! ```
//! use pmm_model::MachineParams;
//! use pmm_simnet::World;
//!
//! // 4 ranks; each sends its rank to rank 0.
//! let out = World::new(4, MachineParams::BANDWIDTH_ONLY).run(|rank| {
//!     let world = rank.world_comm();
//!     if rank.world_rank() == 0 {
//!         let mut sum = 0.0;
//!         for from in 1..4 {
//!             sum += rank.recv(&world, from).payload[0];
//!         }
//!         sum
//!     } else {
//!         rank.send(&world, 0, &[rank.world_rank() as f64]);
//!         0.0
//!     }
//! });
//! assert_eq!(out.values[0], 6.0);
//! assert_eq!(out.total_words_sent(), 3.0);
//! ```
//!
//! Deadlock note: mailboxes are unbounded, so `send` never blocks; `recv`
//! blocks until the matching message arrives. A program that receives a
//! message that was never sent would block forever — as under MPI — but
//! the [`verify`] layer turns that into a *checked* failure: in debug
//! builds a watchdog detects the deadlock and panics with a report naming
//! every blocked rank, its operation, communicator context, and call
//! site, and a collective-matching lint flags mismatched collectives
//! deterministically before they hang. See [`World::with_watchdog`] and
//! the `verify` module docs.
//!
//! Reproducibility note: by default ranks free-run on OS threads, so
//! interleavings differ between runs. [`World::with_seed`] switches to a
//! seeded cooperative scheduler that serializes rank progress at every
//! blocking point and records a byte-identical [`ScheduleTrace`] — see
//! the [`trace`] module for golden-trace replay
//! ([`ScheduleTrace::assert_matches`]), the [`fuzz_schedules`] harness,
//! and the `PMM_SEED` replay knob ([`seed_from_env`]).
//!
//! Robustness note: [`World::with_faults`] attaches a seeded [`FaultPlan`]
//! that drops, duplicates, corrupts, or delays messages (absorbed by a
//! sequence-numbered, checksummed reliable-delivery layer whose
//! retransmissions are metered separately from goodput), slows ranks into
//! stragglers, or kills ranks outright — with killed ranks surfacing as
//! typed [`RankFailed`] errors via [`Rank::catch_failures`] so programs
//! can rebuild a communicator over the survivors
//! ([`Rank::recovery_split`]) and recompute. See the [`fault`] module.

#![warn(missing_docs)]

pub mod comm;
pub mod engine;
pub mod fabric;
pub mod fault;
pub mod meter;
pub mod rank;
mod readyset;
pub mod trace;
pub mod tracer;
pub mod verify;
pub mod world;

pub use comm::Comm;
pub use engine::{engine_from_env, poll_now, Engine, LocalBoxFuture, ENGINE_ENV};
pub use fabric::{Ctx, Message};
pub use fault::{FaultPlan, KillSpec, RankFailed, Straggler};
pub use meter::{MemTracker, Meter};
pub use rank::{catch_fault_panics, FaultWatch, MemoryLimitExceeded, Rank, RecvRequest};
pub use trace::{
    fuzz_schedules, repro_hint, schedule_from_env, seed_from_env, BlockPoint, ChoicePoint, Repro,
    Resource, SchedEvent, Schedule, ScheduleDivergence, ScheduleTrace, SCHEDULE_ENV, SEED_ENV,
};
pub use tracer::{Attribution, CriticalPath, PhaseDiff, PhaseTotals, TraceEvent, TraceOp, Tracer};
pub use verify::{CollectiveOp, VerifyConfig};
pub use world::{RankReport, RunFailure, World, WorldResult};

// Re-export the model vocabulary users need alongside the simulator.
pub use pmm_model::{Cost, MachineParams};
