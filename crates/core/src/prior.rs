//! Prior-work bounds — the comparison rows of Table 1 and the
//! memory-dependent bounds of §2.1 / §6.2.
//!
//! Each memory-independent prior result is represented by the constant it
//! proves on the leading term in each of the three cases (`None` where the
//! work proves no bound for that case). Evaluating a row multiplies the
//! constant by the case's leading term, which is how Table 1 is
//! regenerated in the `table1` experiment.

use pmm_model::{Case, MatMulDims};

use crate::theorem3::lower_bound;

/// A published memory-independent lower-bound result for parallel matmul.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PriorBound {
    /// Aggarwal, Chandra, Snir 1990 (LPRAM): `(1/2)^{2/3} ≈ .63` on the 3D
    /// leading term; nothing for the other cases.
    AggarwalChandraSnir,
    /// Irony, Toledo, Tiskin 2004: `1/2` on the 3D leading term.
    IronyToledoTiskin,
    /// Demmel et al. 2013: `16/25`, `(2/3)^{1/2}`, `1` across the three
    /// cases.
    DemmelEtAl,
    /// This paper (Theorem 3): `1`, `2`, `3` — tight.
    ThisPaper,
}

impl PriorBound {
    /// All rows of Table 1 in publication order.
    pub const ALL: [PriorBound; 4] = [
        PriorBound::AggarwalChandraSnir,
        PriorBound::IronyToledoTiskin,
        PriorBound::DemmelEtAl,
        PriorBound::ThisPaper,
    ];

    /// Citation-style label.
    pub fn label(&self) -> &'static str {
        match self {
            PriorBound::AggarwalChandraSnir => "Aggarwal et al. (1990)",
            PriorBound::IronyToledoTiskin => "Irony et al. (2004)",
            PriorBound::DemmelEtAl => "Demmel et al. (2013)",
            PriorBound::ThisPaper => "Theorem 3 (this paper)",
        }
    }

    /// The constant this work proves on the leading term of `case`
    /// (`None` = no bound proved for that case).
    pub fn leading_constant(&self, case: Case) -> Option<f64> {
        match (self, case) {
            (PriorBound::AggarwalChandraSnir, Case::ThreeD) => Some(0.5f64.powf(2.0 / 3.0)),
            (PriorBound::AggarwalChandraSnir, _) => None,
            (PriorBound::IronyToledoTiskin, Case::ThreeD) => Some(0.5),
            (PriorBound::IronyToledoTiskin, _) => None,
            (PriorBound::DemmelEtAl, Case::OneD) => Some(16.0 / 25.0),
            (PriorBound::DemmelEtAl, Case::TwoD) => Some((2.0f64 / 3.0).sqrt()),
            (PriorBound::DemmelEtAl, Case::ThreeD) => Some(1.0),
            (PriorBound::ThisPaper, Case::OneD) => Some(1.0),
            (PriorBound::ThisPaper, Case::TwoD) => Some(2.0),
            (PriorBound::ThisPaper, Case::ThreeD) => Some(3.0),
        }
    }

    /// The leading-order bound this work proves for `(dims, p)`:
    /// constant × leading term (no lower-order offset), or `None` if the
    /// work proves nothing in the applicable case.
    pub fn evaluate_leading(&self, dims: MatMulDims, p: f64) -> Option<f64> {
        let r = lower_bound(dims, p);
        self.leading_constant(r.case).map(|c| c * r.leading_term)
    }
}

/// Published constants for the *memory-dependent* bound
/// `c · mnk/(P·√M)` (§2.1). Listed in order of publication; each improves
/// the constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemDependentBound {
    /// Irony, Toledo, Tiskin 2004: `c = (1/2)^{3/2} ≈ .35`.
    IronyToledoTiskin,
    /// Dongarra et al. 2008: `c = (3/2)^{3/2} ≈ 1.84`.
    DongarraEtAl,
    /// Smith et al. 2019 / Kwasniewski et al. 2019 / Olivry et al. 2020:
    /// `c = 2`, tight.
    SmithEtAl,
}

impl MemDependentBound {
    /// All variants, oldest first.
    pub const ALL: [MemDependentBound; 3] = [
        MemDependentBound::IronyToledoTiskin,
        MemDependentBound::DongarraEtAl,
        MemDependentBound::SmithEtAl,
    ];

    /// Citation-style label.
    pub fn label(&self) -> &'static str {
        match self {
            MemDependentBound::IronyToledoTiskin => "Irony et al. (2004)",
            MemDependentBound::DongarraEtAl => "Dongarra et al. (2008)",
            MemDependentBound::SmithEtAl => "Smith et al. (2019)",
        }
    }

    /// The constant `c`.
    pub fn constant(&self) -> f64 {
        match self {
            MemDependentBound::IronyToledoTiskin => 0.5f64.powf(1.5),
            MemDependentBound::DongarraEtAl => 1.5f64.powf(1.5),
            MemDependentBound::SmithEtAl => 2.0,
        }
    }

    /// Evaluate `c·mnk/(P√M)` for local memory `m_words`.
    pub fn evaluate(&self, dims: MatMulDims, p: f64, m_words: f64) -> f64 {
        assert!(m_words > 0.0, "memory must be positive");
        self.constant() * dims.mults() / (p * m_words.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER: MatMulDims = MatMulDims { n1: 9600, n2: 2400, n3: 600 };

    #[test]
    fn table1_constants_match_the_paper() {
        use Case::*;
        use PriorBound::*;
        let want: [(PriorBound, [Option<f64>; 3]); 4] = [
            (AggarwalChandraSnir, [None, None, Some(0.6299605249474366)]),
            (IronyToledoTiskin, [None, None, Some(0.5)]),
            (DemmelEtAl, [Some(0.64), Some(0.816496580927726), Some(1.0)]),
            (ThisPaper, [Some(1.0), Some(2.0), Some(3.0)]),
        ];
        for (row, cols) in want {
            for (case, want_c) in [OneD, TwoD, ThreeD].into_iter().zip(cols) {
                let got = row.leading_constant(case);
                match (got, want_c) {
                    (None, None) => {}
                    (Some(g), Some(w)) => {
                        assert!((g - w).abs() < 1e-12, "{row:?}/{case:?}: {g} vs {w}")
                    }
                    _ => panic!("{row:?}/{case:?}: presence mismatch"),
                }
            }
        }
    }

    #[test]
    fn this_paper_dominates_every_prior_row_in_every_case() {
        for p in [2.0, 3.0, 36.0, 512.0, 1e5] {
            let ours = PriorBound::ThisPaper.evaluate_leading(PAPER, p).unwrap();
            for row in [
                PriorBound::AggarwalChandraSnir,
                PriorBound::IronyToledoTiskin,
                PriorBound::DemmelEtAl,
            ] {
                if let Some(theirs) = row.evaluate_leading(PAPER, p) {
                    assert!(
                        ours > theirs,
                        "P={p}: ours {ours} must exceed {} {theirs}",
                        row.label()
                    );
                }
            }
        }
    }

    #[test]
    fn improvement_factors_match_table1() {
        // 3D case: 3 / .63 ≈ 4.76, 3 / .5 = 6, 3 / 1 = 3.
        let p = 512.0;
        let ours = PriorBound::ThisPaper.evaluate_leading(PAPER, p).unwrap();
        let acs = PriorBound::AggarwalChandraSnir.evaluate_leading(PAPER, p).unwrap();
        let itt = PriorBound::IronyToledoTiskin.evaluate_leading(PAPER, p).unwrap();
        let dem = PriorBound::DemmelEtAl.evaluate_leading(PAPER, p).unwrap();
        assert!((ours / itt - 6.0).abs() < 1e-9);
        assert!((ours / dem - 3.0).abs() < 1e-9);
        assert!((ours / acs - 3.0 / 0.5f64.powf(2.0 / 3.0)).abs() < 1e-9);
    }

    #[test]
    fn memory_dependent_constants_improve_over_time() {
        let cs: Vec<f64> = MemDependentBound::ALL.iter().map(|b| b.constant()).collect();
        assert!(cs[0] < cs[1] && cs[1] < cs[2]);
        assert!((cs[0] - 0.35355339059327373).abs() < 1e-12);
        assert!((cs[1] - 1.8371173070873836).abs() < 1e-12);
        assert_eq!(cs[2], 2.0);
    }

    #[test]
    fn memory_dependent_bound_scales_as_inverse_sqrt_m() {
        let b1 = MemDependentBound::SmithEtAl.evaluate(PAPER, 64.0, 1e6);
        let b2 = MemDependentBound::SmithEtAl.evaluate(PAPER, 64.0, 4e6);
        assert!((b1 / b2 - 2.0).abs() < 1e-12);
    }
}
