//! Algorithm advisor: turn the paper's bounds into a decision procedure.
//!
//! Given a problem `(n1, n2, n3)`, a machine `(P, M, α, β, γ)`, the
//! advisor predicts the full α-β-γ cost of each candidate strategy —
//! Algorithm 1 on the best *memory-feasible* integer grid, and the 2.5D
//! algorithm at its best replication factor — and ranks them. This is the
//! practical payoff of tight constants (§1: "helped identify the best
//! performing … algorithms"): with exact leading terms, the crossovers
//! between strategies are real decision boundaries, not asymptotic
//! hand-waving.
//!
//! Cost models used here are the exact ones validated against execution
//! by the `eq3_check` and `collectives_cost` experiments (words) plus the
//! standard latency terms of the collectives used.

use std::fmt;

use pmm_model::{Cost, Grid3, MachineParams, MatMulDims};

use crate::gridopt::alg1_cost_words;
use crate::memlimit::{alg1_memory_words, min_memory_words};

/// A candidate execution strategy.
#[derive(Debug, Clone, PartialEq)]
pub enum Strategy {
    /// Algorithm 1 on the given grid.
    Alg1 { grid: [usize; 3] },
    /// 2.5D (layered Cannon) with `c` layers of a `q × q` grid.
    TwoFiveD { q: usize, c: usize },
}

/// A costed candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// The strategy.
    pub strategy: Strategy,
    /// Predicted α-β-γ cost (per processor, critical path).
    pub cost: Cost,
    /// Predicted time under the machine parameters used for ranking.
    pub time: f64,
    /// Peak memory words per processor this strategy needs.
    pub memory_words: f64,
}

fn ceil_log2(p: usize) -> f64 {
    if p <= 1 {
        0.0
    } else {
        (usize::BITS - (p - 1).leading_zeros()) as f64
    }
}

/// Full predicted cost of Algorithm 1 on `grid`: eq. (3) words,
/// `Σ ⌈log2 p_i⌉` messages (recursive doubling/halving collectives),
/// `n1n2n3/P` multiply-adds plus the reduce-scatter additions.
pub fn alg1_full_cost(dims: MatMulDims, grid: [usize; 3]) -> Cost {
    let [p1, p2, p3] = grid;
    let p = (p1 * p2 * p3) as f64;
    let words = alg1_cost_words(dims, grid);
    let messages = ceil_log2(p1) + ceil_log2(p2) + ceil_log2(p3);
    let rs_adds =
        (1.0 - 1.0 / p2 as f64) * dims.n1 as f64 * dims.n3 as f64 / (p1 as f64 * p3 as f64);
    Cost { messages, words, flops: dims.mults() / p + rs_adds }
}

/// Predicted per-processor words of the 2.5D algorithm (square-ish
/// problems; `P = c·q²`, `c | q`): replication (`2(1−1/c)` of an `A` and
/// a `B` block via scatter–all-gather), `q/c` Cannon shifts of each
/// input block, and the layer reduction of the `C` block.
pub fn twofived_cost(dims: MatMulDims, q: usize, c: usize) -> Cost {
    assert!(c >= 1 && q >= 1 && q.is_multiple_of(c), "2.5D requires c | q");
    let (n1, n2, n3) = (dims.n1 as f64, dims.n2 as f64, dims.n3 as f64);
    let qf = q as f64;
    let cf = c as f64;
    let a_block = n1 * n2 / (qf * qf);
    let b_block = n2 * n3 / (qf * qf);
    let c_block = n1 * n3 / (qf * qf);
    let repl = if c > 1 { 2.0 * (1.0 - 1.0 / cf) * (a_block + b_block) } else { 0.0 };
    let shifts = (qf / cf - 1.0).max(0.0) + 1.0; // q/c − 1 rotations + skew
    let shift_words = if q > 1 { shifts * (a_block + b_block) } else { 0.0 };
    let reduce = if c > 1 { ceil_log2(c) * c_block } else { 0.0 };
    let messages = if c > 1 { 2.0 * ceil_log2(c) + 2.0 * ceil_log2(c) } else { 0.0 }
        + if q > 1 { 2.0 * shifts } else { 0.0 }
        + if c > 1 { ceil_log2(c) } else { 0.0 };
    let flops = dims.mults() / (cf * qf * qf) * cf // each layer multiplies its share
        / cf // … of 1/c of the inner dimension
        + if c > 1 { ceil_log2(c) * c_block } else { 0.0 };
    Cost { messages, words: repl + shift_words + reduce, flops }
}

/// Peak memory of the 2.5D strategy: replicated input blocks + C block
/// (the `c×` replication is the memory price).
pub fn twofived_memory_words(dims: MatMulDims, q: usize) -> f64 {
    let (n1, n2, n3) = (dims.n1 as f64, dims.n2 as f64, dims.n3 as f64);
    let qf = q as f64;
    (n1 * n2 + n2 * n3 + n1 * n3) / (qf * qf)
}

/// Why an advisor query cannot be answered.
///
/// Every way a raw `(n1, n2, n3, P, M)` query can be invalid — zero
/// dimensions, zero processors, non-numeric or infeasible memory — is a
/// *value* of this type, never a panic: the advisor sits on the
/// `pmm serve` request path, where a malformed query must come back as a
/// structured `ERR` response while the worker thread survives to answer
/// the next one.
#[derive(Debug, Clone, PartialEq)]
pub enum AdvisorError {
    /// A matrix dimension was zero (the advisor needs `n1, n2, n3 ≥ 1`).
    ZeroDimension {
        /// Which dimension (`"n1"`, `"n2"`, `"n3"`) was zero.
        which: &'static str,
    },
    /// The processor count was zero.
    ZeroProcs,
    /// The memory budget was NaN or not positive.
    InvalidMemory {
        /// The offending value.
        value: f64,
    },
    /// A machine parameter (α, β, γ) was NaN or negative.
    InvalidMachine {
        /// Which parameter (`"alpha"`, `"beta"`, `"gamma"`).
        which: &'static str,
        /// The offending value.
        value: f64,
    },
    /// `M` is below the §6.2 feasibility floor `(mn + mk + nk)/P`: the
    /// processors cannot even hold one copy of the problem.
    InfeasibleMemory {
        /// The floor `(mn + mk + nk)/P` in words.
        need: f64,
        /// The budget that was offered.
        have: f64,
    },
    /// `M` clears the floor but no concrete strategy (integer grid or
    /// 2.5D layout) fits — the floor is a continuous bound, integer
    /// layouts can need slightly more.
    NoFeasibleStrategy {
        /// The floor `(mn + mk + nk)/P` in words.
        floor: f64,
        /// The budget that was offered.
        have: f64,
    },
}

impl fmt::Display for AdvisorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdvisorError::ZeroDimension { which } => {
                write!(f, "dimension {which} must be >= 1")
            }
            AdvisorError::ZeroProcs => write!(f, "processor count must be >= 1"),
            AdvisorError::InvalidMemory { value } => {
                write!(f, "memory budget must be a positive number of words, got {value}")
            }
            AdvisorError::InvalidMachine { which, value } => {
                write!(f, "machine parameter {which} must be finite and non-negative, got {value}")
            }
            AdvisorError::InfeasibleMemory { need, have } => {
                write!(f, "memory {have} is below the feasibility floor (mn+mk+nk)/P = {need}")
            }
            AdvisorError::NoFeasibleStrategy { floor, have } => {
                write!(
                    f,
                    "no integer strategy fits in {have} words \
                     (continuous floor (mn+mk+nk)/P = {floor})"
                )
            }
        }
    }
}

impl std::error::Error for AdvisorError {}

/// Validated [`recommend`] over a *raw* query, as it arrives off the
/// wire: every invalid input is a typed [`AdvisorError`], never a panic,
/// and — unlike [`recommend`], which signals infeasibility with an empty
/// vector — the `Ok` ranking is guaranteed non-empty.
///
/// Accepts the memory budget as `f64` so `∞` (no memory constraint) is
/// expressible; `P` is `u64` to match the parsed wire format.
///
/// ```
/// use pmm_core::advisor::{try_recommend, AdvisorError};
/// use pmm_model::MachineParams;
///
/// let recs =
///     try_recommend(96, 96, 96, 8, f64::INFINITY, MachineParams::BANDWIDTH_ONLY).unwrap();
/// assert!(!recs.is_empty());
///
/// let err = try_recommend(96, 0, 96, 8, f64::INFINITY, MachineParams::BANDWIDTH_ONLY);
/// assert_eq!(err, Err(AdvisorError::ZeroDimension { which: "n2" }));
/// ```
pub fn try_recommend(
    n1: u64,
    n2: u64,
    n3: u64,
    p: u64,
    m_words: f64,
    params: MachineParams,
) -> Result<Vec<Recommendation>, AdvisorError> {
    for (which, v) in [("n1", n1), ("n2", n2), ("n3", n3)] {
        if v == 0 {
            return Err(AdvisorError::ZeroDimension { which });
        }
    }
    if p == 0 {
        return Err(AdvisorError::ZeroProcs);
    }
    if m_words.is_nan() || m_words <= 0.0 {
        return Err(AdvisorError::InvalidMemory { value: m_words });
    }
    for (which, v) in [("alpha", params.alpha), ("beta", params.beta), ("gamma", params.gamma)] {
        if !v.is_finite() || v < 0.0 {
            return Err(AdvisorError::InvalidMachine { which, value: v });
        }
    }
    let dims = MatMulDims::new(n1, n2, n3);
    let p = usize::try_from(p).map_err(|_| AdvisorError::NoFeasibleStrategy {
        floor: min_memory_words(dims, p as f64),
        have: m_words,
    })?;
    let floor = min_memory_words(dims, p as f64);
    if floor > m_words {
        return Err(AdvisorError::InfeasibleMemory { need: floor, have: m_words });
    }
    let recs = recommend(dims, p, m_words, params);
    if recs.is_empty() {
        return Err(AdvisorError::NoFeasibleStrategy { floor, have: m_words });
    }
    Ok(recs)
}

/// Rank all memory-feasible strategies for `(dims, p)` under local memory
/// `m_words` and machine `params`. Returns candidates sorted by predicted
/// time (best first); empty only if *nothing* fits (i.e. `M` cannot even
/// hold the problem).
///
/// Panics if `dims` or `p` are degenerate; [`try_recommend`] is the
/// panic-free variant for queries that arrive off the wire.
pub fn recommend(
    dims: MatMulDims,
    p: usize,
    m_words: f64,
    params: MachineParams,
) -> Vec<Recommendation> {
    let mut out = Vec::new();

    // Algorithm 1 on every factorization that fits in memory; keep the
    // best few distinct grids (always including the unconstrained best).
    let mut grids: Vec<[usize; 3]> = Grid3::factorizations(p);
    grids.sort_by(|a, b| alg1_cost_words(dims, *a).total_cmp(&alg1_cost_words(dims, *b)));
    let mut kept = 0;
    for grid in grids {
        let mem = alg1_memory_words(dims, grid);
        if mem > m_words {
            continue;
        }
        let cost = alg1_full_cost(dims, grid);
        out.push(Recommendation {
            strategy: Strategy::Alg1 { grid },
            time: params.time(cost),
            cost,
            memory_words: mem,
        });
        kept += 1;
        if kept >= 3 {
            break; // cheapest three feasible grids suffice for ranking
        }
    }

    // 2.5D at every feasible (q, c) with c·q² = P, c | q.
    for c in 1..=p {
        if !p.is_multiple_of(c) {
            continue;
        }
        let qq = p / c;
        let q = (qq as f64).sqrt().round() as usize;
        if q * q != qq || !q.is_multiple_of(c.min(q.max(1))) || (c > 1 && !q.is_multiple_of(c)) {
            continue;
        }
        let mem = twofived_memory_words(dims, q);
        if mem > m_words {
            continue;
        }
        let cost = twofived_cost(dims, q, c);
        out.push(Recommendation {
            strategy: Strategy::TwoFiveD { q, c },
            time: params.time(cost),
            cost,
            memory_words: mem,
        });
    }

    out.sort_by(|a, b| a.time.total_cmp(&b.time));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theorem3::lower_bound;

    const SQ: MatMulDims = MatMulDims { n1: 4096, n2: 4096, n3: 4096 };

    #[test]
    fn alg1_full_cost_matches_eq3_words() {
        let dims = MatMulDims::new(9600, 2400, 600);
        for grid in [[3usize, 1, 1], [12, 3, 1], [32, 8, 2]] {
            let c = alg1_full_cost(dims, grid);
            assert_eq!(c.words, alg1_cost_words(dims, grid));
            assert!(c.flops >= dims.mults() / grid.iter().product::<usize>() as f64);
        }
    }

    #[test]
    fn with_ample_memory_the_best_grid_wins() {
        let p = 512usize;
        let recs = recommend(SQ, p, f64::INFINITY, MachineParams::BANDWIDTH_ONLY);
        assert!(!recs.is_empty());
        match recs[0].strategy {
            Strategy::Alg1 { grid } => assert_eq!(grid, [8, 8, 8]),
            ref s => panic!("expected Alg1 cubic grid, got {s:?}"),
        }
        // And its words equal the Theorem 3 bound.
        let bound = lower_bound(SQ, p as f64).bound;
        assert!((recs[0].cost.words - bound).abs() < 1e-6 * bound);
    }

    #[test]
    fn tight_memory_excludes_3d_grids() {
        let p = 512usize;
        // The cubic grid needs 3·n²/P^{2/3} = 3·4096²/64 words; give less.
        let cubic_need = alg1_memory_words(SQ, [8, 8, 8]);
        let m = cubic_need * 0.5;
        let recs = recommend(SQ, p, m, MachineParams::BANDWIDTH_ONLY);
        assert!(!recs.is_empty(), "2D-ish strategies should still fit");
        for r in &recs {
            assert!(r.memory_words <= m, "{:?} exceeds memory", r.strategy);
            if let Strategy::Alg1 { grid } = r.strategy {
                assert_ne!(grid, [8, 8, 8], "cubic grid must be excluded");
            }
        }
        // The winner must cost more words than the unconstrained bound —
        // the §6.2 memory/communication trade-off.
        let bound = lower_bound(SQ, p as f64).bound;
        assert!(recs[0].cost.words > bound);
    }

    #[test]
    fn latency_dominant_machines_prefer_fewer_messages() {
        // With enormous α, a strategy with fewer messages wins even at
        // more words: compare ranking under α = 0 vs α huge.
        let p = 64usize;
        let bw = recommend(SQ, p, f64::INFINITY, MachineParams::BANDWIDTH_ONLY);
        let lat = recommend(SQ, p, f64::INFINITY, MachineParams::new(1e12, 0.0, 0.0));
        let msgs = |r: &Recommendation| r.cost.messages;
        // Under latency-only ranking the winner has minimal messages.
        let min_msgs = lat.iter().map(msgs).fold(f64::INFINITY, f64::min);
        assert_eq!(msgs(&lat[0]), min_msgs);
        // Under bandwidth-only ranking the winner has minimal words.
        let min_words = bw.iter().map(|r| r.cost.words).fold(f64::INFINITY, f64::min);
        assert_eq!(bw[0].cost.words, min_words);
    }

    #[test]
    fn twofived_cost_degenerates_to_cannon_at_c1() {
        let c = twofived_cost(SQ, 8, 1);
        // q shifts of A and B blocks (skew + q−1 rotations), no repl/reduce.
        let block = 2.0 * (4096.0f64 * 4096.0) / 64.0;
        assert!((c.words - 8.0 * block).abs() < 1e-6);
    }

    #[test]
    fn twofived_words_improve_with_c_at_scale() {
        // At P = 4096: c = 4 (q = 32) moves fewer words than c = 1 (q = 64).
        let flat = twofived_cost(SQ, 64, 1).words;
        let repl = twofived_cost(SQ, 32, 4).words;
        assert!(repl < flat, "2.5D c=4 {repl} should beat c=1 {flat}");
    }

    #[test]
    fn nothing_fits_returns_empty() {
        let recs = recommend(SQ, 8, 10.0, MachineParams::BANDWIDTH_ONLY);
        assert!(recs.is_empty());
    }

    #[test]
    #[should_panic(expected = "c | q")]
    fn twofived_cost_rejects_bad_layers() {
        twofived_cost(SQ, 9, 2);
    }

    #[test]
    fn try_recommend_rejects_degenerate_queries_with_typed_errors() {
        let bw = MachineParams::BANDWIDTH_ONLY;
        assert_eq!(
            try_recommend(0, 4, 4, 2, f64::INFINITY, bw),
            Err(AdvisorError::ZeroDimension { which: "n1" })
        );
        assert_eq!(
            try_recommend(4, 0, 4, 2, f64::INFINITY, bw),
            Err(AdvisorError::ZeroDimension { which: "n2" })
        );
        assert_eq!(
            try_recommend(4, 4, 0, 2, f64::INFINITY, bw),
            Err(AdvisorError::ZeroDimension { which: "n3" })
        );
        assert_eq!(try_recommend(4, 4, 4, 0, f64::INFINITY, bw), Err(AdvisorError::ZeroProcs));
        assert!(matches!(
            try_recommend(4, 4, 4, 2, f64::NAN, bw),
            Err(AdvisorError::InvalidMemory { value }) if value.is_nan()
        ));
        assert_eq!(
            try_recommend(4, 4, 4, 2, -1.0, bw),
            Err(AdvisorError::InvalidMemory { value: -1.0 })
        );
        let bad = MachineParams { alpha: f64::NAN, beta: 1.0, gamma: 0.0 };
        assert!(matches!(
            try_recommend(4, 4, 4, 2, f64::INFINITY, bad),
            Err(AdvisorError::InvalidMachine { which: "alpha", .. })
        ));
    }

    #[test]
    fn try_recommend_reports_the_feasibility_floor() {
        // M = 10 words cannot hold 3·4096²/8 words: a typed error naming
        // the §6.2 floor, where `recommend` returns an empty ranking.
        let err = try_recommend(4096, 4096, 4096, 8, 10.0, MachineParams::BANDWIDTH_ONLY);
        match err {
            Err(AdvisorError::InfeasibleMemory { need, have }) => {
                assert_eq!(have, 10.0);
                assert_eq!(need, 3.0 * 4096.0 * 4096.0 / 8.0);
            }
            other => panic!("expected InfeasibleMemory, got {other:?}"),
        }
    }

    #[test]
    fn try_recommend_agrees_with_recommend_on_valid_queries() {
        let recs =
            try_recommend(4096, 4096, 4096, 512, f64::INFINITY, MachineParams::TYPICAL_CLUSTER)
                .expect("valid query");
        let cold = recommend(SQ, 512, f64::INFINITY, MachineParams::TYPICAL_CLUSTER);
        assert_eq!(recs.len(), cold.len());
        for (a, b) in recs.iter().zip(&cold) {
            assert_eq!(a.strategy, b.strategy);
            assert_eq!(a.time.to_bits(), b.time.to_bits());
            assert_eq!(a.cost.words.to_bits(), b.cost.words.to_bits());
        }
    }
}
