//! §6.3 — the proof technique, generalized.
//!
//! The paper closes by observing that its argument "can be applied more
//! generally to other computations that have iteration spaces with uneven
//! dimensions": take any computation whose per-processor work set `F`
//! satisfies a Hölder–Brascamp–Lieb-type product inequality over its
//! array footprints,
//!
//! ```text
//!   Π_j |φ_j(F)|^{s_j} ≥ |F|,
//! ```
//!
//! add the Lemma 1-style per-array access bounds `|φ_j(F)| ≥ b_j`, and
//! minimize total access `Σ_j x_j`:
//!
//! ```text
//!   minimize  Σ_j x_j   s.t.   Σ_j s_j·ln x_j ≥ ln |F|,   x_j ≥ b_j.
//! ```
//!
//! This module solves that problem for **any** number of arrays and any
//! exponents by an active-set "water-filling" scheme that mirrors the
//! paper's case analysis: guess which lower bounds are active, solve the
//! equality-constrained remainder in closed form
//! (`x_j = μ·s_j` for free coordinates), and pin coordinates whose
//! solution violates their bound. Classical matmul is the instance
//! `s = (1/2, 1/2, 1/2)`, `|F| = mnk/P`, `b = (nk, mk, mn)/P` — and the
//! solver reproduces Lemma 2's three cases exactly (see tests).
//!
//! The objective is convex and the constraint set is convex in
//! `log`-coordinates (the product constraint is linear there), so the
//! KKT point found is the global optimum — the same Lemma 6 argument the
//! paper uses.

/// A generalized memory-independent bound instance.
#[derive(Debug, Clone)]
pub struct GenBoundProblem {
    /// HBL exponents `s_j > 0`, one per array.
    pub exponents: Vec<f64>,
    /// `|F|` — the work-set size the product inequality must cover
    /// (typically `total work / P`).
    pub work: f64,
    /// Per-array access lower bounds `b_j ≥ 0` (typically `|array_j|/P`).
    pub lower_bounds: Vec<f64>,
}

/// Solution of a [`GenBoundProblem`].
#[derive(Debug, Clone, PartialEq)]
pub struct GenBoundSolution {
    /// Optimal footprints `x_j*`.
    pub x: Vec<f64>,
    /// Which coordinates sit on their lower bound.
    pub active: Vec<bool>,
    /// The optimal objective `Σ x_j*` — the access (and, minus the data a
    /// processor may hold, communication) lower bound.
    pub total: f64,
}

impl GenBoundProblem {
    /// Construct and validate an instance.
    pub fn new(exponents: Vec<f64>, work: f64, lower_bounds: Vec<f64>) -> GenBoundProblem {
        assert_eq!(exponents.len(), lower_bounds.len(), "one bound per exponent");
        assert!(!exponents.is_empty(), "need at least one array");
        assert!(exponents.iter().all(|&s| s > 0.0 && s.is_finite()), "exponents must be > 0");
        assert!(work > 0.0 && work.is_finite(), "work must be positive");
        // work < 1 is legal (more processors than scalar operations — the
        // degenerate over-decomposed regime); the log-space algebra below
        // handles it uniformly.
        assert!(
            lower_bounds.iter().all(|&b| b >= 0.0 && b.is_finite()),
            "lower bounds must be >= 0"
        );
        GenBoundProblem { exponents, work, lower_bounds }
    }

    /// The classical-matmul instance of the general problem
    /// (`s = 1/2` each, per Loomis–Whitney): sorted dims `m ≥ n ≥ k`,
    /// arrays ordered smallest-footprint first as in Lemma 2.
    ///
    /// ```
    /// use pmm_core::genbound::GenBoundProblem;
    /// use pmm_core::optproblem::OptProblem;
    /// let gen = GenBoundProblem::matmul(9600.0, 2400.0, 600.0, 36.0).solve();
    /// let lemma2 = OptProblem::new(9600.0, 2400.0, 600.0, 36.0).solve();
    /// assert!((gen.total - lemma2.objective()).abs() < 1e-9 * gen.total);
    /// ```
    pub fn matmul(m: f64, n: f64, k: f64, p: f64) -> GenBoundProblem {
        GenBoundProblem::new(
            vec![0.5, 0.5, 0.5],
            m * n * k / p,
            vec![n * k / p, m * k / p, m * n / p],
        )
    }

    /// Is `x` feasible (products and bounds) up to a relative tolerance?
    pub fn feasible(&self, x: &[f64], rel_tol: f64) -> bool {
        if x.len() != self.exponents.len() {
            return false;
        }
        let log_prod: f64 =
            x.iter().zip(&self.exponents).map(|(&xi, &s)| s * xi.max(1e-300).ln()).sum();
        if log_prod < self.work.ln() - rel_tol.max(1e-12) {
            return false;
        }
        x.iter().zip(&self.lower_bounds).all(|(&xi, &b)| xi >= b * (1.0 - rel_tol) - rel_tol)
    }

    /// Solve by active-set water-filling.
    ///
    /// (Index-based loops are deliberate here: the algorithm is stated over
    /// coordinate indices and reads clearer that way.)
    ///
    /// Invariant per iteration: for the current active set `A`, the free
    /// coordinates solve the equality-constrained problem in closed form:
    /// stationarity gives `x_j = μ·s_j`, with `μ` fixed by the product
    /// constraint. Coordinates whose free solution falls below their bound
    /// are pinned; pinning only ever grows `A`, so at most `d` iterations.
    #[allow(clippy::needless_range_loop)]
    pub fn solve(&self) -> GenBoundSolution {
        let d = self.exponents.len();
        let ln_work = self.work.ln();
        let mut active = vec![false; d];

        loop {
            // Closed form on the free set: x_j = μ s_j with
            //   Σ_f s_j (ln μ + ln s_j) = ln|F| − Σ_A s_j ln b_j.
            let mut s_free = 0.0;
            let mut rhs = ln_work;
            for j in 0..d {
                if active[j] {
                    rhs -= self.exponents[j] * self.lower_bounds[j].max(1e-300).ln();
                } else {
                    s_free += self.exponents[j];
                }
            }
            if s_free == 0.0 {
                // Everything pinned: the bounds alone must satisfy the
                // product constraint (they do whenever b_j are the Lemma 1
                // bounds of a realizable computation).
                let x = self.lower_bounds.clone();
                let total = x.iter().sum();
                return GenBoundSolution { x, active, total };
            }
            let ln_mu = (rhs
                - (0..d)
                    .filter(|&j| !active[j])
                    .map(|j| self.exponents[j] * self.exponents[j].ln())
                    .sum::<f64>())
                / s_free;
            let mu = ln_mu.exp();

            let mut x = vec![0.0; d];
            let mut worst: Option<(usize, f64)> = None;
            for j in 0..d {
                if active[j] {
                    x[j] = self.lower_bounds[j];
                } else {
                    x[j] = mu * self.exponents[j];
                    let slack = x[j] - self.lower_bounds[j];
                    if slack < -1e-12 * self.lower_bounds[j].max(1.0) {
                        // Violated: candidate for pinning; pin the most
                        // violated (relative) first.
                        let rel = slack / self.lower_bounds[j].max(1e-300);
                        if worst.map(|(_, w)| rel < w).unwrap_or(true) {
                            worst = Some((j, rel));
                        }
                    }
                }
            }
            match worst {
                Some((j, _)) => active[j] = true,
                None => {
                    let total = x.iter().sum();
                    return GenBoundSolution { x, active, total };
                }
            }
        }
    }

    /// Brute-force cross-check: enumerate all `2^d` active sets, solve
    /// each in closed form, keep the best feasible one. Exponential — for
    /// tests and small `d` only.
    #[allow(clippy::needless_range_loop)]
    pub fn solve_bruteforce(&self) -> GenBoundSolution {
        let d = self.exponents.len();
        assert!(d <= 16, "brute force is exponential in the number of arrays");
        let ln_work = self.work.ln();
        let mut best: Option<GenBoundSolution> = None;
        for mask in 0u32..(1 << d) {
            let active: Vec<bool> = (0..d).map(|j| mask >> j & 1 == 1).collect();
            let mut s_free = 0.0;
            let mut rhs = ln_work;
            for j in 0..d {
                if active[j] {
                    rhs -= self.exponents[j] * self.lower_bounds[j].max(1e-300).ln();
                } else {
                    s_free += self.exponents[j];
                }
            }
            let x: Vec<f64> = if s_free == 0.0 {
                self.lower_bounds.clone()
            } else {
                let ln_mu = (rhs
                    - (0..d)
                        .filter(|&j| !active[j])
                        .map(|j| self.exponents[j] * self.exponents[j].ln())
                        .sum::<f64>())
                    / s_free;
                let mu = ln_mu.exp();
                (0..d)
                    .map(|j| if active[j] { self.lower_bounds[j] } else { mu * self.exponents[j] })
                    .collect()
            };
            if !self.feasible(&x, 1e-9) {
                continue;
            }
            let total: f64 = x.iter().sum();
            if best.as_ref().map(|b| total < b.total).unwrap_or(true) {
                best = Some(GenBoundSolution { x, active, total });
            }
        }
        best.expect("at least the all-active set is feasible for realizable instances")
    }

    /// The symmetric `d`-dimensional analogue of square matmul: a cubical
    /// iteration space `n^d`, one array per axis-dropping projection
    /// (`|φ_j| = n^{d−1}`), HBL exponents `s_j = 1/(d−1)`. For `d = 3`
    /// this is square matmul; larger `d` models direct `d`-ary tensor
    /// contractions — the "other computations" §6.3 points at.
    pub fn symmetric_tensor(d: usize, n: f64, p: f64) -> GenBoundProblem {
        assert!(d >= 2);
        let s = 1.0 / (d as f64 - 1.0);
        GenBoundProblem::new(vec![s; d], n.powi(d as i32) / p, vec![n.powi(d as i32 - 1) / p; d])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optproblem::OptProblem;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
    }

    #[test]
    fn reproduces_lemma2_in_all_three_cases() {
        for p in [1.0, 2.0, 3.0, 4.0, 16.0, 36.0, 64.0, 512.0, 1e5] {
            let lemma2 = OptProblem::new(9600.0, 2400.0, 600.0, p).solve();
            let gen = GenBoundProblem::matmul(9600.0, 2400.0, 600.0, p).solve();
            for i in 0..3 {
                assert!(
                    close(gen.x[i], lemma2.x[i], 1e-9),
                    "P={p}, x{i}: general {} vs Lemma 2 {}",
                    gen.x[i],
                    lemma2.x[i]
                );
            }
            assert!(close(gen.total, lemma2.objective(), 1e-9));
        }
    }

    #[test]
    fn reproduces_lemma2_on_random_shapes() {
        let mut state = 0xdeadbeefu64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for _ in 0..50 {
            let k = 1.0 + (next() * 40.0).floor();
            let n = k + (next() * 400.0).floor();
            let m = n + (next() * 4000.0).floor();
            let p = 1.0 + (next() * 500.0).floor();
            let lemma2 = OptProblem::new(m, n, k, p).solve();
            let gen = GenBoundProblem::matmul(m, n, k, p).solve();
            assert!(
                close(gen.total, lemma2.objective(), 1e-9),
                "({m},{n},{k},{p}): {} vs {}",
                gen.total,
                lemma2.objective()
            );
        }
    }

    #[test]
    fn active_sets_match_the_case_structure() {
        // 1D case: b2 and b3 active; 2D: b3; 3D: none.
        let act = |p: f64| GenBoundProblem::matmul(9600.0, 2400.0, 600.0, p).solve().active;
        assert_eq!(act(3.0), vec![false, true, true]);
        assert_eq!(act(36.0), vec![false, false, true]);
        assert_eq!(act(512.0), vec![false, false, false]);
    }

    #[test]
    fn waterfilling_agrees_with_bruteforce() {
        let mut state = 7u64;
        let mut next = move || {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for _ in 0..100 {
            let d = 2 + (next() * 5.0) as usize; // 2..=6 arrays
            let exps: Vec<f64> = (0..d).map(|_| 0.2 + next()).collect();
            let bounds: Vec<f64> = (0..d).map(|_| 1.0 + next() * 1000.0).collect();
            // Work chosen so the instance is realizable: the all-active
            // point must be feasible.
            let max_work: f64 =
                exps.iter().zip(&bounds).map(|(&s, &b)| s * b.ln()).sum::<f64>().exp();
            let work = 1.0 + next() * (max_work - 1.0).max(0.0);
            let prob = GenBoundProblem::new(exps, work, bounds);
            let ws = prob.solve();
            let bf = prob.solve_bruteforce();
            assert!(prob.feasible(&ws.x, 1e-9), "water-filling infeasible: {ws:?}");
            assert!(
                close(ws.total, bf.total, 1e-7),
                "waterfilling {} vs bruteforce {} on {prob:?}",
                ws.total,
                bf.total
            );
        }
    }

    #[test]
    fn symmetric_tensor_reduces_to_square_matmul_at_d3() {
        let gen = GenBoundProblem::symmetric_tensor(3, 100.0, 8.0).solve();
        let lemma2 = OptProblem::new(100.0, 100.0, 100.0, 8.0).solve();
        assert!(close(gen.total, lemma2.objective(), 1e-9));
    }

    #[test]
    fn symmetric_tensor_scaling_exponent() {
        // Unconstrained regime: total = d·(n^d/P)^{(d−1)/d}.
        for d in [3usize, 4, 5] {
            let (n, p) = (32.0f64, 4096.0);
            let sol = GenBoundProblem::symmetric_tensor(d, n, p).solve();
            let want = d as f64 * (n.powi(d as i32) / p).powf((d as f64 - 1.0) / d as f64);
            if sol.active.iter().all(|&a| !a) {
                assert!(close(sol.total, want, 1e-9), "d={d}: {} vs {want}", sol.total);
            }
            // And with P = 1 everything is pinned to the full arrays.
            let sol1 = GenBoundProblem::symmetric_tensor(d, n, 1.0).solve();
            assert!(close(sol1.total, d as f64 * n.powi(d as i32 - 1), 1e-9));
        }
    }

    #[test]
    fn pinning_more_processors_decreases_total() {
        let mut prev = f64::INFINITY;
        for p in [1.0, 4.0, 64.0, 4096.0] {
            let t = GenBoundProblem::symmetric_tensor(4, 64.0, p).solve().total;
            assert!(t <= prev + 1e-9);
            prev = t;
        }
    }

    #[test]
    fn uneven_exponents_shift_the_split() {
        // With a heavier exponent, an array absorbs more of the product
        // constraint and gets a smaller footprint (x_j = μ·s_j: larger s_j
        // ⇒ larger share — check the stationarity shape directly).
        let prob = GenBoundProblem::new(vec![0.25, 0.75], 1e6, vec![1.0, 1.0]);
        let sol = prob.solve();
        assert!(sol.x[1] > sol.x[0]);
        assert!((sol.x[1] / sol.x[0] - 3.0).abs() < 1e-9, "ratio equals s2/s1");
        assert!(prob.feasible(&sol.x, 1e-9));
    }

    #[test]
    #[should_panic(expected = "one bound per exponent")]
    fn mismatched_lengths_rejected() {
        GenBoundProblem::new(vec![0.5], 10.0, vec![1.0, 2.0]);
    }
}
