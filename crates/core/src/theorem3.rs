//! Theorem 3 and Corollary 4 — the memory-independent lower bounds.

use pmm_model::{Case, MatMulDims};

use crate::optproblem::OptProblem;

/// The evaluated lower bound for one `(dims, P)` instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundReport {
    /// Which of the three cases applies.
    pub case: Case,
    /// `D`, the optimum of the Lemma 2 problem: the least possible
    /// `|φ_A| + |φ_B| + |φ_C|` for one processor.
    pub d: f64,
    /// `(mn + mk + nk)/P` — the data a processor may hold at start/end
    /// without violating the one-copy assumption.
    pub offset: f64,
    /// The communication lower bound `D − offset` in words. Zero exactly
    /// at `P = 1` (never negative).
    pub bound: f64,
    /// The case's leading term *without* its constant:
    /// `nk`, `(mnk²/P)^{1/2}`, or `(mnk/P)^{2/3}`.
    pub leading_term: f64,
    /// The tight constant on the leading term: 1, 2 or 3.
    pub constant: f64,
}

/// Evaluate the Theorem 3 lower bound for multiplying `n1×n2` by `n2×n3`
/// on `p` processors.
///
/// ```
/// use pmm_core::{lower_bound, MatMulDims};
/// // Square multiplication: Corollary 4's 3n²/P^{2/3} − 3n²/P.
/// let r = lower_bound(MatMulDims::square(1000), 8.0);
/// assert!((r.bound - (3.0 * 1e6 / 4.0 - 3.0 * 1e6 / 8.0)).abs() < 1e-6);
/// ```
pub fn lower_bound(dims: MatMulDims, p: f64) -> BoundReport {
    let s = dims.sorted();
    let prob = OptProblem::from_dims(s, p);
    let sol = prob.solve();
    let d = sol.objective();
    let offset = s.total_words() / p;
    let (m, n, k) = (s.m as f64, s.n as f64, s.k as f64);
    let (leading_term, constant) = match sol.case {
        Case::OneD => (n * k, 1.0),
        Case::TwoD => ((m * n * k * k / p).sqrt(), 2.0),
        Case::ThreeD => ((m * n * k / p).powf(2.0 / 3.0), 3.0),
    };
    BoundReport { case: sol.case, d, offset, bound: (d - offset).max(0.0), leading_term, constant }
}

/// Corollary 4: for square `n × n` multiplication the bound simplifies to
/// `3n²/P^{2/3} − 3n²/P`.
pub fn corollary4(n: u64, p: f64) -> f64 {
    assert!(p >= 1.0);
    let n2 = (n as f64) * (n as f64);
    3.0 * n2 / p.powf(2.0 / 3.0) - 3.0 * n2 / p
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER: MatMulDims = MatMulDims { n1: 9600, n2: 2400, n3: 600 };

    #[test]
    fn case1_bound_matches_closed_form() {
        // 1 ≤ P ≤ 4: bound = (1 − 1/P)·nk.
        for p in [1.0, 2.0, 3.0, 4.0] {
            let r = lower_bound(PAPER, p);
            assert_eq!(r.case, Case::OneD);
            let want = (1.0 - 1.0 / p) * 2400.0 * 600.0;
            assert!((r.bound - want).abs() < 1e-6, "P={p}: {} vs {}", r.bound, want);
            assert_eq!(r.constant, 1.0);
        }
    }

    #[test]
    fn case2_bound_matches_closed_form() {
        for p in [9.0, 16.0, 36.0, 64.0] {
            let r = lower_bound(PAPER, p);
            assert_eq!(r.case, Case::TwoD);
            let (m, n, k) = (9600.0f64, 2400.0, 600.0);
            let want = 2.0 * (m * n * k * k / p).sqrt() - (m * k + n * k) / p;
            assert!((r.bound - want).abs() < 1e-6 * want, "P={p}: {} vs {}", r.bound, want);
            assert_eq!(r.constant, 2.0);
        }
    }

    #[test]
    fn case3_bound_matches_closed_form() {
        for p in [100.0, 512.0, 4096.0] {
            let r = lower_bound(PAPER, p);
            assert_eq!(r.case, Case::ThreeD);
            let (m, n, k) = (9600.0f64, 2400.0, 600.0);
            let want = 3.0 * (m * n * k / p).powf(2.0 / 3.0) - (m * n + m * k + n * k) / p;
            assert!((r.bound - want).abs() < 1e-6 * want, "P={p}");
            assert_eq!(r.constant, 3.0);
        }
    }

    #[test]
    fn bound_is_zero_at_p_equals_one() {
        for dims in [PAPER, MatMulDims::square(100), MatMulDims::new(7, 5, 3)] {
            let r = lower_bound(dims, 1.0);
            assert_eq!(r.bound, 0.0, "{dims}");
        }
    }

    #[test]
    fn bound_is_continuous_across_thresholds() {
        for pb in [4.0, 64.0] {
            let lo = lower_bound(PAPER, pb * (1.0 - 1e-10));
            let hi = lower_bound(PAPER, pb * (1.0 + 1e-10));
            let rel = (lo.bound - hi.bound).abs() / lo.bound.max(1.0);
            assert!(rel < 1e-6, "jump at P={pb}: {} vs {}", lo.bound, hi.bound);
        }
    }

    #[test]
    fn corollary4_matches_theorem3_for_square() {
        for (n, p) in [(100u64, 8.0), (1000, 64.0), (256, 27.0)] {
            let via_thm = lower_bound(MatMulDims::square(n), p).bound;
            let via_cor = corollary4(n, p);
            assert!(
                (via_thm - via_cor).abs() < 1e-6 * via_cor.max(1.0),
                "n={n} P={p}: {via_thm} vs {via_cor}"
            );
        }
    }

    #[test]
    fn d_equals_leading_terms_composition() {
        // Case 1: D = (mn+mk)/P + nk; the non-leading part is (mn+mk)/P.
        let r = lower_bound(PAPER, 2.0);
        let (m, n, k) = (9600.0f64, 2400.0, 600.0);
        assert!((r.d - ((m * n + m * k) / 2.0 + n * k)).abs() < 1e-9);
        // Case 2: D = 2(mnk²/P)^{1/2} + mn/P.
        let r = lower_bound(PAPER, 16.0);
        assert!((r.d - (r.constant * r.leading_term + m * n / 16.0)).abs() < 1e-6);
        // Case 3: D = 3(mnk/P)^{2/3}.
        let r = lower_bound(PAPER, 1000.0);
        assert!((r.d - r.constant * r.leading_term).abs() < 1e-6 * r.d);
    }

    #[test]
    fn dims_order_does_not_matter() {
        let a = lower_bound(MatMulDims::new(9600, 2400, 600), 36.0);
        let b = lower_bound(MatMulDims::new(600, 2400, 9600), 36.0);
        let c = lower_bound(MatMulDims::new(2400, 9600, 600), 36.0);
        assert!((a.bound - b.bound).abs() < 1e-9);
        assert!((a.bound - c.bound).abs() < 1e-9);
    }

    #[test]
    fn data_accessed_d_is_monotone_nonincreasing_in_p() {
        // D — the least data one processor must access — shrinks (weakly)
        // as P grows. (The communication bound D − offset is NOT monotone:
        // in the 1D case (1 − 1/P)·nk grows with P.)
        let mut prev = f64::INFINITY;
        for p in [1.0, 2.0, 4.0, 8.0, 64.0, 512.0, 4096.0, 1e6] {
            let d = lower_bound(PAPER, p).d;
            assert!(d <= prev + 1e-9, "D should not increase with P (P={p})");
            prev = d;
        }
    }

    #[test]
    fn communication_bound_grows_through_case1() {
        // Sanity of the non-monotonicity note above: within the 1D case
        // the bound equals (1 − 1/P)·nk, increasing in P.
        let b2 = lower_bound(PAPER, 2.0).bound;
        let b4 = lower_bound(PAPER, 4.0).bound;
        assert!(b4 > b2);
    }
}
