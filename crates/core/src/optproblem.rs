//! Lemma 2 — the key constrained optimization problem.
//!
//! ```text
//!   minimize   x1 + x2 + x3
//!   subject to x1·x2·x3 ≥ (mnk/P)²     (Loomis–Whitney)
//!              x1 ≥ nk/P               (Lemma 1, smallest matrix)
//!              x2 ≥ mk/P               (Lemma 1, middle matrix)
//!              x3 ≥ mn/P               (Lemma 1, largest matrix)
//! ```
//!
//! `x_i` is the size of the projection of one processor's work onto the
//! `i`-th smallest matrix. The analytic solution has three regimes
//! depending on how many of the individual lower bounds are active; the
//! case thresholds `P = m/n` and `P = mn/k²` become the 1D/2D/3D
//! boundaries of Theorem 3.

use pmm_model::{Case, SortedDims};

/// An instance of the Lemma 2 optimization problem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptProblem {
    /// Maximum dimension (`m ≥ n ≥ k ≥ 1`).
    pub m: f64,
    /// Median dimension.
    pub n: f64,
    /// Minimum dimension.
    pub k: f64,
    /// Number of processors (`P ≥ 1`).
    pub p: f64,
}

/// The solution of an [`OptProblem`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptSolution {
    /// Optimal `(x1, x2, x3)`, ordered smallest-matrix first.
    pub x: [f64; 3],
    /// Which of the three regimes the instance falls into.
    pub case: Case,
}

impl OptSolution {
    /// The optimal objective value `x1 + x2 + x3` — the paper's `D`.
    pub fn objective(&self) -> f64 {
        self.x.iter().sum()
    }
}

impl OptProblem {
    /// Build an instance from raw dimensions; panics unless
    /// `m ≥ n ≥ k ≥ 1` and `p ≥ 1`.
    pub fn new(m: f64, n: f64, k: f64, p: f64) -> OptProblem {
        assert!(
            m >= n && n >= k && k >= 1.0,
            "dimensions must satisfy m >= n >= k >= 1 (got {m}, {n}, {k})"
        );
        assert!(p >= 1.0, "P must be >= 1");
        assert!(m.is_finite() && p.is_finite(), "inputs must be finite");
        OptProblem { m, n, k, p }
    }

    /// Instance for a dimension triple and processor count.
    pub fn from_dims(dims: SortedDims, p: f64) -> OptProblem {
        OptProblem::new(dims.m as f64, dims.n as f64, dims.k as f64, p)
    }

    /// The individual lower bounds `(nk/P, mk/P, mn/P)` on `(x1, x2, x3)`.
    pub fn lower_bounds(&self) -> [f64; 3] {
        [self.n * self.k / self.p, self.m * self.k / self.p, self.m * self.n / self.p]
    }

    /// The Loomis–Whitney product bound `(mnk/P)²`.
    pub fn product_bound(&self) -> f64 {
        let v = self.m * self.n * self.k / self.p;
        v * v
    }

    /// The objective `x1 + x2 + x3`.
    pub fn objective(&self, x: [f64; 3]) -> f64 {
        x.iter().sum()
    }

    /// Constraint values `g(x) ≤ 0` in the paper's order:
    /// `[L − x1x2x3, b1 − x1, b2 − x2, b3 − x3]`.
    pub fn constraints(&self, x: [f64; 3]) -> [f64; 4] {
        let b = self.lower_bounds();
        [self.product_bound() - x[0] * x[1] * x[2], b[0] - x[0], b[1] - x[1], b[2] - x[2]]
    }

    /// Is `x` feasible up to a relative tolerance?
    pub fn feasible(&self, x: [f64; 3], rel_tol: f64) -> bool {
        let scale = self.product_bound().max(1.0);
        let g = self.constraints(x);
        g[0] <= rel_tol * scale
            && (1..4).all(|i| g[i] <= rel_tol * self.lower_bounds()[i - 1].max(1.0))
    }

    /// Which case the instance falls in (boundaries resolve downward, where
    /// the adjacent formulas coincide).
    pub fn case(&self) -> Case {
        if self.p <= self.m / self.n {
            Case::OneD
        } else if self.p <= self.m * self.n / (self.k * self.k) {
            Case::TwoD
        } else {
            Case::ThreeD
        }
    }

    /// The analytic optimal solution (Lemma 2).
    ///
    /// ```
    /// use pmm_core::optproblem::OptProblem;
    /// use pmm_core::Case;
    /// // The paper's instance at P = 512 falls in the 3D case:
    /// let sol = OptProblem::new(9600.0, 2400.0, 600.0, 512.0).solve();
    /// assert_eq!(sol.case, Case::ThreeD);
    /// // x1* = x2* = x3* = (mnk/P)^(2/3)
    /// assert_eq!(sol.x[0], sol.x[2]);
    /// ```
    pub fn solve(&self) -> OptSolution {
        let (m, n, k, p) = (self.m, self.n, self.k, self.p);
        let case = self.case();
        let x = match case {
            Case::OneD => [n * k, m * k / p, m * n / p],
            Case::TwoD => {
                let x12 = (m * n * k * k / p).sqrt();
                [x12, x12, m * n / p]
            }
            Case::ThreeD => {
                let x = (m * n * k / p).powf(2.0 / 3.0);
                [x, x, x]
            }
        };
        OptSolution { x, case }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmm_model::MatMulDims;

    fn paper_instance(p: f64) -> OptProblem {
        // §5.3: m = 9600, n = 2400, k = 600; thresholds 4 and 64.
        OptProblem::new(9600.0, 2400.0, 600.0, p)
    }

    #[test]
    fn case_classification_matches_paper_example() {
        assert_eq!(paper_instance(3.0).case(), Case::OneD);
        assert_eq!(paper_instance(36.0).case(), Case::TwoD);
        assert_eq!(paper_instance(512.0).case(), Case::ThreeD);
    }

    #[test]
    fn solutions_are_feasible_in_all_cases() {
        for p in [1.0, 2.0, 4.0, 10.0, 36.0, 64.0, 100.0, 512.0, 1e6] {
            let prob = paper_instance(p);
            let sol = prob.solve();
            assert!(prob.feasible(sol.x, 1e-12), "P={p}: {:?} infeasible", sol.x);
        }
    }

    #[test]
    fn case1_solution_values() {
        let prob = paper_instance(3.0);
        let sol = prob.solve();
        assert_eq!(sol.x[0], 2400.0 * 600.0);
        assert_eq!(sol.x[1], 9600.0 * 600.0 / 3.0);
        assert_eq!(sol.x[2], 9600.0 * 2400.0 / 3.0);
    }

    #[test]
    fn case2_ties_x1_x2_and_pins_x3() {
        let prob = paper_instance(36.0);
        let sol = prob.solve();
        assert_eq!(sol.x[0], sol.x[1]);
        assert_eq!(sol.x[2], 9600.0 * 2400.0 / 36.0);
        let want = (9600.0f64 * 2400.0 * 600.0 * 600.0 / 36.0).sqrt();
        assert!((sol.x[0] - want).abs() < 1e-9 * want);
    }

    #[test]
    fn case3_is_symmetric() {
        let prob = paper_instance(512.0);
        let sol = prob.solve();
        assert_eq!(sol.x[0], sol.x[1]);
        assert_eq!(sol.x[1], sol.x[2]);
        let want = (9600.0f64 * 2400.0 * 600.0 / 512.0).powf(2.0 / 3.0);
        assert!((sol.x[0] - want).abs() < 1e-9 * want);
    }

    #[test]
    fn solution_is_continuous_at_case_boundaries() {
        // At P = m/n and P = mn/k² adjacent formulas must coincide.
        for (mnk, pb) in [((9600u64, 2400u64, 600u64), 4.0), ((9600, 2400, 600), 64.0)] {
            let dims = MatMulDims::new(mnk.0, mnk.1, mnk.2).sorted();
            let eps = 1e-9;
            let lo = OptProblem::from_dims(dims, pb * (1.0 - eps)).solve();
            let hi = OptProblem::from_dims(dims, pb * (1.0 + eps)).solve();
            for i in 0..3 {
                let rel = (lo.x[i] - hi.x[i]).abs() / lo.x[i];
                assert!(rel < 1e-6, "discontinuity at P={pb}, x{i}: {} vs {}", lo.x[i], hi.x[i]);
            }
        }
    }

    #[test]
    fn square_case_collapses_to_3d_for_p_gt_1() {
        let prob = OptProblem::new(100.0, 100.0, 100.0, 8.0);
        let sol = prob.solve();
        assert_eq!(sol.case, Case::ThreeD);
        let want = (1e6f64 / 8.0).powf(2.0 / 3.0);
        assert!((sol.x[0] - want).abs() < 1e-9 * want);
    }

    #[test]
    fn p_equals_one_gives_whole_matrices() {
        // With one processor the projections are the full matrices.
        let prob = OptProblem::new(30.0, 20.0, 10.0, 1.0);
        let sol = prob.solve();
        assert_eq!(sol.x, [200.0, 300.0, 600.0]);
        assert_eq!(sol.objective(), 1100.0);
    }

    #[test]
    fn objective_increases_with_decreasing_p() {
        let mut prev = f64::INFINITY;
        for p in [1024.0, 256.0, 64.0, 16.0, 4.0, 1.0] {
            let d = paper_instance(p).solve().objective();
            assert!(d >= prev * 0.999_999 || prev == f64::INFINITY, "D should grow as P shrinks");
            let _ = std::mem::replace(&mut prev, d);
        }
    }

    #[test]
    #[should_panic(expected = "m >= n >= k")]
    fn unsorted_dims_rejected() {
        OptProblem::new(10.0, 20.0, 5.0, 2.0);
    }
}
