//! Loomis–Whitney machinery over explicit lattice sets (Lemma 1 of §3.2).
//!
//! For a finite set `V` of lattice points in ℝ³ with axis projections
//! `φ_i(V)`, `|V| ≤ |φ_1(V)|·|φ_2(V)|·|φ_3(V)|`.
//!
//! In the paper the set `V` is the multiplication set `F` assigned to one
//! processor: point `(i1, i2, i3)` is the scalar multiplication
//! `A(i1,i2)·B(i2,i3)` contributing to `C(i1,i3)`, and the projections are
//! precisely the entries of `A`, `B`, `C` the processor must access
//! (`φ_A` drops `i3`, `φ_B` drops `i1`, `φ_C` drops `i2`).
//!
//! This module makes those objects concrete so tests can check the
//! inequality, the Lemma 1 access bounds, and the Lemma 2 optimum against
//! explicitly enumerated work sets.

use std::collections::HashSet;

use pmm_model::MatrixId;

/// A finite set of lattice points `(i1, i2, i3)`.
#[derive(Debug, Clone, Default)]
pub struct LatticeSet {
    points: HashSet<[u32; 3]>,
}

impl LatticeSet {
    /// The empty set.
    pub fn new() -> LatticeSet {
        LatticeSet::default()
    }

    /// Insert a point; returns true if newly inserted.
    pub fn insert(&mut self, p: [u32; 3]) -> bool {
        self.points.insert(p)
    }

    /// From an iterator of points.
    pub fn from_points(points: impl IntoIterator<Item = [u32; 3]>) -> LatticeSet {
        LatticeSet { points: points.into_iter().collect() }
    }

    /// The full `n1 × n2 × n3` cuboid — the iteration space of the matmul.
    pub fn cuboid(n1: u32, n2: u32, n3: u32) -> LatticeSet {
        let mut points = HashSet::with_capacity((n1 * n2 * n3) as usize);
        for i1 in 0..n1 {
            for i2 in 0..n2 {
                for i3 in 0..n3 {
                    points.insert([i1, i2, i3]);
                }
            }
        }
        LatticeSet { points }
    }

    /// The axis-aligned brick `[r1.0, r1.1) × [r2.0, r2.1) × [r3.0, r3.1)`
    /// — the work set of one processor in a 3D-grid algorithm.
    pub fn brick(r1: (u32, u32), r2: (u32, u32), r3: (u32, u32)) -> LatticeSet {
        let mut points = HashSet::new();
        for i1 in r1.0..r1.1 {
            for i2 in r2.0..r2.1 {
                for i3 in r3.0..r3.1 {
                    points.insert([i1, i2, i3]);
                }
            }
        }
        LatticeSet { points }
    }

    /// Number of points `|V|`.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterate over the points.
    pub fn iter(&self) -> impl Iterator<Item = &[u32; 3]> {
        self.points.iter()
    }

    /// `|φ(V)|` for the projection that drops `axis`.
    pub fn projection_size(&self, axis: usize) -> usize {
        assert!(axis < 3, "axis must be 0, 1 or 2");
        let mut proj = HashSet::with_capacity(self.points.len());
        let (a, b) = match axis {
            0 => (1, 2),
            1 => (0, 2),
            _ => (0, 1),
        };
        for p in &self.points {
            proj.insert([p[a], p[b]]);
        }
        proj.len()
    }

    /// The number of entries of matrix `id` touched by this work set —
    /// `|φ_A|`, `|φ_B|`, or `|φ_C|`.
    pub fn matrix_footprint(&self, id: MatrixId) -> usize {
        self.projection_size(id.missing_axis())
    }

    /// The three matrix footprints `(|φ_A|, |φ_B|, |φ_C|)`.
    pub fn footprints(&self) -> [usize; 3] {
        [
            self.matrix_footprint(MatrixId::A),
            self.matrix_footprint(MatrixId::B),
            self.matrix_footprint(MatrixId::C),
        ]
    }

    /// Check the Loomis–Whitney inequality
    /// `|V| ≤ |φ_1|·|φ_2|·|φ_3|` for this set.
    pub fn satisfies_loomis_whitney(&self) -> bool {
        let prod = self.projection_size(0) as u128
            * self.projection_size(1) as u128
            * self.projection_size(2) as u128;
        (self.len() as u128) <= prod
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn cuboid_projections_are_faces() {
        let v = LatticeSet::cuboid(3, 4, 5);
        assert_eq!(v.len(), 60);
        assert_eq!(v.projection_size(0), 20); // drop i1 → n2·n3
        assert_eq!(v.projection_size(1), 15); // n1·n3
        assert_eq!(v.projection_size(2), 12); // n1·n2
        assert!(v.satisfies_loomis_whitney());
    }

    #[test]
    fn matrix_footprints_match_faces() {
        let v = LatticeSet::cuboid(3, 4, 5);
        // A is n1×n2 = 12, B is n2×n3 = 20, C is n1×n3 = 15.
        assert_eq!(v.footprints(), [12, 20, 15]);
    }

    #[test]
    fn brick_footprints_are_products_of_side_lengths() {
        let v = LatticeSet::brick((1, 3), (0, 4), (2, 7));
        assert_eq!(v.len(), 2 * 4 * 5);
        assert_eq!(v.matrix_footprint(MatrixId::A), 8); // 2·4
        assert_eq!(v.matrix_footprint(MatrixId::B), 20); // 4·5
        assert_eq!(v.matrix_footprint(MatrixId::C), 10); // 2·5
        assert!(v.satisfies_loomis_whitney());
    }

    #[test]
    fn diagonal_set_maximizes_slack() {
        // The diagonal {(i,i,i)} has |V| = n but projections of size n each.
        let v = LatticeSet::from_points((0..10u32).map(|i| [i, i, i]));
        assert_eq!(v.len(), 10);
        assert_eq!(v.footprints(), [10, 10, 10]);
        assert!(v.satisfies_loomis_whitney());
    }

    #[test]
    fn random_subsets_always_satisfy_loomis_whitney() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..50 {
            let mut v = LatticeSet::new();
            let n = rng.random_range(1..200usize);
            for _ in 0..n {
                v.insert([
                    rng.random_range(0..8u32),
                    rng.random_range(0..8u32),
                    rng.random_range(0..8u32),
                ]);
            }
            assert!(v.satisfies_loomis_whitney());
        }
    }

    #[test]
    fn empty_set() {
        let v = LatticeSet::new();
        assert!(v.is_empty());
        assert_eq!(v.footprints(), [0, 0, 0]);
        assert!(v.satisfies_loomis_whitney());
    }

    #[test]
    fn brick_sum_of_footprints_matches_lemma2_optimum_for_optimal_grid() {
        // For a divisible 3D-case instance, the cube-shaped brick achieves
        // the Lemma 2 optimum exactly: the lower bound is tight on bricks.
        use crate::optproblem::OptProblem;
        // m = n = k = 12, P = 27 → brick 4×4×4.
        let v = LatticeSet::brick((0, 4), (0, 4), (0, 4));
        let sum: usize = v.footprints().iter().sum();
        let prob = OptProblem::new(12.0, 12.0, 12.0, 27.0);
        let d = prob.solve().objective();
        assert!((sum as f64 - d).abs() < 1e-9 * d, "{sum} vs {d}");
    }
}
