//! KKT machinery (Defs. 2–4, Lemmas 5–6 of the paper).
//!
//! The paper proves Lemma 2 by exhibiting, for each case, dual variables
//! `μ*` such that `(x*, μ*)` satisfies the Karush–Kuhn–Tucker conditions;
//! Lemma 6 (convex objective + quasiconvex constraints, Lemma 5) makes
//! those conditions *sufficient* for global optimality.
//!
//! This module reproduces the certificates from the paper's three case
//! proofs ([`certificate_for`]) and provides a numeric verifier
//! ([`verify_kkt`]) that checks all four KKT conditions for any candidate
//! pair — the executable analogue of the paper's "direct verification".

use crate::optproblem::OptProblem;

/// Outcome of checking the KKT conditions for a candidate `(x, μ)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KktReport {
    /// `g(x) ≤ 0` (up to tolerance).
    pub primal_feasible: bool,
    /// `μ ≥ 0` (up to tolerance).
    pub dual_feasible: bool,
    /// `‖∇f(x) + μ·J_g(x)‖_∞`, normalized by the gradient scale.
    pub stationarity_residual: f64,
    /// `max_i |μ_i · g_i(x)|`, normalized.
    pub complementary_slackness_residual: f64,
}

impl KktReport {
    /// All four conditions hold within `tol`.
    pub fn holds(&self, tol: f64) -> bool {
        self.primal_feasible
            && self.dual_feasible
            && self.stationarity_residual <= tol
            && self.complementary_slackness_residual <= tol
    }
}

/// The gradient of the objective is `(1, 1, 1)`; the Jacobian of `g` is
/// `[[-x2x3, -x1x3, -x1x2], [-1,0,0], [0,-1,0], [0,0,-1]]`.
fn stationarity_residual(x: [f64; 3], mu: [f64; 4]) -> f64 {
    let grad_g0 = [-x[1] * x[2], -x[0] * x[2], -x[0] * x[1]];
    let mut worst: f64 = 0.0;
    for i in 0..3 {
        // ∇f_i + μ0·∇g0_i + μ_{i+1}·(-1)
        let r = 1.0 + mu[0] * grad_g0[i] - mu[i + 1];
        // normalize by the largest term magnitude so huge dimensions don't
        // inflate the residual
        let scale = 1.0f64.max((mu[0] * grad_g0[i]).abs()).max(mu[i + 1].abs());
        worst = worst.max(r.abs() / scale);
    }
    worst
}

/// Numerically verify the KKT conditions of Def. 4 for `(x, μ)` on
/// `problem`, with relative tolerance `tol`.
pub fn verify_kkt(problem: &OptProblem, x: [f64; 3], mu: [f64; 4], tol: f64) -> KktReport {
    let g = problem.constraints(x);
    let scale0 = problem.product_bound().max(1.0);
    let b = problem.lower_bounds();
    let primal_feasible = g[0] <= tol * scale0 && (0..3).all(|i| g[i + 1] <= tol * b[i].max(1.0));
    let dual_feasible = mu.iter().all(|&m| m >= -tol);
    let comp = {
        let mut worst: f64 = 0.0;
        // normalize each product by the scale of its constraint
        worst = worst.max((mu[0] * g[0]).abs() / (scale0 * mu[0].max(1.0)));
        for i in 0..3 {
            worst = worst.max((mu[i + 1] * g[i + 1]).abs() / (b[i].max(1.0) * mu[i + 1].max(1.0)));
        }
        worst
    };
    KktReport {
        primal_feasible,
        dual_feasible,
        stationarity_residual: stationarity_residual(x, mu),
        complementary_slackness_residual: comp,
    }
}

/// The paper's dual certificate `μ*` for the instance's case:
///
/// * 1D: `μ* = (P²/(m²nk), 0, 1 − Pn/m, 1 − Pk/m)`
/// * 2D: `μ* = ((P/(mnk^{2/3}))^{3/2}, 0, 0, 1 − (Pk²/(mn))^{1/2})`
/// * 3D: `μ* = ((P/(mnk))^{4/3}, 0, 0, 0)`
pub fn certificate_for(problem: &OptProblem) -> [f64; 4] {
    let (m, n, k, p) = (problem.m, problem.n, problem.k, problem.p);
    match problem.case() {
        pmm_model::Case::OneD => [p * p / (m * m * n * k), 0.0, 1.0 - p * n / m, 1.0 - p * k / m],
        pmm_model::Case::TwoD => {
            let mu1 = (p / (m * n * k.powf(2.0 / 3.0))).powf(1.5);
            [mu1, 0.0, 0.0, 1.0 - (p * k * k / (m * n)).sqrt()]
        }
        pmm_model::Case::ThreeD => [(p / (m * n * k)).powf(4.0 / 3.0), 0.0, 0.0, 0.0],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_instance(p: f64) -> OptProblem {
        OptProblem::new(9600.0, 2400.0, 600.0, p)
    }

    #[test]
    fn certificates_verify_in_all_three_cases() {
        for p in [1.0, 2.0, 3.0, 4.0, 10.0, 36.0, 64.0, 200.0, 512.0, 1e5] {
            let prob = paper_instance(p);
            let sol = prob.solve();
            let mu = certificate_for(&prob);
            let report = verify_kkt(&prob, sol.x, mu, 1e-9);
            assert!(report.holds(1e-9), "P={p}: {report:?}");
        }
    }

    #[test]
    fn certificates_verify_for_many_shapes() {
        for (m, n, k) in [
            (1000.0, 1000.0, 1000.0),
            (4096.0, 64.0, 64.0),
            (10000.0, 5000.0, 10.0),
            (7.0, 5.0, 3.0),
            (1e7, 1e3, 1.0),
        ] {
            for p in [1.0, 2.0, 7.0, 32.0, 1000.0, 1e6] {
                let prob = OptProblem::new(m, n, k, p);
                let sol = prob.solve();
                let mu = certificate_for(&prob);
                let report = verify_kkt(&prob, sol.x, mu, 1e-8);
                assert!(report.holds(1e-8), "({m},{n},{k}) P={p}: {report:?}");
            }
        }
    }

    #[test]
    fn wrong_point_fails_stationarity() {
        let prob = paper_instance(512.0);
        let sol = prob.solve();
        let mu = certificate_for(&prob);
        let bad = [sol.x[0] * 2.0, sol.x[1], sol.x[2]];
        let report = verify_kkt(&prob, bad, mu, 1e-9);
        assert!(!report.holds(1e-9));
        assert!(report.stationarity_residual > 1e-3);
    }

    #[test]
    fn infeasible_point_is_flagged() {
        let prob = paper_instance(36.0);
        let mu = certificate_for(&prob);
        let report = verify_kkt(&prob, [1.0, 1.0, 1.0], mu, 1e-9);
        assert!(!report.primal_feasible);
    }

    #[test]
    fn negative_duals_are_flagged() {
        let prob = paper_instance(36.0);
        let sol = prob.solve();
        let report = verify_kkt(&prob, sol.x, [0.0, 0.0, 0.0, -1.0], 1e-9);
        assert!(!report.dual_feasible);
    }

    #[test]
    fn duals_respect_case_structure() {
        // Case 1: constraints 1, 3, 4 tight, μ2 = 0.
        let mu = certificate_for(&paper_instance(3.0));
        assert!(mu[0] > 0.0 && mu[1] == 0.0 && mu[2] > 0.0 && mu[3] > 0.0);
        // Case 2: constraints 1 and 4 tight.
        let mu = certificate_for(&paper_instance(36.0));
        assert!(mu[0] > 0.0 && mu[1] == 0.0 && mu[2] == 0.0 && mu[3] > 0.0);
        // Case 3: only the product constraint is tight.
        let mu = certificate_for(&paper_instance(512.0));
        assert!(mu[0] > 0.0 && mu[1..] == [0.0, 0.0, 0.0]);
    }
}
