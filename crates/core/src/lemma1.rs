//! Lemma 1 (§4.1) — lower bounds on individual array access.
//!
//! Any processor performing at least `1/P`-th of the `n1·n2·n3` scalar
//! multiplications must access at least `n1n2/P` elements of `A`,
//! `n2n3/P` elements of `B`, and contribute to at least `n1n3/P` elements
//! of `C`: each element of `A` is involved in only `n3` multiplications
//! (resp. `n1` for `B`, `n2` summands per `C` entry), so touching fewer
//! elements cannot produce enough multiplications.
//!
//! These per-array bounds are what separate the three cases of Theorem 3:
//! they become active exactly when the aspect ratios are large relative to
//! `P`.

use pmm_model::{MatMulDims, MatrixId};

use crate::loomis::LatticeSet;

/// The Lemma 1 lower bound on the number of elements of `matrix` accessed
/// by a processor performing at least `1/P`-th of the multiplications.
pub fn access_lower_bound(dims: MatMulDims, p: f64, matrix: MatrixId) -> f64 {
    assert!(p >= 1.0, "P must be >= 1");
    dims.words_of(matrix) / p
}

/// All three access bounds, `[A, B, C]`-ordered.
pub fn access_lower_bounds(dims: MatMulDims, p: f64) -> [f64; 3] {
    [
        access_lower_bound(dims, p, MatrixId::A),
        access_lower_bound(dims, p, MatrixId::B),
        access_lower_bound(dims, p, MatrixId::C),
    ]
}

/// Check Lemma 1's conclusion on an explicit work set: if `work` contains
/// at least `dims.mults()/p` multiplications of the `dims` iteration
/// space, its three matrix footprints meet the access bounds.
///
/// Returns `None` if the premise does not hold (the work set is too
/// small), otherwise `Some(true/false)` — which Lemma 1 proves is always
/// `Some(true)`; the tests exercise this over random work assignments.
pub fn check_on_work_set(dims: MatMulDims, p: f64, work: &LatticeSet) -> Option<bool> {
    if (work.len() as f64) < dims.mults() / p {
        return None;
    }
    let f = work.footprints();
    let b = access_lower_bounds(dims, p);
    Some(f[0] as f64 >= b[0] && f[1] as f64 >= b[1] && f[2] as f64 >= b[2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    #[test]
    fn bounds_are_matrix_sizes_over_p() {
        let dims = MatMulDims::new(8, 6, 4);
        assert_eq!(access_lower_bounds(dims, 2.0), [24.0, 12.0, 16.0]);
        assert_eq!(access_lower_bound(dims, 1.0, MatrixId::A), 48.0);
    }

    #[test]
    fn full_cuboid_exactly_meets_bounds_at_p1() {
        let dims = MatMulDims::new(5, 4, 3);
        let v = LatticeSet::cuboid(5, 4, 3);
        assert_eq!(check_on_work_set(dims, 1.0, &v), Some(true));
        // At P = 1 the footprints equal the bounds exactly.
        let f = v.footprints();
        let b = access_lower_bounds(dims, 1.0);
        assert_eq!([f[0] as f64, f[1] as f64, f[2] as f64], b);
    }

    #[test]
    fn undersized_work_sets_are_rejected() {
        let dims = MatMulDims::new(4, 4, 4);
        let v = LatticeSet::brick((0, 1), (0, 1), (0, 1));
        assert_eq!(check_on_work_set(dims, 2.0, &v), None);
    }

    #[test]
    fn random_equal_shares_always_satisfy_lemma1() {
        // Partition the cuboid into P random equal shares; every share
        // holding ≥ 1/P of the multiplications must satisfy the bounds.
        let dims = MatMulDims::new(6, 5, 4);
        let mut rng = StdRng::seed_from_u64(7);
        let mut all: Vec<[u32; 3]> = LatticeSet::cuboid(6, 5, 4).iter().copied().collect();
        all.sort_unstable(); // determinism before shuffling
        for p in [2usize, 3, 4, 5] {
            for trial in 0..10 {
                all.shuffle(&mut rng);
                let share = all.len() / p;
                for c in 0..p {
                    let chunk: Vec<[u32; 3]> = all[c * share..(c + 1) * share].to_vec();
                    let v = LatticeSet::from_points(chunk);
                    if let Some(ok) = check_on_work_set(dims, p as f64, &v) {
                        assert!(ok, "p={p} trial={trial} chunk={c} violates Lemma 1");
                    }
                }
            }
        }
    }

    #[test]
    fn brick_partitions_satisfy_lemma1_tightly() {
        // The 2×2×2 grid partition of an 8×8×8 cuboid: every brick meets
        // the A and B bounds with slack and C exactly? — footprints are
        // 16 = 64/(P^{2/3}) vs bound 64/8 = 8: slack factor P^{1/3}.
        let dims = MatMulDims::new(8, 8, 8);
        for i in 0..2u32 {
            for j in 0..2u32 {
                for l in 0..2u32 {
                    let v = LatticeSet::brick(
                        (i * 4, (i + 1) * 4),
                        (j * 4, (j + 1) * 4),
                        (l * 4, (l + 1) * 4),
                    );
                    assert_eq!(check_on_work_set(dims, 8.0, &v), Some(true));
                }
            }
        }
    }
}
