//! Independent numeric solver for the Lemma 2 optimization problem.
//!
//! Cross-validates the analytic solution without sharing any of its
//! structure: a coarse-to-fine grid search in log-space over `(x1, x2)`,
//! with `x3` eliminated through the observation that at an optimum
//! `x3 = max(b3, L/(x1·x2))` (either the product constraint or the `x3`
//! lower bound is active; pushing `x3` lower than either is infeasible and
//! higher is wasteful).
//!
//! Used by property tests (`numeric ≈ analytic` across random instances)
//! and by the `lemma2_cases` experiment harness.

use crate::optproblem::OptProblem;

/// Numerically minimize the Lemma 2 objective. Returns `(x, objective)`.
///
/// `levels` rounds of grid refinement (each a 65×65 log-space grid zooming
/// by 8×) give ≈ `1e-6` relative accuracy at the default `levels = 8`.
pub fn solve_numeric(problem: &OptProblem, levels: usize) -> ([f64; 3], f64) {
    let b = problem.lower_bounds();
    let l = problem.product_bound();

    // Upper limits: x1 never usefully exceeds the point where it alone
    // satisfies the product constraint over the other bounds, nor the
    // symmetric point; same for x2.
    let hi1 = (l / (b[1] * b[2])).max(l.powf(1.0 / 3.0)).max(b[0]) * 2.0;
    let hi2 = (l / (b[0] * b[2])).max(l.powf(1.0 / 3.0)).max(b[1]) * 2.0;

    let eval = |x1: f64, x2: f64| -> ([f64; 3], f64) {
        let x3 = (l / (x1 * x2)).max(b[2]);
        ([x1, x2, x3], x1 + x2 + x3)
    };

    let (mut lo1, mut hi1) = (b[0].ln(), hi1.ln());
    let (mut lo2, mut hi2) = (b[1].ln(), hi2.ln());
    let mut best = eval(b[0], b[1]);

    const GRID: usize = 64;
    for _ in 0..levels {
        let step1 = (hi1 - lo1) / GRID as f64;
        let step2 = (hi2 - lo2) / GRID as f64;
        let mut arg = (lo1, lo2);
        for i in 0..=GRID {
            let x1 = (lo1 + step1 * i as f64).exp();
            for j in 0..=GRID {
                let x2 = (lo2 + step2 * j as f64).exp();
                let cand = eval(x1, x2);
                if cand.1 < best.1 {
                    best = cand;
                    arg = (x1.ln(), x2.ln());
                }
            }
        }
        // Zoom into a ±4-cell window around the incumbent.
        let w1 = 4.0 * step1;
        let w2 = 4.0 * step2;
        lo1 = (arg.0 - w1).max(b[0].ln());
        hi1 = arg.0 + w1;
        lo2 = (arg.1 - w2).max(b[1].ln());
        hi2 = arg.1 + w2;
    }

    // Coordinate-descent polish: with one coordinate fixed, the optimal
    // other coordinate is one of two closed-form candidates (product
    // constraint active, or the x3 bound active), clamped to its own lower
    // bound. Each step only ever improves the objective.
    for _ in 0..64 {
        let (x, obj) = best;
        // optimize x1 given x2
        for cand in [(l / x[1]).sqrt().max(b[0]), (l / (x[1] * b[2])).max(b[0])] {
            let c = eval(cand, x[1]);
            if c.1 < best.1 {
                best = c;
            }
        }
        // optimize x2 given x1
        let x = best.0;
        for cand in [(l / x[0]).sqrt().max(b[1]), (l / (x[0] * b[2])).max(b[1])] {
            let c = eval(x[0], cand);
            if c.1 < best.1 {
                best = c;
            }
        }
        if (obj - best.1).abs() <= 1e-14 * obj {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_matches_analytic(m: f64, n: f64, k: f64, p: f64) {
        let prob = OptProblem::new(m, n, k, p);
        let analytic = prob.solve();
        let (x, obj) = solve_numeric(&prob, 8);
        let d = analytic.objective();
        // 1e-4 relative: the objective is first-order flat along the
        // product-constraint valley, so the grid search resolves the value
        // of D much more precisely than the arg-min coordinates. A formula
        // error in the analytic solution would show up at the 1e-2+ level.
        assert!(
            (obj - d).abs() <= 1e-4 * d,
            "({m},{n},{k},{p}): numeric {obj} vs analytic {d} (x = {x:?})"
        );
        assert!(obj >= d * (1.0 - 1e-9), "numeric must never beat the analytic optimum");
        assert!(prob.feasible(x, 1e-9), "numeric solution must be feasible");
    }

    #[test]
    fn matches_analytic_across_cases_paper_instance() {
        for p in [1.0, 3.0, 4.0, 16.0, 36.0, 64.0, 200.0, 512.0] {
            assert_matches_analytic(9600.0, 2400.0, 600.0, p);
        }
    }

    #[test]
    fn matches_analytic_square() {
        for p in [1.0, 8.0, 64.0, 1000.0] {
            assert_matches_analytic(500.0, 500.0, 500.0, p);
        }
    }

    #[test]
    fn matches_analytic_extreme_aspect_ratios() {
        assert_matches_analytic(1e6, 100.0, 1.0, 50.0);
        assert_matches_analytic(1e5, 1e5, 10.0, 400.0);
        assert_matches_analytic(64.0, 8.0, 8.0, 2.0);
    }

    #[test]
    fn numeric_never_beats_analytic_on_random_instances() {
        // Light deterministic pseudo-random sweep (no rand dependency in
        // the hot path: linear congruential stepping).
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for _ in 0..30 {
            let k = 1.0 + (next() * 50.0).floor();
            let n = k + (next() * 500.0).floor();
            let m = n + (next() * 5000.0).floor();
            let p = 1.0 + (next() * 300.0).floor();
            assert_matches_analytic(m, n, k, p);
        }
    }
}
