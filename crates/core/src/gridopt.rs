//! §5.1–§5.2 — Algorithm 1's cost formula (eq. 3) and optimal processor
//! grid selection.
//!
//! The communication cost of Algorithm 1 on a `p1 × p2 × p3` grid is
//!
//! ```text
//!   (1 − 1/p3)·n1n2/(p1p2)  +  (1 − 1/p1)·n2n3/(p2p3)  +  (1 − 1/p2)·n1n3/(p1p3)
//! ```
//!
//! which equals eq. (3). Choosing grid factors per Theorem 3's case —
//! 1D `(P,1,1)`, 2D `(√(Pm/n), √(Pn/m), 1)`, 3D dimensions proportional to
//! `(m, n, k)` — attains the lower bound exactly.
//!
//! [`best_grid`] performs the *exact* integer minimization of the formula
//! over all ordered factorizations of `P` (the ablation partner of the
//! continuous solution, and the right tool when `P` or the dimensions
//! don't divide nicely).

use pmm_model::{alg1_prediction, Case, Grid3, MatMulDims, SortedDims};

/// A chosen processor grid with its predicted Algorithm 1 cost.
#[derive(Debug, Clone, PartialEq)]
pub struct GridChoice {
    /// Grid dimensions in iteration-space order `[p1, p2, p3]` (aligned
    /// with `n1, n2, n3`).
    pub grid: [usize; 3],
    /// Predicted communication cost of Algorithm 1 on this grid, in words
    /// per processor along the critical path (eq. 3).
    pub cost_words: f64,
    /// The Theorem 3 case of the instance (for reporting).
    pub case: Case,
}

impl GridChoice {
    /// The grid as a [`Grid3`].
    pub fn grid3(&self) -> Grid3 {
        Grid3::from_dims(self.grid)
    }
}

/// Predicted per-processor communication cost (in words, critical path) of
/// Algorithm 1 on `grid` — the exact eq. (3), including the `(1 − 1/p)`
/// collective factors. Exact when the grid divides the dimensions.
pub fn alg1_cost_words(dims: MatMulDims, grid: [usize; 3]) -> f64 {
    // Delegates to the per-phase eq. 3 evaluation in `pmm-model`, so the
    // grid optimizer and the conformance oracles share one formula.
    alg1_prediction(dims, grid).total()
}

/// The continuous (possibly fractional) optimal grid in **sorted order**
/// `(p, q, r)` aligned with `(m, n, k)` (§5.2).
pub fn continuous_grid(dims: SortedDims, p: f64) -> [f64; 3] {
    let (m, n, k) = (dims.m as f64, dims.n as f64, dims.k as f64);
    match dims.classify(p) {
        Case::OneD => [p, 1.0, 1.0],
        Case::TwoD => [(p * m / n).sqrt(), (p * n / m).sqrt(), 1.0],
        Case::ThreeD => {
            let t = (p / (m * n * k)).powf(1.0 / 3.0);
            [t * m, t * n, t * k]
        }
    }
}

/// Exact optimal integer grid: minimizes [`alg1_cost_words`] over **all**
/// ordered factorizations `p1·p2·p3 = P`. Ties break toward the
/// lexicographically smallest grid in sorted order, so results are
/// deterministic.
///
/// ```
/// use pmm_core::gridopt::best_grid;
/// use pmm_core::MatMulDims;
/// // Fig. 2(b): P = 36 on the paper's instance → the 12x3x1 grid.
/// let choice = best_grid(MatMulDims::new(9600, 2400, 600), 36);
/// assert_eq!(choice.grid, [12, 3, 1]);
/// ```
pub fn best_grid(dims: MatMulDims, p: usize) -> GridChoice {
    assert!(p >= 1, "P must be >= 1");
    let case = dims.sorted().classify(p as f64);
    let mut best: Option<([usize; 3], f64)> = None;
    for f in Grid3::factorizations(p) {
        let cost = alg1_cost_words(dims, f);
        match &best {
            Some((_, c)) if *c <= cost => {}
            _ => best = Some((f, cost)),
        }
    }
    let (grid, cost_words) = best.expect("at least one factorization");
    GridChoice { grid, cost_words, case }
}

/// Like [`best_grid`] but restricted to factorizations whose factors
/// divide the matrix dimensions — the regime where Algorithm 1's measured
/// cost equals eq. (3) *exactly*. Returns `None` if no divisible
/// factorization exists.
pub fn best_divisible_grid(dims: MatMulDims, p: usize) -> Option<GridChoice> {
    let case = dims.sorted().classify(p as f64);
    let mut best: Option<([usize; 3], f64)> = None;
    for f in Grid3::factorizations(p) {
        if !dims.divisible_by(f) {
            continue;
        }
        let cost = alg1_cost_words(dims, f);
        match &best {
            Some((_, c)) if *c <= cost => {}
            _ => best = Some((f, cost)),
        }
    }
    best.map(|(grid, cost_words)| GridChoice { grid, cost_words, case })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theorem3::lower_bound;

    const PAPER: MatMulDims = MatMulDims { n1: 9600, n2: 2400, n3: 600 };

    #[test]
    fn fig2_grids_are_recovered_exactly() {
        // Fig. 2: P = 3 → 3×1×1; P = 36 → 12×3×1; P = 512 → 32×8×2.
        assert_eq!(best_grid(PAPER, 3).grid, [3, 1, 1]);
        assert_eq!(best_grid(PAPER, 36).grid, [12, 3, 1]);
        assert_eq!(best_grid(PAPER, 512).grid, [32, 8, 2]);
    }

    #[test]
    fn fig2_cases_match() {
        assert_eq!(best_grid(PAPER, 3).case, Case::OneD);
        assert_eq!(best_grid(PAPER, 36).case, Case::TwoD);
        assert_eq!(best_grid(PAPER, 512).case, Case::ThreeD);
    }

    #[test]
    fn continuous_grid_matches_integer_grid_on_nice_instances() {
        let s = PAPER.sorted();
        assert_eq!(continuous_grid(s, 3.0), [3.0, 1.0, 1.0]);
        assert_eq!(continuous_grid(s, 36.0), [12.0, 3.0, 1.0]);
        let g = continuous_grid(s, 512.0);
        assert!((g[0] - 32.0).abs() < 1e-9);
        assert!((g[1] - 8.0).abs() < 1e-9);
        assert!((g[2] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn continuous_grid_multiplies_to_p() {
        let s = PAPER.sorted();
        for p in [1.0, 5.0, 17.0, 36.0, 100.0, 512.0, 9999.0] {
            let g = continuous_grid(s, p);
            let prod = g[0] * g[1] * g[2];
            assert!((prod - p).abs() < 1e-6 * p, "P={p}: product {prod}");
        }
    }

    #[test]
    fn optimal_grid_cost_equals_lower_bound_when_divisible() {
        // The tightness claim at the formula level: with the §5.2 grid,
        // eq. (3) equals Theorem 3's bound.
        for p in [3usize, 36, 512] {
            let choice = best_grid(PAPER, p);
            let bound = lower_bound(PAPER, p as f64).bound;
            assert!(
                (choice.cost_words - bound).abs() < 1e-6 * bound.max(1.0),
                "P={p}: eq3 {} vs bound {}",
                choice.cost_words,
                bound
            );
        }
    }

    #[test]
    fn eq3_cost_never_below_lower_bound() {
        // Any grid's predicted cost is ≥ the bound (Theorem 3 applies to
        // every parallelization).
        for p in [6usize, 24, 36, 60, 512, 729] {
            let bound = lower_bound(PAPER, p as f64).bound;
            for f in Grid3::factorizations(p) {
                let c = alg1_cost_words(PAPER, f);
                assert!(
                    c >= bound - 1e-6 * bound.max(1.0),
                    "P={p} grid {f:?}: cost {c} below bound {bound}"
                );
            }
        }
    }

    #[test]
    fn eq3_special_cases() {
        // Single processor: no communication.
        assert_eq!(alg1_cost_words(PAPER, [1, 1, 1]), 0.0);
        // 1D grid (P,1,1): only B is all-gathered: (1-1/P)·n2·n3.
        let c = alg1_cost_words(PAPER, [3, 1, 1]);
        let want = (1.0 - 1.0 / 3.0) * 2400.0 * 600.0;
        assert!((c - want).abs() < 1e-9);
    }

    #[test]
    fn best_divisible_grid_respects_divisibility() {
        let dims = MatMulDims::new(100, 100, 100);
        let g = best_divisible_grid(dims, 8).unwrap();
        assert_eq!(g.grid, [2, 2, 2]);
        // P = 7: 7×1×1 etc. don't divide 100 in any axis… 7 ∤ 100, so only
        // grids with a factor 7 fail; [7,1,1] has 7 ∤ 100 → None.
        assert!(best_divisible_grid(dims, 7).is_none());
        // P = 1 always works.
        assert_eq!(best_divisible_grid(dims, 1).unwrap().grid, [1, 1, 1]);
    }

    #[test]
    fn square_instance_prefers_cubic_grid() {
        let dims = MatMulDims::square(120);
        assert_eq!(best_grid(dims, 8).grid, [2, 2, 2]);
        assert_eq!(best_grid(dims, 27).grid, [3, 3, 3]);
        assert_eq!(best_grid(dims, 64).grid, [4, 4, 4]);
    }

    #[test]
    fn tall_skinny_prefers_1d_grid() {
        // m/n huge → 1D grid along the long dimension.
        let dims = MatMulDims::new(100_000, 50, 50);
        let g = best_grid(dims, 16);
        assert_eq!(g.grid, [16, 1, 1]);
        assert_eq!(g.case, Case::OneD);
    }
}
