//! # pmm-core — tight memory-independent communication lower bounds
//!
//! This crate implements the contribution of
//!
//! > H. Al Daas, G. Ballard, L. Grigori, S. Kumar, K. Rouse.
//! > *Brief Announcement: Tight Memory-Independent Parallel Matrix
//! > Multiplication Communication Lower Bounds.* SPAA 2022.
//!
//! For a classical matmul of an `n1 × n2` by an `n2 × n3` matrix on `P`
//! processors, with sorted dimensions `m ≥ n ≥ k`, any algorithm that
//! starts with one copy of the inputs, ends with one copy of the output,
//! and load balances computation or data must communicate at least
//! `D − (mn + mk + nk)/P` words, where (Theorem 3)
//!
//! ```text
//!       ⎧ (mn + mk)/P + nk          if 1 ≤ P ≤ m/n          (1D case)
//!   D = ⎨ 2·(mnk²/P)^{1/2} + mn/P   if m/n ≤ P ≤ mn/k²      (2D case)
//!       ⎩ 3·(mnk/P)^{2/3}           if mn/k² ≤ P            (3D case)
//! ```
//!
//! and the constants (1, 2, 3 on the leading terms) are **tight**: the
//! All-Gather/Reduce-Scatter algorithm on the optimal processor grid
//! (§5, implemented in `pmm-algs`) attains them exactly.
//!
//! Module map (paper section → module):
//!
//! | paper | module |
//! |-------|--------|
//! | Lemma 1 (Loomis–Whitney) | [`loomis`] |
//! | Lemma 1 §4.1 (per-array access bounds) | [`lemma1`] |
//! | Lemma 2 (key optimization problem) | [`optproblem`], [`numeric`] |
//! | Defs 2–4, Lemmas 5–6 (KKT machinery) | [`kkt`] |
//! | Theorem 3, Corollary 4 | [`theorem3`] |
//! | Table 1 (prior constants) | [`prior`] |
//! | §5.1 eq. (3), §5.2 grid selection | [`gridopt`] |
//! | §6.2 limited-memory scenarios | [`memlimit`] |
//! | §6.3 generalization (any arrays/exponents) | [`genbound`] |
//! | bounds → strategy choice (extension) | [`advisor`] |

pub mod advisor;
pub mod genbound;
pub mod gridopt;
pub mod kkt;
pub mod lemma1;
pub mod loomis;
pub mod memlimit;
pub mod numeric;
pub mod optproblem;
pub mod prior;
pub mod theorem3;

pub use advisor::{recommend, try_recommend, AdvisorError, Recommendation, Strategy};
pub use genbound::{GenBoundProblem, GenBoundSolution};
pub use gridopt::{alg1_cost_words, best_grid, continuous_grid, GridChoice};
pub use kkt::{certificate_for, verify_kkt, KktReport};
pub use optproblem::{OptProblem, OptSolution};
pub use theorem3::{corollary4, lower_bound, BoundReport};

// Re-export the shared vocabulary.
pub use pmm_model::{Case, MatMulDims, MatrixId, SortedDims};
