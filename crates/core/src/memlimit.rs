//! §6.2 — limited-memory scenarios.
//!
//! Theorem 3 holds for any local memory size `M`, but when `M` is small it
//! may not be the *tightest* bound: the memory-dependent bound
//! `2mnk/(P√M)` (Smith et al. 2019; Kwasniewski et al. 2019) can be
//! larger. §6.2 shows this happens only in the 3D case, precisely for
//! `mn/k² < P ≤ (8/27)·mnk/M^{3/2}`, and that in the 1D/2D cases the
//! memory-independent bound always dominates.
//!
//! This module evaluates both bounds, locates the crossover, and computes
//! Algorithm 1's memory footprint (the positive terms of eq. 3 — what the
//! processor must hold after the All-Gathers).

use pmm_model::MatMulDims;

use crate::prior::MemDependentBound;
use crate::theorem3::{lower_bound, BoundReport};

/// Which bound is the binding (larger) one at a given `(dims, P, M)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dominant {
    /// The memory-independent bound of Theorem 3.
    MemoryIndependent,
    /// The memory-dependent bound `2mnk/(P√M)`.
    MemoryDependent,
}

/// Both bounds evaluated at `(dims, p, m_words)`.
#[derive(Debug, Clone, Copy)]
pub struct LimitedMemoryReport {
    /// The Theorem 3 report.
    pub independent: BoundReport,
    /// `2mnk/(P√M)` (leading term; tight constant 2).
    pub dependent: f64,
    /// Which bound binds.
    pub dominant: Dominant,
}

/// Minimum memory to hold one copy of the problem spread over `P`
/// processors: `(mn + mk + nk)/P` words.
pub fn min_memory_words(dims: MatMulDims, p: f64) -> f64 {
    dims.total_words() / p
}

/// Memory footprint of Algorithm 1 on `grid`: the data a processor holds
/// after both All-Gathers (the positive terms of eq. 3), in words.
///
/// In the 1D/2D cases this is within a constant factor of
/// [`min_memory_words`]; in the 3D case it asymptotically dominates it —
/// which is why Algorithm 1 needs the §6.2 memory assumption there.
pub fn alg1_memory_words(dims: MatMulDims, grid: [usize; 3]) -> f64 {
    let [p1, p2, p3] = grid.map(|x| x as f64);
    let (n1, n2, n3) = (dims.n1 as f64, dims.n2 as f64, dims.n3 as f64);
    n1 * n2 / (p1 * p2) + n2 * n3 / (p2 * p3) + n1 * n3 / (p1 * p3)
}

/// Evaluate both bounds and report the dominant one.
///
/// Following §6.2, the comparison is made between the *data-access*
/// quantities: the memory-dependent leading term `2mnk/(P√M)` against the
/// memory-independent `D` (both before subtracting the resident-data
/// offset, which is common to the two).
pub fn limited_memory_report(dims: MatMulDims, p: f64, m_words: f64) -> LimitedMemoryReport {
    let independent = lower_bound(dims, p);
    let dependent = MemDependentBound::SmithEtAl.evaluate(dims, p, m_words);
    let dominant = if dependent > independent.d {
        Dominant::MemoryDependent
    } else {
        Dominant::MemoryIndependent
    };
    LimitedMemoryReport { independent, dependent, dominant }
}

/// The `P` interval in which the memory-dependent bound dominates the 3D
/// memory-independent leading term `3(mnk/P)^{2/3}`:
/// `mn/k² < P ≤ (8/27)·mnk/M^{3/2}` (§6.2). Returns `None` when the
/// interval is empty (i.e. `M` is large enough that Theorem 3 is tight for
/// all `P`).
/// ```
/// use pmm_core::memlimit::memory_dependent_dominance_range;
/// use pmm_core::MatMulDims;
/// let dims = MatMulDims::new(9600, 2400, 600);
/// let (lo, hi) = memory_dependent_dominance_range(dims, 9_000.0).unwrap();
/// assert_eq!(lo, 64.0); // = mn/k²
/// assert!(hi > 4000.0 && hi < 5000.0);
/// assert!(memory_dependent_dominance_range(dims, 1e12).is_none());
/// ```
pub fn memory_dependent_dominance_range(dims: MatMulDims, m_words: f64) -> Option<(f64, f64)> {
    let s = dims.sorted();
    let lo = s.threshold_2d_3d();
    let hi = (8.0 / 27.0) * s.mults() / m_words.powf(1.5);
    (hi > lo).then_some((lo, hi))
}

/// The §6.2 memory threshold below which the 3D-case temporary space of
/// Algorithm 1 exceeds `M`: the dominance scenario implies
/// `M < (4/9)·(mnk/P)^{2/3}`.
pub fn three_d_memory_threshold(dims: MatMulDims, p: f64) -> f64 {
    (4.0 / 9.0) * (dims.mults() / p).powf(2.0 / 3.0)
}

/// The strong-scaling limit of §2.3 (Ballard et al. 2012b): while the
/// memory-dependent bound `2mnk/(P√M)` binds, communication scales
/// perfectly (∝ 1/P); once the memory-independent bound takes over,
/// per-processor communication falls only as `P^{-2/3}`. The handoff is
/// the upper end of [`memory_dependent_dominance_range`]:
/// `P* = (8/27)·mnk/M^{3/2}`.
///
/// Past `P*`, adding processors still reduces per-processor
/// communication, but the *total* volume (and the communication time at
/// fixed per-link bandwidth) grows as `P^{1/3}`.
pub fn perfect_strong_scaling_limit(dims: MatMulDims, m_words: f64) -> f64 {
    assert!(m_words > 0.0, "memory must be positive");
    (8.0 / 27.0) * dims.mults() / m_words.powf(1.5)
}

/// The binding (larger) of the two bounds at `(dims, p, m_words)`, as a
/// single number: `max(D_independent, 2mnk/(P√M))` at the data-access
/// level. This is the curve a strong-scaling plot should compare
/// measurements against.
pub fn combined_access_bound(dims: MatMulDims, p: f64, m_words: f64) -> f64 {
    let rep = limited_memory_report(dims, p, m_words);
    rep.independent.d.max(rep.dependent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gridopt::best_grid;
    use pmm_model::Case;

    const PAPER: MatMulDims = MatMulDims { n1: 9600, n2: 2400, n3: 600 };

    #[test]
    fn min_memory_is_total_over_p() {
        let dims = MatMulDims::new(10, 10, 10);
        assert_eq!(min_memory_words(dims, 4.0), 300.0 / 4.0);
    }

    #[test]
    fn alg1_memory_on_optimal_grids() {
        // 1D grid (P,1,1): holds A-block + all of B + C-block — a constant
        // multiple of the minimum.
        let g = best_grid(PAPER, 3);
        let mem = alg1_memory_words(PAPER, g.grid);
        let minm = min_memory_words(PAPER, 3.0);
        assert!(mem < 3.0 * minm, "1D footprint {mem} should be O(min) {minm}");

        // 3D grid: footprint / min grows like P^{1/3}.
        let g = best_grid(PAPER, 512);
        let mem = alg1_memory_words(PAPER, g.grid);
        let minm = min_memory_words(PAPER, 512.0);
        assert!(mem > 4.0 * minm, "3D footprint {mem} must dominate min {minm}");
    }

    #[test]
    fn memory_footprint_equals_cost_plus_owned() {
        // §6.2: footprint = communication (eq. 3) + (mn+mk+nk)/P.
        use crate::gridopt::alg1_cost_words;
        for p in [3usize, 36, 512] {
            let g = best_grid(PAPER, p).grid;
            let lhs = alg1_memory_words(PAPER, g);
            let rhs = alg1_cost_words(PAPER, g) + min_memory_words(PAPER, p as f64);
            assert!((lhs - rhs).abs() < 1e-9 * lhs, "P={p}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn dependent_bound_dominates_only_past_the_3d_threshold() {
        // Choose (P, M) inside the dominance interval while keeping M
        // *feasible* (at least (mn+mk+nk)/P — the machine must be able to
        // hold one copy of the problem): P = 4096, M = 9000 works because
        // min memory = 30.24e6/4096 ≈ 7383 ≤ 9000 < (4/9)(mnk/P)^{2/3} = 10000.
        let m_words = 9_000.0;
        let (lo, hi) = memory_dependent_dominance_range(PAPER, m_words).expect("non-empty");
        assert!((lo - 64.0).abs() < 1e-9);
        assert!(hi > lo);

        let p = 4096.0;
        assert!(p > lo && p < hi, "probe P={p} must lie inside ({lo}, {hi})");
        assert!(m_words >= min_memory_words(PAPER, p), "M must be feasible");
        let inside = limited_memory_report(PAPER, p, m_words);
        assert_eq!(inside.dominant, Dominant::MemoryDependent);

        // Far above hi: memory-independent again (leading terms cross back).
        let above = limited_memory_report(PAPER, hi * 8.0, m_words);
        assert_eq!(above.dominant, Dominant::MemoryIndependent);
    }

    #[test]
    fn big_memory_has_empty_dominance_range() {
        // M big enough ⇒ Theorem 3 tight for every P.
        assert!(memory_dependent_dominance_range(PAPER, 1e12).is_none());
    }

    #[test]
    fn cases_one_and_two_never_dominated() {
        // §6.2: for P ≤ mn/k² the memory-independent bound always wins,
        // for any M ≥ mn/P (memory must at least hold the largest matrix).
        for p in [2.0, 4.0, 16.0, 36.0, 64.0] {
            let m_min = 9600.0 * 2400.0 / p; // > mn/P
            for m_words in [m_min, 2.0 * m_min, 10.0 * m_min] {
                let rep = limited_memory_report(PAPER, p, m_words);
                assert_eq!(
                    rep.dominant,
                    Dominant::MemoryIndependent,
                    "P={p}, M={m_words}: dependent {} vs independent {}",
                    rep.dependent,
                    rep.independent.bound
                );
            }
        }
    }

    #[test]
    fn dominance_implies_memory_below_threshold() {
        // §6.2: the dominance scenario implies M < (4/9)(mnk/P)^{2/3}.
        let m_words = 40_000.0;
        if let Some((lo, hi)) = memory_dependent_dominance_range(PAPER, m_words) {
            for frac in [0.1, 0.5, 0.9] {
                let p = lo + frac * (hi - lo);
                if p > lo {
                    let thresh = three_d_memory_threshold(PAPER, p);
                    assert!(m_words < thresh, "P={p}: M={m_words} should be < threshold {thresh}");
                }
            }
        }
    }

    #[test]
    fn perfect_scaling_limit_is_the_dominance_upper_end() {
        let m_words = 9_000.0;
        let (_, hi) = memory_dependent_dominance_range(PAPER, m_words).unwrap();
        assert_eq!(perfect_strong_scaling_limit(PAPER, m_words), hi);
    }

    #[test]
    fn combined_bound_is_continuous_and_bracketed() {
        // The combined curve equals the memory-dependent bound inside the
        // dominance interval and the independent D outside, and never dips
        // below either.
        let m_words = 9_000.0;
        for p in [4096.0, 16384.0, 65536.0] {
            let rep = limited_memory_report(PAPER, p, m_words);
            let c = combined_access_bound(PAPER, p, m_words);
            assert!(c >= rep.independent.d && c >= rep.dependent);
            assert!(c == rep.independent.d || c == rep.dependent);
        }
        // Scaling shape: combined · P is constant while memory-dependent
        // binds (perfect scaling), then grows.
        let lim = perfect_strong_scaling_limit(PAPER, m_words);
        let inside = combined_access_bound(PAPER, lim * 0.9, m_words) * lim * 0.9;
        let inside2 = combined_access_bound(PAPER, lim * 0.45, m_words) * lim * 0.45;
        assert!(
            (inside - inside2).abs() < 1e-6 * inside,
            "total volume constant in the perfect-scaling regime"
        );
        let outside = combined_access_bound(PAPER, lim * 8.0, m_words) * lim * 8.0;
        assert!(outside > inside, "total volume grows past the limit");
    }

    #[test]
    fn case_is_three_d_inside_dominance_range() {
        let m_words = 40_000.0;
        let (lo, hi) = memory_dependent_dominance_range(PAPER, m_words).unwrap();
        let rep = limited_memory_report(PAPER, (lo + hi) / 2.0, m_words);
        assert_eq!(rep.independent.case, Case::ThreeD);
    }
}
