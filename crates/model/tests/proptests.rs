//! Property-based tests for the model vocabulary: cost algebra laws, grid
//! combinatorics, dimension sorting and case classification.

use pmm_model::{Case, Cost, Grid3, MachineParams, MatMulDims};
use proptest::prelude::*;

fn cost() -> impl Strategy<Value = Cost> {
    (0.0f64..1e6, 0.0f64..1e6, 0.0f64..1e6).prop_map(|(messages, words, flops)| Cost {
        messages,
        words,
        flops,
    })
}

proptest! {
    #[test]
    fn then_is_associative_and_commutative(a in cost(), b in cost(), c in cost()) {
        let left = a.then(b).then(c);
        let right = a.then(b.then(c));
        prop_assert!((left.words - right.words).abs() < 1e-6);
        prop_assert!((left.messages - right.messages).abs() < 1e-6);
        let ab = a.then(b);
        let ba = b.then(a);
        prop_assert_eq!(ab.words, ba.words);
    }

    #[test]
    fn par_is_idempotent_monotone_and_commutative(a in cost(), b in cost()) {
        prop_assert_eq!(a.par(a), a);
        let p = a.par(b);
        prop_assert!(p.words >= a.words && p.words >= b.words);
        prop_assert!(p.messages >= a.messages && p.flops >= b.flops.min(p.flops));
        prop_assert_eq!(a.par(b), b.par(a));
    }

    #[test]
    fn par_never_exceeds_then(a in cost(), b in cost()) {
        let p = a.par(b);
        let t = a.then(b);
        prop_assert!(p.words <= t.words && p.messages <= t.messages && p.flops <= t.flops);
    }

    #[test]
    fn time_is_linear_in_cost(a in cost(), b in cost()) {
        let params = MachineParams::TYPICAL_CLUSTER;
        let direct = params.time(a.then(b));
        let split = params.time(a) + params.time(b);
        prop_assert!((direct - split).abs() <= 1e-9 * direct.abs().max(1.0));
    }

    #[test]
    fn grid_rank_coord_roundtrip(p1 in 1usize..8, p2 in 1usize..8, p3 in 1usize..8) {
        let g = Grid3::new(p1, p2, p3);
        for r in 0..g.size() {
            prop_assert_eq!(g.rank_of(g.coord_of(r)), r);
        }
    }

    #[test]
    fn grid_fibers_partition(p1 in 1usize..6, p2 in 1usize..6, p3 in 1usize..6, axis in 0usize..3) {
        let g = Grid3::new(p1, p2, p3);
        let mut seen = vec![0u32; g.size()];
        for f in g.fibers(axis) {
            for r in f {
                seen[r] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&s| s == 1));
    }

    #[test]
    fn factorizations_are_exactly_the_triples(p in 1usize..200) {
        let fs = Grid3::factorizations(p);
        for f in &fs {
            prop_assert_eq!(f[0] * f[1] * f[2], p);
        }
        // sorted + deduplicated by construction
        let mut sorted = fs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(&sorted, &fs);
    }

    #[test]
    fn sorting_dims_is_idempotent(a in 1u64..10_000, b in 1u64..10_000, c in 1u64..10_000) {
        let s = MatMulDims::new(a, b, c).sorted();
        prop_assert!(s.m >= s.n && s.n >= s.k);
        let arr = MatMulDims::new(a, b, c).as_array();
        // axes is a permutation
        let mut axes = s.axes;
        axes.sort_unstable();
        prop_assert_eq!(axes, [0, 1, 2]);
        prop_assert_eq!(arr[s.axes[0]], s.m);
    }

    #[test]
    fn classification_is_monotone_in_p(a in 1u64..5_000, b in 1u64..5_000, c in 1u64..5_000) {
        // As P grows the case can only move 1D → 2D → 3D.
        let s = MatMulDims::new(a, b, c).sorted();
        let order = |case: Case| match case { Case::OneD => 0, Case::TwoD => 1, Case::ThreeD => 2 };
        let mut prev = 0;
        for p in [1.0, 2.0, 4.0, 16.0, 256.0, 65536.0, 1e9] {
            let cur = order(s.classify(p));
            prop_assert!(cur >= prev, "case regressed at P={p}");
            prev = cur;
        }
    }

    #[test]
    fn total_words_matches_sorted_total(a in 1u64..3_000, b in 1u64..3_000, c in 1u64..3_000) {
        let d = MatMulDims::new(a, b, c);
        let s = d.sorted();
        prop_assert!((d.total_words() - s.total_words()).abs() < 1e-9);
        prop_assert!((d.mults() - s.mults()).abs() < 1e-9);
    }
}
