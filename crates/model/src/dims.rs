//! Matrix-multiplication dimension triples and the paper's three-case
//! classification (Theorem 3).
//!
//! A classical matmul `C = A·B` with `A ∈ R^{n1×n2}`, `B ∈ R^{n2×n3}`,
//! `C ∈ R^{n1×n3}` has a 3D iteration space of `n1·n2·n3` scalar
//! multiplications. Each matrix is a *face* of that cuboid: `A` is the face
//! perpendicular to axis 3, `B` to axis 1, and `C` to axis 2.
//!
//! Theorem 3 is phrased in terms of the sorted dimensions
//! `m ≥ n ≥ k` (max / median / min of `{n1, n2, n3}`), and its three cases
//! split at `P = m/n` and `P = m·n/k²`.

use std::fmt;

/// Which of the three matrices of `C = A·B`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatrixId {
    /// The `n1 × n2` input.
    A,
    /// The `n2 × n3` input.
    B,
    /// The `n1 × n3` output.
    C,
}

impl MatrixId {
    /// All three matrices, in `[A, B, C]` order.
    pub const ALL: [MatrixId; 3] = [MatrixId::A, MatrixId::B, MatrixId::C];

    /// The iteration-space axis this matrix's face is perpendicular to
    /// (the axis whose index does *not* appear in the matrix's entries):
    /// `A(i1,i2)` ⊥ axis 2, `B(i2,i3)` ⊥ axis 0, `C(i1,i3)` ⊥ axis 1.
    #[inline]
    pub fn missing_axis(self) -> usize {
        match self {
            MatrixId::A => 2,
            MatrixId::B => 0,
            MatrixId::C => 1,
        }
    }

    /// The matrix whose face is perpendicular to `axis`.
    #[inline]
    pub fn perpendicular_to(axis: usize) -> MatrixId {
        match axis {
            0 => MatrixId::B,
            1 => MatrixId::C,
            2 => MatrixId::A,
            _ => panic!("axis must be 0, 1 or 2"),
        }
    }
}

impl fmt::Display for MatrixId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixId::A => write!(f, "A"),
            MatrixId::B => write!(f, "B"),
            MatrixId::C => write!(f, "C"),
        }
    }
}

/// The dimension triple `(n1, n2, n3)` of a multiplication
/// `(n1 × n2) · (n2 × n3)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatMulDims {
    /// Rows of `A` and of `C`.
    pub n1: u64,
    /// Columns of `A`, rows of `B` (the contracted dimension).
    pub n2: u64,
    /// Columns of `B` and of `C`.
    pub n3: u64,
}

impl MatMulDims {
    /// Create a dimension triple; all dimensions must be at least 1.
    pub fn new(n1: u64, n2: u64, n3: u64) -> MatMulDims {
        assert!(n1 >= 1 && n2 >= 1 && n3 >= 1, "matrix dimensions must be >= 1");
        MatMulDims { n1, n2, n3 }
    }

    /// Square `n × n × n` multiplication.
    pub fn square(n: u64) -> MatMulDims {
        MatMulDims::new(n, n, n)
    }

    /// The dimensions as an array indexed by iteration-space axis.
    #[inline]
    pub fn as_array(&self) -> [u64; 3] {
        [self.n1, self.n2, self.n3]
    }

    /// Number of scalar multiplications `n1·n2·n3` (as `f64`; may exceed
    /// `u64` in bound sweeps).
    #[inline]
    pub fn mults(&self) -> f64 {
        self.n1 as f64 * self.n2 as f64 * self.n3 as f64
    }

    /// Words in matrix `id`.
    #[inline]
    pub fn words_of(&self, id: MatrixId) -> f64 {
        let (r, c) = self.shape_of(id);
        r as f64 * c as f64
    }

    /// `(rows, cols)` of matrix `id`.
    #[inline]
    pub fn shape_of(&self, id: MatrixId) -> (u64, u64) {
        match id {
            MatrixId::A => (self.n1, self.n2),
            MatrixId::B => (self.n2, self.n3),
            MatrixId::C => (self.n1, self.n3),
        }
    }

    /// Total words across the three matrices:
    /// `n1n2 + n2n3 + n1n3 = mn + mk + nk`.
    #[inline]
    pub fn total_words(&self) -> f64 {
        MatrixId::ALL.iter().map(|&m| self.words_of(m)).sum()
    }

    /// Sort the dimensions into `m ≥ n ≥ k`, remembering which axis is
    /// which.
    pub fn sorted(&self) -> SortedDims {
        let a = self.as_array();
        // Stable sort of axis indices by dimension, descending; ties keep
        // axis order so the mapping is deterministic.
        let mut axes = [0usize, 1, 2];
        axes.sort_by(|&x, &y| a[y].cmp(&a[x]));
        SortedDims { m: a[axes[0]], n: a[axes[1]], k: a[axes[2]], axes }
    }

    /// Whether the grid `[p1, p2, p3]` divides every dimension evenly —
    /// the assumption under which Algorithm 1's cost matches eq. (3)
    /// exactly.
    pub fn divisible_by(&self, grid: [usize; 3]) -> bool {
        let a = self.as_array();
        (0..3).all(|i| a[i].is_multiple_of(grid[i] as u64))
    }
}

impl fmt::Display for MatMulDims {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}x{})·({}x{})", self.n1, self.n2, self.n2, self.n3)
    }
}

/// The paper's three cases (Theorem 3), named after the effective
/// dimensionality of the optimal processor grid (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Case {
    /// `1 ≤ P ≤ m/n`: 1D grid, leading term `nk`, constant 1.
    OneD,
    /// `m/n ≤ P ≤ mn/k²`: 2D grid, leading term `(mnk²/P)^{1/2}`, constant 2.
    TwoD,
    /// `mn/k² ≤ P`: 3D grid, leading term `(mnk/P)^{2/3}`, constant 3.
    ThreeD,
}

impl fmt::Display for Case {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Case::OneD => write!(f, "1D"),
            Case::TwoD => write!(f, "2D"),
            Case::ThreeD => write!(f, "3D"),
        }
    }
}

/// Dimensions sorted as `m ≥ n ≥ k`, with the permutation back to the
/// iteration-space axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SortedDims {
    /// Maximum dimension.
    pub m: u64,
    /// Median dimension.
    pub n: u64,
    /// Minimum dimension.
    pub k: u64,
    /// `axes[0]` is the iteration-space axis (0 ⇒ n1, 1 ⇒ n2, 2 ⇒ n3)
    /// carrying `m`; `axes[1]` carries `n`; `axes[2]` carries `k`.
    pub axes: [usize; 3],
}

impl SortedDims {
    /// `m/n` — the 1D/2D threshold on `P`.
    #[inline]
    pub fn threshold_1d_2d(&self) -> f64 {
        self.m as f64 / self.n as f64
    }

    /// `m·n/k²` — the 2D/3D threshold on `P`.
    #[inline]
    pub fn threshold_2d_3d(&self) -> f64 {
        (self.m as f64 * self.n as f64) / (self.k as f64 * self.k as f64)
    }

    /// Which of Theorem 3's cases applies for `p` processors.
    ///
    /// At the thresholds the adjacent formulas coincide (the optimal
    /// solutions are continuous in `P`, see Lemma 2); we deterministically
    /// return the lower-dimensionality case there.
    pub fn classify(&self, p: f64) -> Case {
        assert!(p >= 1.0, "P must be >= 1");
        if p <= self.threshold_1d_2d() {
            Case::OneD
        } else if p <= self.threshold_2d_3d() {
            Case::TwoD
        } else {
            Case::ThreeD
        }
    }

    /// Map sorted-order grid dimensions `(p, q, r)` — aligned with
    /// `(m, n, k)` — back to iteration-space order `[p1, p2, p3]`.
    pub fn grid_in_axis_order(&self, p: usize, q: usize, r: usize) -> [usize; 3] {
        let mut out = [0usize; 3];
        out[self.axes[0]] = p;
        out[self.axes[1]] = q;
        out[self.axes[2]] = r;
        out
    }

    /// Product `m·n·k` as `f64`.
    #[inline]
    pub fn mults(&self) -> f64 {
        self.m as f64 * self.n as f64 * self.k as f64
    }

    /// `mn + mk + nk`, total words across the three matrices.
    #[inline]
    pub fn total_words(&self) -> f64 {
        let (m, n, k) = (self.m as f64, self.n as f64, self.k as f64);
        m * n + m * k + n * k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_orders_descending_with_axis_map() {
        let d = MatMulDims::new(2400, 600, 9600); // n1=2400, n2=600, n3=9600
        let s = d.sorted();
        assert_eq!((s.m, s.n, s.k), (9600, 2400, 600));
        assert_eq!(s.axes, [2, 0, 1]);
        // permuting back recovers the dims
        let arr = d.as_array();
        assert_eq!(arr[s.axes[0]], s.m);
        assert_eq!(arr[s.axes[1]], s.n);
        assert_eq!(arr[s.axes[2]], s.k);
    }

    #[test]
    fn sorted_ties_are_stable() {
        let s = MatMulDims::square(100).sorted();
        assert_eq!(s.axes, [0, 1, 2]);
        assert_eq!((s.m, s.n, s.k), (100, 100, 100));
    }

    #[test]
    fn paper_example_thresholds() {
        // §5.3: A is 9600x2400, B is 2400x600 → m/n = 4, mn/k² = 64.
        let d = MatMulDims::new(9600, 2400, 600);
        let s = d.sorted();
        assert_eq!(s.threshold_1d_2d(), 4.0);
        assert_eq!(s.threshold_2d_3d(), 64.0);
        assert_eq!(s.classify(3.0), Case::OneD);
        assert_eq!(s.classify(36.0), Case::TwoD);
        assert_eq!(s.classify(512.0), Case::ThreeD);
    }

    #[test]
    fn square_matrices_are_always_3d_case() {
        let s = MatMulDims::square(1000).sorted();
        assert_eq!(s.threshold_1d_2d(), 1.0);
        assert_eq!(s.threshold_2d_3d(), 1.0);
        for p in [1.0, 2.0, 8.0, 1e6] {
            assert_eq!(s.classify(p), if p <= 1.0 { Case::OneD } else { Case::ThreeD });
        }
    }

    #[test]
    fn boundaries_classify_to_lower_case() {
        let s = MatMulDims::new(9600, 2400, 600).sorted();
        assert_eq!(s.classify(4.0), Case::OneD);
        assert_eq!(s.classify(64.0), Case::TwoD);
    }

    #[test]
    fn matrix_shapes_and_words() {
        let d = MatMulDims::new(4, 5, 6);
        assert_eq!(d.shape_of(MatrixId::A), (4, 5));
        assert_eq!(d.shape_of(MatrixId::B), (5, 6));
        assert_eq!(d.shape_of(MatrixId::C), (4, 6));
        assert_eq!(d.words_of(MatrixId::A), 20.0);
        assert_eq!(d.total_words(), 20.0 + 30.0 + 24.0);
        assert_eq!(d.mults(), 120.0);
    }

    #[test]
    fn missing_axis_is_consistent_with_perpendicular() {
        for m in MatrixId::ALL {
            assert_eq!(MatrixId::perpendicular_to(m.missing_axis()), m);
        }
    }

    #[test]
    fn grid_in_axis_order_places_factors() {
        let s = MatMulDims::new(2400, 600, 9600).sorted(); // m on axis 2, n on 0, k on 1
        assert_eq!(s.grid_in_axis_order(32, 8, 2), [8, 2, 32]);
    }

    #[test]
    fn divisibility() {
        let d = MatMulDims::new(9600, 2400, 600);
        assert!(d.divisible_by([32, 8, 2]));
        assert!(d.divisible_by([12, 3, 1]));
        assert!(!d.divisible_by([7, 1, 1]));
    }

    #[test]
    #[should_panic(expected = "must be >= 1")]
    fn zero_dim_rejected() {
        MatMulDims::new(0, 1, 1);
    }

    #[test]
    fn display() {
        assert_eq!(MatMulDims::new(2, 3, 4).to_string(), "(2x3)·(3x4)");
        assert_eq!(Case::TwoD.to_string(), "2D");
    }
}
