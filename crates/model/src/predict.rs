//! Per-phase analytic cost prediction for Algorithm 1 (eq. 3 of §5.1).
//!
//! Algorithm 1 on a `p1 × p2 × p3` grid performs three collectives, each
//! over one fiber of the grid, and eq. (3) is exactly their sum:
//!
//! | phase | collective | fiber | words per processor |
//! |-------|-----------|-------|---------------------|
//! | A | All-Gather | `p3` | `(1 − 1/p3) · n1n2/(p1p2)` |
//! | B | All-Gather | `p1` | `(1 − 1/p1) · n2n3/(p2p3)` |
//! | C | Reduce-Scatter | `p2` | `(1 − 1/p2) · n1n3/(p1p3)` |
//!
//! [`alg1_prediction`] exposes the three terms individually so tests can
//! hold the *measured* per-phase traffic of a simulated run against the
//! analytic model phase by phase — a much sharper oracle than comparing
//! totals, where two compensating errors could cancel. The sum
//! ([`Alg1Prediction::total`]) is the classic eq. (3) value used by the
//! grid optimizer and the Theorem 3 tightness checks.
//!
//! All three terms are exact (not asymptotic) when the grid divides the
//! dimensions, because the bandwidth-optimal collectives move exactly
//! `(1 − 1/p) · data` words per processor.

use crate::dims::MatMulDims;

/// Predicted per-processor communication words of Algorithm 1, split by
/// phase (see the module docs for the eq. 3 correspondence).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Alg1Prediction {
    /// All-Gather of A over the `p3` fiber: `(1 − 1/p3) · n1n2/(p1p2)`.
    pub allgather_a: f64,
    /// All-Gather of B over the `p1` fiber: `(1 − 1/p1) · n2n3/(p2p3)`.
    pub allgather_b: f64,
    /// Reduce-Scatter of C over the `p2` fiber: `(1 − 1/p2) · n1n3/(p1p3)`.
    pub reduce_c: f64,
}

impl Alg1Prediction {
    /// The eq. (3) total: sum of the three phase terms.
    pub fn total(&self) -> f64 {
        self.allgather_a + self.allgather_b + self.reduce_c
    }

    /// The three phase terms in execution order (A, B, C) — aligned with
    /// the per-phase meters a simulated Algorithm 1 run reports.
    pub fn phases(&self) -> [f64; 3] {
        [self.allgather_a, self.allgather_b, self.reduce_c]
    }
}

/// Evaluate eq. (3) phase by phase for `dims` on `grid` (iteration-space
/// order `[p1, p2, p3]`, aligned with `n1, n2, n3`).
///
/// # Example
///
/// On the cubic grid each phase moves `(1 − 1/2)·n²/4` words:
///
/// ```
/// use pmm_model::{alg1_prediction, MatMulDims};
///
/// let pred = alg1_prediction(MatMulDims::new(8, 8, 8), [2, 2, 2]);
/// assert_eq!(pred.phases(), [8.0, 8.0, 8.0]);
/// assert_eq!(pred.total(), 24.0);
///
/// // A 1D grid (p2 = p3 = 1) moves only the B matrix:
/// let pred = alg1_prediction(MatMulDims::new(64, 16, 16), [4, 1, 1]);
/// assert_eq!(pred.allgather_a, 0.0);
/// assert_eq!(pred.reduce_c, 0.0);
/// ```
pub fn alg1_prediction(dims: MatMulDims, grid: [usize; 3]) -> Alg1Prediction {
    let [p1, p2, p3] = grid.map(|x| x as f64);
    let (n1, n2, n3) = (dims.n1 as f64, dims.n2 as f64, dims.n3 as f64);
    Alg1Prediction {
        allgather_a: (1.0 - 1.0 / p3) * n1 * n2 / (p1 * p2),
        allgather_b: (1.0 - 1.0 / p1) * n2 * n3 / (p2 * p3),
        reduce_c: (1.0 - 1.0 / p2) * n1 * n3 / (p1 * p3),
    }
}

/// Predicted goodput cost of a rank-failure recovery run of Algorithm 1:
/// one eq. (3) evaluation per attempt (each attempt re-runs the whole
/// multiplication on the grid its survivors chose; abandoned attempts
/// are *upper-bounded* by their full eq. (3) term, since a kill truncates
/// them partway).
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryPrediction {
    /// Per-attempt phase predictions, first to last. The last entry is
    /// the successful attempt, and its phases are exact (on divisible
    /// grids) for the surviving ranks' goodput meters.
    pub attempts: Vec<Alg1Prediction>,
}

impl RecoveryPrediction {
    /// The successful (final) attempt's prediction.
    pub fn last(&self) -> &Alg1Prediction {
        self.attempts.last().expect("recovery has at least one attempt")
    }

    /// Upper bound on total per-processor goodput words across all
    /// attempts (abandoned attempts counted in full).
    pub fn total_upper_bound(&self) -> f64 {
        self.attempts.iter().map(Alg1Prediction::total).sum()
    }
}

/// Evaluate eq. (3) for every attempt of a recovery run. `attempt_grids`
/// is the grid each attempt used, first to last — the caller (which knows
/// the survivor counts and its grid optimizer) supplies them; e.g.
/// `pmm_algs::RecoveryOutput::attempt_grids` records exactly this.
///
/// Panics if `attempt_grids` is empty.
pub fn recovery_prediction(dims: MatMulDims, attempt_grids: &[[usize; 3]]) -> RecoveryPrediction {
    assert!(!attempt_grids.is_empty(), "recovery has at least one attempt");
    RecoveryPrediction {
        attempts: attempt_grids.iter().map(|&g| alg1_prediction(dims, g)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_terms_match_eq3_by_hand() {
        // 12 × 8 × 4 on a 2 × 2 × 3 grid.
        let p = alg1_prediction(MatMulDims::new(12, 8, 4), [2, 2, 3]);
        assert_eq!(p.allgather_a, (1.0 - 1.0 / 3.0) * 96.0 / 4.0);
        assert_eq!(p.allgather_b, (1.0 - 1.0 / 2.0) * 32.0 / 6.0);
        assert_eq!(p.reduce_c, (1.0 - 1.0 / 2.0) * 48.0 / 6.0);
        assert_eq!(p.total(), p.phases().iter().sum::<f64>());
    }

    #[test]
    fn degenerate_fibers_cost_nothing() {
        // On a 1D grid only B moves: p2 = p3 = 1 kill the A and C terms.
        let p = alg1_prediction(MatMulDims::new(96, 24, 12), [4, 1, 1]);
        assert_eq!(p.allgather_a, 0.0);
        assert_eq!(p.reduce_c, 0.0);
        assert!(p.allgather_b > 0.0);
    }
}
