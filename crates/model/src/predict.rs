//! Per-phase analytic cost prediction for Algorithm 1 (eq. 3 of §5.1).
//!
//! Algorithm 1 on a `p1 × p2 × p3` grid performs three collectives, each
//! over one fiber of the grid, and eq. (3) is exactly their sum:
//!
//! | phase | collective | fiber | words per processor |
//! |-------|-----------|-------|---------------------|
//! | A | All-Gather | `p3` | `(1 − 1/p3) · n1n2/(p1p2)` |
//! | B | All-Gather | `p1` | `(1 − 1/p1) · n2n3/(p2p3)` |
//! | C | Reduce-Scatter | `p2` | `(1 − 1/p2) · n1n3/(p1p3)` |
//!
//! [`alg1_prediction`] exposes the three terms individually so tests can
//! hold the *measured* per-phase traffic of a simulated run against the
//! analytic model phase by phase — a much sharper oracle than comparing
//! totals, where two compensating errors could cancel. The sum
//! ([`Alg1Prediction::total`]) is the classic eq. (3) value used by the
//! grid optimizer and the Theorem 3 tightness checks.
//!
//! All three terms are exact (not asymptotic) when the grid divides the
//! dimensions, because the bandwidth-optimal collectives move exactly
//! `(1 − 1/p) · data` words per processor.

use crate::dims::MatMulDims;

/// Predicted per-processor communication words of Algorithm 1, split by
/// phase (see the module docs for the eq. 3 correspondence).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Alg1Prediction {
    /// All-Gather of A over the `p3` fiber: `(1 − 1/p3) · n1n2/(p1p2)`.
    pub allgather_a: f64,
    /// All-Gather of B over the `p1` fiber: `(1 − 1/p1) · n2n3/(p2p3)`.
    pub allgather_b: f64,
    /// Reduce-Scatter of C over the `p2` fiber: `(1 − 1/p2) · n1n3/(p1p3)`.
    pub reduce_c: f64,
}

impl Alg1Prediction {
    /// The eq. (3) total: sum of the three phase terms.
    pub fn total(&self) -> f64 {
        self.allgather_a + self.allgather_b + self.reduce_c
    }

    /// The three phase terms in execution order (A, B, C) — aligned with
    /// the per-phase meters a simulated Algorithm 1 run reports.
    pub fn phases(&self) -> [f64; 3] {
        [self.allgather_a, self.allgather_b, self.reduce_c]
    }
}

/// Evaluate eq. (3) phase by phase for `dims` on `grid` (iteration-space
/// order `[p1, p2, p3]`, aligned with `n1, n2, n3`).
///
/// # Example
///
/// On the cubic grid each phase moves `(1 − 1/2)·n²/4` words:
///
/// ```
/// use pmm_model::{alg1_prediction, MatMulDims};
///
/// let pred = alg1_prediction(MatMulDims::new(8, 8, 8), [2, 2, 2]);
/// assert_eq!(pred.phases(), [8.0, 8.0, 8.0]);
/// assert_eq!(pred.total(), 24.0);
///
/// // A 1D grid (p2 = p3 = 1) moves only the B matrix:
/// let pred = alg1_prediction(MatMulDims::new(64, 16, 16), [4, 1, 1]);
/// assert_eq!(pred.allgather_a, 0.0);
/// assert_eq!(pred.reduce_c, 0.0);
/// ```
pub fn alg1_prediction(dims: MatMulDims, grid: [usize; 3]) -> Alg1Prediction {
    let [p1, p2, p3] = grid.map(|x| x as f64);
    let (n1, n2, n3) = (dims.n1 as f64, dims.n2 as f64, dims.n3 as f64);
    Alg1Prediction {
        allgather_a: (1.0 - 1.0 / p3) * n1 * n2 / (p1 * p2),
        allgather_b: (1.0 - 1.0 / p1) * n2 * n3 / (p2 * p3),
        reduce_c: (1.0 - 1.0 / p2) * n1 * n3 / (p1 * p3),
    }
}

/// The layout one recovery attempt runs on — one variant per algorithm
/// the generic `Recoverable` wrapper in `pmm-algs` can drive. The model
/// prices each variant's full-run goodput in closed form
/// ([`run_words_total`]), which is what makes recovery goodput
/// assertions exact per algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlgPlan {
    /// Algorithm 1 on a `p1 × p2 × p3` grid (§5.2 optimum of the
    /// survivors).
    Alg1 {
        /// Processor grid `[p1, p2, p3]`.
        grid: [usize; 3],
    },
    /// Streamed Algorithm 1: same grid and same goodput as
    /// [`AlgPlan::Alg1`], with the A/B all-gathers split into `slabs`
    /// pieces.
    Alg1Streamed {
        /// Processor grid `[p1, p2, p3]`.
        grid: [usize; 3],
        /// Number of streamed slabs.
        slabs: usize,
    },
    /// SUMMA on a `pr × pc` process grid.
    Summa {
        /// Process rows.
        pr: usize,
        /// Process columns.
        pc: usize,
    },
    /// Cannon on a `q × q` torus (survivors beyond `q²` idle).
    Cannon {
        /// Torus side.
        q: usize,
    },
    /// 2.5D on `c` layers of a `q × q` grid (survivors beyond `c·q²`
    /// idle).
    TwoFiveD {
        /// Grid side.
        q: usize,
        /// Replication layers (`c` divides `q`).
        c: usize,
    },
    /// CARMA recursion over `p` ranks (`p` a power of two; survivors
    /// beyond `p` idle).
    Carma {
        /// Active processor count.
        p: usize,
    },
}

impl AlgPlan {
    /// Ranks that actively participate in the run (idle survivors not
    /// counted).
    pub fn active(&self) -> usize {
        match *self {
            AlgPlan::Alg1 { grid } | AlgPlan::Alg1Streamed { grid, .. } => grid.iter().product(),
            AlgPlan::Summa { pr, pc } => pr * pc,
            AlgPlan::Cannon { q } => q * q,
            AlgPlan::TwoFiveD { q, c } => c * q * q,
            AlgPlan::Carma { p } => p,
        }
    }

    /// Short algorithm name for reports.
    pub fn algorithm(&self) -> &'static str {
        match self {
            AlgPlan::Alg1 { .. } => "alg1",
            AlgPlan::Alg1Streamed { .. } => "alg1_streamed",
            AlgPlan::Summa { .. } => "summa",
            AlgPlan::Cannon { .. } => "cannon",
            AlgPlan::TwoFiveD { .. } => "twofived",
            AlgPlan::Carma { .. } => "carma",
        }
    }
}

impl std::fmt::Display for AlgPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            AlgPlan::Alg1 { grid: [p1, p2, p3] } => write!(f, "alg1[{p1}x{p2}x{p3}]"),
            AlgPlan::Alg1Streamed { grid: [p1, p2, p3], slabs } => {
                write!(f, "alg1_streamed[{p1}x{p2}x{p3}/{slabs}]")
            }
            AlgPlan::Summa { pr, pc } => write!(f, "summa[{pr}x{pc}]"),
            AlgPlan::Cannon { q } => write!(f, "cannon[{q}x{q}]"),
            AlgPlan::TwoFiveD { q, c } => write!(f, "twofived[{q}x{q}x{c}]"),
            AlgPlan::Carma { p } => write!(f, "carma[{p}]"),
        }
    }
}

/// Length of part `i` of `0..n` split into `parts` (extras spread over
/// the first parts — the same convention as `pmm_dense::block_range`,
/// mirrored here because the model crate sits below the dense crate).
fn part_len(n: u64, parts: u64, i: u64) -> u64 {
    n / parts + u64::from(i < n % parts)
}

fn lcm(a: u64, b: u64) -> u64 {
    fn gcd(a: u64, b: u64) -> u64 {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }
    a / gcd(a, b) * b
}

/// Total words a binomial-tree scatter of `w` words over `k` ranks
/// sends: each non-root receives its subtree's payload exactly once, so
/// the total is `chunk · Σ_{v=1}^{k-1} min(lowbit(v), k − v)` for
/// uniform chunks `w / k`.
fn binomial_scatter_words(w: u64, k: u64) -> u64 {
    let chunk = w / k;
    let subtree_sum: u64 = (1..k).map(|v| (v & v.wrapping_neg()).min(k - v)).sum();
    chunk * subtree_sum
}

/// Total words one broadcast of `w` words over `k` ranks sends, summed
/// over all ranks, for the collective-selection rule the SUMMA panel
/// broadcast uses: scatter + ring all-gather when `k | w` (scatter as
/// above, all-gather `(k−1)·w`), binomial tree (`(k−1)·w`) otherwise.
fn bcast_words_total(w: u64, k: u64) -> u64 {
    if k <= 1 || w == 0 {
        0
    } else if w.is_multiple_of(k) {
        binomial_scatter_words(w, k) + (k - 1) * w
    } else {
        (k - 1) * w
    }
}

/// Per-rank words of the CARMA recursion (mirrors
/// `pmm_algs::carma_cost_words`, which lives above this crate).
fn carma_words_per_rank(n1: f64, n2: f64, n3: f64, p: f64) -> f64 {
    if p <= 1.0 {
        return 0.0;
    }
    if n1 >= n2 && n1 >= n3 {
        n2 * n3 / p + carma_words_per_rank(n1 / 2.0, n2, n3, p / 2.0)
    } else if n3 >= n1 && n3 >= n2 {
        n1 * n2 / p + carma_words_per_rank(n1, n2, n3 / 2.0, p / 2.0)
    } else {
        n1 * n3 / p + carma_words_per_rank(n1, n2 / 2.0, n3, p / 2.0)
    }
}

/// Total goodput words **sent across all ranks** by one clean run of
/// `plan` on `dims` — the exact sum of the surviving ranks' `words_sent`
/// meters (excluding fault retries, which are metered separately).
///
/// Every term mirrors the executed communication structure:
///
/// - `alg1` / `alg1_streamed`: `P ×` eq. (3) (exact when the grid
///   divides the dimensions; the streamed variant moves identical
///   totals, slab by slab).
/// - `summa`: per-panel broadcasts priced by the collective cost model
///   (scatter–all-gather when the panel length divides the
///   communicator, binomial otherwise).
/// - `cannon`: skew exchanges (every rank off the zero row/column
///   sends its block once) plus `q − 1` full-block rotations.
/// - `twofived`: binomial input replication over the `c` fibers, the
///   per-layer skew, `q/c − 1` rotations on all layers, and the
///   binomial C reduction back to layer 0.
/// - `carma`: `p ×` the recursion's per-rank closed form.
pub fn run_words_total(dims: MatMulDims, plan: &AlgPlan) -> f64 {
    let (n1, n2, n3) = (dims.n1, dims.n2, dims.n3);
    match *plan {
        AlgPlan::Alg1 { grid } | AlgPlan::Alg1Streamed { grid, .. } => {
            let p: usize = grid.iter().product();
            p as f64 * alg1_prediction(dims, grid).total()
        }
        AlgPlan::Summa { pr, pc } => {
            let (pr, pc) = (pr as u64, pc as u64);
            let s = lcm(pr, pc);
            let mut total = 0u64;
            for t in 0..s {
                let w = part_len(n2, s, t);
                for i in 0..pr {
                    total += bcast_words_total(part_len(n1, pr, i) * w, pc);
                }
                for j in 0..pc {
                    total += bcast_words_total(w * part_len(n3, pc, j), pr);
                }
            }
            total as f64
        }
        AlgPlan::Cannon { q } => {
            let q = q as u64;
            if q <= 1 {
                return 0.0;
            }
            let skew = (n1 - part_len(n1, q, 0)) * n2 + n2 * (n3 - part_len(n3, q, 0));
            let rotate = (q - 1) * (n1 * n2 + n2 * n3);
            (skew + rotate) as f64
        }
        AlgPlan::TwoFiveD { q, c } => {
            let (q, c) = (q as u64, c as u64);
            let inputs = n1 * n2 + n2 * n3;
            let replicate = (c - 1) * inputs;
            // Layer l skews by (l·q/c) mod q; exactly one row (and one
            // column) index sits at shift 0 and keeps its block.
            let mut skew = 0u64;
            for l in 0..c {
                let shift = (l * (q / c)) % q;
                let home = (q - shift) % q;
                skew += (n1 - part_len(n1, q, home)) * n2 + n2 * (n3 - part_len(n3, q, home));
            }
            let rotate = (q - c) * inputs;
            let reduce = (c - 1) * n1 * n3;
            (replicate + skew + rotate + reduce) as f64
        }
        AlgPlan::Carma { p } => {
            p as f64 * carma_words_per_rank(n1 as f64, n2 as f64, n3 as f64, p as f64)
        }
    }
}

/// Total words one checkpoint capture or redistribution round moves
/// across all ranks: the buddy ring sends every rank's owned A and B
/// words exactly once, so the total is `|A| + |B|` whenever more than
/// one rank participates (and zero for a single rank, which keeps its
/// blocks in place).
pub fn restore_words_total(dims: MatMulDims, survivors: usize) -> f64 {
    if survivors <= 1 {
        0.0
    } else {
        (dims.n1 * dims.n2 + dims.n2 * dims.n3) as f64
    }
}

/// Predicted goodput of one attempt of a checkpointed recovery run.
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptPrediction {
    /// The layout this attempt ran on.
    pub plan: AlgPlan,
    /// Restore-phase goodput total across ranks: the checkpoint capture
    /// on the first attempt, redistribution from checkpoints on later
    /// ones — both are priced by [`restore_words_total`].
    pub restore_words_total: f64,
    /// Algorithm-run goodput total across ranks
    /// ([`run_words_total`]); exact for the successful attempt, an
    /// upper bound for abandoned ones (a kill truncates them partway).
    pub run_words_total: f64,
    /// Per-rank eq. (3) phase terms when the plan is an Algorithm 1
    /// grid (plain or streamed); `None` for the other algorithms.
    pub alg1_phases: Option<Alg1Prediction>,
}

/// Predicted goodput cost of a checkpointed recovery run: one entry per
/// attempt, each pricing its restore traffic and its full re-run.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryPrediction {
    /// Per-attempt predictions, first to last. The last entry is the
    /// successful attempt; its totals are exact for the surviving
    /// ranks' goodput meters.
    pub attempts: Vec<AttemptPrediction>,
}

impl RecoveryPrediction {
    /// The successful (final) attempt's prediction.
    pub fn last(&self) -> &AttemptPrediction {
        self.attempts.last().expect("recovery has at least one attempt")
    }

    /// Upper bound on total goodput words across all ranks and all
    /// attempts (abandoned attempts counted in full).
    pub fn total_upper_bound_words(&self) -> f64 {
        self.attempts.iter().map(|a| a.restore_words_total + a.run_words_total).sum()
    }
}

/// Price every attempt of a checkpointed recovery run: `plans` is the
/// layout each attempt used, first to last, and `survivors` the number
/// of ranks that participated in each attempt (the checkpoint /
/// redistribution ring size) — both recorded by the `Recoverable`
/// wrapper in `pmm-algs`.
///
/// Panics if `plans` is empty or the lengths disagree.
pub fn recovery_prediction(
    dims: MatMulDims,
    plans: &[AlgPlan],
    survivors: &[usize],
) -> RecoveryPrediction {
    assert!(!plans.is_empty(), "recovery has at least one attempt");
    assert_eq!(plans.len(), survivors.len(), "one survivor count per attempt");
    RecoveryPrediction {
        attempts: plans
            .iter()
            .zip(survivors)
            .map(|(plan, &s)| AttemptPrediction {
                plan: plan.clone(),
                restore_words_total: restore_words_total(dims, s),
                run_words_total: run_words_total(dims, plan),
                alg1_phases: match *plan {
                    AlgPlan::Alg1 { grid } | AlgPlan::Alg1Streamed { grid, .. } => {
                        Some(alg1_prediction(dims, grid))
                    }
                    _ => None,
                },
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_terms_match_eq3_by_hand() {
        // 12 × 8 × 4 on a 2 × 2 × 3 grid.
        let p = alg1_prediction(MatMulDims::new(12, 8, 4), [2, 2, 3]);
        assert_eq!(p.allgather_a, (1.0 - 1.0 / 3.0) * 96.0 / 4.0);
        assert_eq!(p.allgather_b, (1.0 - 1.0 / 2.0) * 32.0 / 6.0);
        assert_eq!(p.reduce_c, (1.0 - 1.0 / 2.0) * 48.0 / 6.0);
        assert_eq!(p.total(), p.phases().iter().sum::<f64>());
    }

    #[test]
    fn degenerate_fibers_cost_nothing() {
        // On a 1D grid only B moves: p2 = p3 = 1 kill the A and C terms.
        let p = alg1_prediction(MatMulDims::new(96, 24, 12), [4, 1, 1]);
        assert_eq!(p.allgather_a, 0.0);
        assert_eq!(p.reduce_c, 0.0);
        assert!(p.allgather_b > 0.0);
    }

    #[test]
    fn alg1_run_total_is_p_times_eq3() {
        let dims = MatMulDims::new(24, 24, 24);
        let plan = AlgPlan::Alg1 { grid: [2, 2, 2] };
        assert_eq!(run_words_total(dims, &plan), 8.0 * alg1_prediction(dims, [2, 2, 2]).total());
        let streamed = AlgPlan::Alg1Streamed { grid: [2, 2, 2], slabs: 3 };
        assert_eq!(run_words_total(dims, &streamed), run_words_total(dims, &plan));
    }

    #[test]
    fn cannon_run_total_counts_skew_and_rotations() {
        // 6×6×6 on a 3×3 torus: skew moves 2/3 of each input, rotations
        // move both inputs twice in full.
        let dims = MatMulDims::new(6, 6, 6);
        let skew = 2.0 * (36.0 - 12.0);
        let rotate = 2.0 * (36.0 + 36.0);
        assert_eq!(run_words_total(dims, &AlgPlan::Cannon { q: 3 }), skew + rotate);
        // q = 1 is a purely local run.
        assert_eq!(run_words_total(dims, &AlgPlan::Cannon { q: 1 }), 0.0);
    }

    #[test]
    fn twofived_with_one_layer_degenerates_to_cannon() {
        let dims = MatMulDims::new(12, 8, 4);
        assert_eq!(
            run_words_total(dims, &AlgPlan::TwoFiveD { q: 2, c: 1 }),
            run_words_total(dims, &AlgPlan::Cannon { q: 2 }),
        );
    }

    #[test]
    fn binomial_scatter_counts_subtree_payloads() {
        // p = 4, w = 8: root sends 2 chunks to vrank 2, then 1 chunk to
        // vrank 1; vrank 2 sends 1 chunk to vrank 3 → 4 chunks of 2 words.
        assert_eq!(binomial_scatter_words(8, 4), 8);
        // p = 2: one chunk travels once.
        assert_eq!(binomial_scatter_words(8, 2), 4);
    }

    #[test]
    fn bcast_total_picks_sag_only_on_divisible_lengths() {
        // Indivisible: binomial, (k-1)·w.
        assert_eq!(bcast_words_total(7, 4), 21);
        // Divisible: scatter + ring all-gather.
        assert_eq!(bcast_words_total(8, 4), 8 + 3 * 8);
        assert_eq!(bcast_words_total(0, 4), 0);
        assert_eq!(bcast_words_total(9, 1), 0);
    }

    #[test]
    fn carma_total_is_p_times_the_recursion() {
        let dims = MatMulDims::new(32, 8, 16);
        // One n1 split (share |B|/p), then n3 (|A|/p), then balanced.
        let per_rank = carma_words_per_rank(32.0, 8.0, 16.0, 4.0);
        assert_eq!(run_words_total(dims, &AlgPlan::Carma { p: 4 }), 4.0 * per_rank);
        assert_eq!(run_words_total(dims, &AlgPlan::Carma { p: 1 }), 0.0);
    }

    #[test]
    fn restore_total_is_the_input_footprint() {
        let dims = MatMulDims::new(12, 8, 4);
        assert_eq!(restore_words_total(dims, 5), (12 * 8 + 8 * 4) as f64);
        assert_eq!(restore_words_total(dims, 1), 0.0, "a lone rank keeps its blocks");
    }

    #[test]
    fn recovery_prediction_prices_every_attempt() {
        let dims = MatMulDims::new(24, 24, 24);
        let plans = [AlgPlan::Alg1 { grid: [3, 3, 1] }, AlgPlan::Alg1 { grid: [2, 2, 2] }];
        let pred = recovery_prediction(dims, &plans, &[9, 8]);
        assert_eq!(pred.attempts.len(), 2);
        assert_eq!(pred.last().plan, plans[1]);
        assert!(pred.last().alg1_phases.is_some());
        assert_eq!(
            pred.total_upper_bound_words(),
            2.0 * restore_words_total(dims, 9)
                + run_words_total(dims, &plans[0])
                + run_words_total(dims, &plans[1])
        );
    }
}
