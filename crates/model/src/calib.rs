//! Measured-hardware calibration: turning abstract α-β-γ costs into
//! predicted **seconds**.
//!
//! The rest of this crate counts *words, messages and flops* — the
//! machine-independent currency of the paper's bounds. A
//! [`MachineCalibration`] is the bridge to wall-clock time: three
//! measured constants, all in seconds,
//!
//! * `alpha` — per-message latency (seconds per message),
//! * `beta` — inverse bandwidth (seconds per word, one word = one `f64`),
//! * `gamma` — seconds per flop (one metered multiply-add),
//!
//! plus `rank_secs`, a fixed per-run overhead absorbing everything the
//! three linear terms do not (scheduler setup, buffer allocation).
//!
//! Calibrations are *fitted from timed probes*, not guessed:
//! `pmm-bench` runs ping-pong, stream and GEMM probes (see
//! `pmm_bench::calibrate`) and fits the constants with the least-squares
//! helpers here ([`fit_affine`], [`fit_through_origin`]). The result
//! round-trips through a small flat JSON document
//! ([`MachineCalibration::to_json`] / [`from_json`]) written by
//! `cargo xtask calibrate` and `pmm calibrate`.
//!
//! [`from_json`]: MachineCalibration::from_json
//!
//! # Example
//!
//! ```
//! use pmm_model::{Cost, MachineCalibration, MatMulDims};
//!
//! // A toy machine: 1 µs latency, 1 ns/word, 0.1 ns/flop.
//! let cal = MachineCalibration::new(1e-6, 1e-9, 1e-10);
//! let cost = Cost::message(1000.0); // one message of 1000 words
//! assert!((cal.seconds(cost) - 2e-6).abs() < 1e-12);
//!
//! // eq. (3) in seconds for a 64³ problem on the cubic 2×2×2 grid:
//! let secs = cal.alg1_seconds(MatMulDims::new(64, 64, 64), [2, 2, 2]);
//! assert!(secs > 0.0);
//!
//! // Round-trips through its JSON document.
//! let back = MachineCalibration::from_json(&cal.to_json()).unwrap();
//! assert_eq!(back, cal);
//! ```

use crate::cost::{Cost, MachineParams};
use crate::dims::MatMulDims;
use crate::predict::alg1_prediction;

/// A measured machine: α, β, γ in seconds, fitted from timed probes.
///
/// See the [module docs](self) for the probe/fit pipeline and the JSON
/// interchange format.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineCalibration {
    /// Per-message latency in seconds (the fitted intercept of the
    /// ping-pong probe).
    pub alpha: f64,
    /// Seconds per word — one word is one `f64` (the fitted slope of
    /// the ping-pong probe).
    pub beta: f64,
    /// Seconds per flop — one metered multiply-add (fitted through the
    /// origin from timed GEMM runs).
    pub gamma: f64,
    /// Fixed per-run overhead in seconds (world setup, buffer
    /// allocation); added once by [`alg1_seconds`](Self::alg1_seconds),
    /// not per cost term. Zero unless fitted.
    pub rank_secs: f64,
}

impl MachineCalibration {
    /// A calibration from the three linear constants, with zero fixed
    /// overhead. Panics if any constant is negative or non-finite (the
    /// same contract as [`MachineParams::new`]).
    pub fn new(alpha: f64, beta: f64, gamma: f64) -> MachineCalibration {
        let c = MachineCalibration { alpha, beta, gamma, rank_secs: 0.0 };
        c.validate();
        c
    }

    /// Set the fixed per-run overhead (builder style).
    pub fn with_rank_secs(mut self, rank_secs: f64) -> MachineCalibration {
        self.rank_secs = rank_secs;
        self.validate();
        self
    }

    fn validate(&self) {
        for (name, v) in [
            ("alpha", self.alpha),
            ("beta", self.beta),
            ("gamma", self.gamma),
            ("rank_secs", self.rank_secs),
        ] {
            assert!(
                v.is_finite() && v >= 0.0,
                "calibration {name} must be finite and >= 0, got {v}"
            );
        }
    }

    /// The equivalent [`MachineParams`] — the calibrated machine as a
    /// cost-model point, usable anywhere the simulator or optimizer
    /// takes abstract α-β-γ weights.
    pub fn params(&self) -> MachineParams {
        MachineParams::new(self.alpha, self.beta, self.gamma)
    }

    /// Predicted seconds for an abstract [`Cost`]:
    /// `α·messages + β·words + γ·flops`.
    pub fn seconds(&self, cost: Cost) -> f64 {
        self.params().time(cost)
    }

    /// Predicted wall-clock seconds of one Algorithm 1 run of `dims` on
    /// `grid`: eq. (3) word counts priced at `beta`, ring-collective
    /// message counts (`(p1−1) + (p2−1) + (p3−1)` per rank) priced at
    /// `alpha`, the per-rank multiply-add share `n1·n2·n3 / P` priced at
    /// `gamma`, plus the fixed `rank_secs` overhead.
    pub fn alg1_seconds(&self, dims: MatMulDims, grid: [usize; 3]) -> f64 {
        let p: usize = grid.iter().product();
        let words = alg1_prediction(dims, grid).total();
        let msgs = grid.iter().map(|&g| g as f64 - 1.0).sum::<f64>();
        let flops = (dims.n1 * dims.n2 * dims.n3) as f64 / p as f64;
        self.seconds(Cost { messages: msgs, words, flops }) + self.rank_secs
    }

    /// Serialize as a small flat JSON object (stable key order, full
    /// `f64` precision via shortest-roundtrip formatting).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"alpha\": {},\n  \"beta\": {},\n  \"gamma\": {},\n  \"rank_secs\": {}\n}}\n",
            self.alpha, self.beta, self.gamma, self.rank_secs
        )
    }

    /// Parse the document [`to_json`](Self::to_json) writes (key order
    /// and whitespace are free; unknown keys are ignored). Returns a
    /// message naming the missing or malformed field on failure.
    pub fn from_json(text: &str) -> Result<MachineCalibration, String> {
        let field = |key: &str| -> Result<f64, String> {
            let needle = format!("\"{key}\"");
            let at = text.find(&needle).ok_or_else(|| format!("missing field {key}"))?;
            let rest = &text[at + needle.len()..];
            let rest = rest
                .trim_start()
                .strip_prefix(':')
                .ok_or_else(|| format!("expected ':' after {key}"))?
                .trim_start();
            let end = rest
                .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
                .unwrap_or(rest.len());
            rest[..end].parse::<f64>().map_err(|e| format!("bad value for {key}: {e}"))
        };
        let cal = MachineCalibration {
            alpha: field("alpha")?,
            beta: field("beta")?,
            gamma: field("gamma")?,
            rank_secs: field("rank_secs").unwrap_or(0.0),
        };
        for (name, v) in [("alpha", cal.alpha), ("beta", cal.beta), ("gamma", cal.gamma)] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("calibration {name} must be finite and >= 0, got {v}"));
            }
        }
        Ok(cal)
    }
}

/// Least-squares affine fit `y ≈ intercept + slope·x` over `(x, y)`
/// points, with both coefficients clamped at zero (a probe whose noise
/// drives a physical constant negative reports zero instead).
///
/// Returns `(intercept, slope)`. Panics on fewer than two points.
///
/// ```
/// use pmm_model::calib::fit_affine;
/// let (a, b) = fit_affine(&[(0.0, 1.0), (1.0, 3.0), (2.0, 5.0)]);
/// assert!((a - 1.0).abs() < 1e-12 && (b - 2.0).abs() < 1e-12);
/// ```
pub fn fit_affine(points: &[(f64, f64)]) -> (f64, f64) {
    assert!(points.len() >= 2, "affine fit needs at least two points");
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let det = n * sxx - sx * sx;
    if det == 0.0 {
        // All x equal: the slope is unidentifiable; report the mean as
        // the intercept.
        return ((sy / n).max(0.0), 0.0);
    }
    let slope = (n * sxy - sx * sy) / det;
    let intercept = (sy - slope * sx) / n;
    (intercept.max(0.0), slope.max(0.0))
}

/// Least-squares through-origin fit `y ≈ slope·x` (`slope = Σxy / Σx²`),
/// clamped at zero. Panics on an empty set or all-zero `x`.
///
/// ```
/// use pmm_model::calib::fit_through_origin;
/// let g = fit_through_origin(&[(1.0, 2.0), (2.0, 4.0)]);
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn fit_through_origin(points: &[(f64, f64)]) -> f64 {
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    assert!(sxx > 0.0, "through-origin fit needs a nonzero x");
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    (sxy / sxx).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_prices_all_three_terms() {
        let cal = MachineCalibration::new(1.0, 0.1, 0.01);
        let cost = Cost { messages: 2.0, words: 30.0, flops: 400.0 };
        assert!((cal.seconds(cost) - (2.0 + 3.0 + 4.0)).abs() < 1e-12);
    }

    #[test]
    fn alg1_seconds_is_eq3_plus_latency_plus_compute() {
        let dims = MatMulDims::new(8, 8, 8);
        let grid = [2, 2, 2];
        let cal = MachineCalibration::new(1e-3, 1e-6, 1e-9).with_rank_secs(0.5);
        let want =
            1e-3 * 3.0 + 1e-6 * alg1_prediction(dims, grid).total() + 1e-9 * (512.0 / 8.0) + 0.5;
        assert!((cal.alg1_seconds(dims, grid) - want).abs() < 1e-12);
    }

    #[test]
    fn json_round_trips_including_rank_secs() {
        let cal = MachineCalibration::new(2.5e-7, 3.25e-10, 4.125e-11).with_rank_secs(1e-4);
        let back = MachineCalibration::from_json(&cal.to_json()).expect("round trip");
        assert_eq!(back, cal);
    }

    #[test]
    fn from_json_tolerates_order_and_unknown_keys() {
        let text = r#"{"gamma": 3e-11, "host": "ci", "alpha": 1e-6, "beta": 2e-9}"#;
        let cal = MachineCalibration::from_json(text).expect("parse");
        assert_eq!(cal.alpha, 1e-6);
        assert_eq!(cal.beta, 2e-9);
        assert_eq!(cal.gamma, 3e-11);
        assert_eq!(cal.rank_secs, 0.0, "rank_secs defaults to zero");
    }

    #[test]
    fn from_json_names_the_missing_field() {
        let err = MachineCalibration::from_json(r#"{"alpha": 1.0}"#).unwrap_err();
        assert!(err.contains("beta"), "got: {err}");
    }

    #[test]
    fn from_json_rejects_negative_constants() {
        let err = MachineCalibration::from_json(r#"{"alpha": 1.0, "beta": -2.0, "gamma": 0.0}"#)
            .unwrap_err();
        assert!(err.contains("beta"), "got: {err}");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn new_rejects_negative_constants() {
        MachineCalibration::new(1.0, -1.0, 0.0);
    }

    #[test]
    fn affine_fit_recovers_a_noiseless_line() {
        let pts: Vec<(f64, f64)> = (1..=8).map(|i| (i as f64, 0.25 + 1.5 * i as f64)).collect();
        let (a, b) = fit_affine(&pts);
        assert!((a - 0.25).abs() < 1e-9 && (b - 1.5).abs() < 1e-9);
    }

    #[test]
    fn fits_clamp_negative_physics_to_zero() {
        // A line with negative intercept: latency cannot be negative.
        let (a, _) = fit_affine(&[(1.0, 0.0), (2.0, 1.0)]);
        assert_eq!(a, 0.0);
        assert_eq!(fit_through_origin(&[(1.0, -2.0)]), 0.0);
    }

    #[test]
    fn degenerate_affine_fit_reports_the_mean() {
        let (a, b) = fit_affine(&[(3.0, 2.0), (3.0, 4.0)]);
        assert_eq!((a, b), (3.0, 0.0));
    }
}
