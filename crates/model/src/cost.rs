//! Cost algebra for the α-β-γ machine model.
//!
//! A [`Cost`] counts the three resources of the model along the critical
//! path of a (piece of a) parallel algorithm:
//!
//! * `messages` — how many point-to-point messages were on the critical
//!   path (each contributes one `α` latency term),
//! * `words` — how many words traversed the critical path (each
//!   contributes one `β` bandwidth term),
//! * `flops` — how many scalar arithmetic operations lie on the critical
//!   path (each contributes one `γ` term).
//!
//! Costs compose in two ways, mirroring the structure of parallel programs:
//! **sequential composition** is addition ([`Cost::then`], also `+`), and
//! **parallel composition** of independent work on disjoint processors is a
//! component-wise maximum ([`Cost::par`]) — "the communication cost is that
//! of the largest message" (§3.1).
//!
//! All counts are `f64`: bound formulas produce fractional words (e.g.
//! `(1 − 1/p)·w`), and sweeps go far beyond `u32` ranges. Exact integer
//! metering of the executed simulator lives in `pmm-simnet` and is converted
//! into a `Cost` only at reporting time.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

/// Resource counts along the critical path of a parallel computation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cost {
    /// Number of messages (latency, α) on the critical path.
    pub messages: f64,
    /// Number of words (bandwidth, β) on the critical path.
    pub words: f64,
    /// Number of scalar operations (compute, γ) on the critical path.
    pub flops: f64,
}

impl Cost {
    /// The zero cost (identity for both compositions).
    pub const ZERO: Cost = Cost { messages: 0.0, words: 0.0, flops: 0.0 };

    /// Cost of a single message of `w` words: one α plus `w` β.
    #[inline]
    pub fn message(w: f64) -> Cost {
        Cost { messages: 1.0, words: w, flops: 0.0 }
    }

    /// Cost of pure communication volume: `w` words, no latency terms.
    ///
    /// Used by bandwidth-only analyses (the paper sets α = 0, γ = 0 and
    /// studies the word count alone).
    #[inline]
    pub fn words(w: f64) -> Cost {
        Cost { messages: 0.0, words: w, flops: 0.0 }
    }

    /// Cost of pure local computation: `f` flops.
    #[inline]
    pub fn flops(f: f64) -> Cost {
        Cost { messages: 0.0, words: 0.0, flops: f }
    }

    /// Sequential composition: `self` followed by `next`.
    #[inline]
    #[must_use]
    pub fn then(self, next: Cost) -> Cost {
        self + next
    }

    /// Parallel composition: `self` and `other` run simultaneously on
    /// disjoint processors; the critical path takes the larger of each
    /// resource.
    ///
    /// Note this is component-wise and therefore an *upper bound* on the
    /// true critical path when one branch is message-heavy and the other
    /// word-heavy; for the homogeneous collectives used in this workspace
    /// (all branches run the same schedule) it is exact.
    #[inline]
    #[must_use]
    pub fn par(self, other: Cost) -> Cost {
        Cost {
            messages: self.messages.max(other.messages),
            words: self.words.max(other.words),
            flops: self.flops.max(other.flops),
        }
    }

    /// `n` repetitions of this cost in sequence.
    #[inline]
    #[must_use]
    pub fn repeat(self, n: f64) -> Cost {
        Cost { messages: self.messages * n, words: self.words * n, flops: self.flops * n }
    }

    /// True if every component is finite and non-negative.
    pub fn is_valid(&self) -> bool {
        let ok = |x: f64| x.is_finite() && x >= 0.0;
        ok(self.messages) && ok(self.words) && ok(self.flops)
    }
}

impl Add for Cost {
    type Output = Cost;
    #[inline]
    fn add(self, rhs: Cost) -> Cost {
        Cost {
            messages: self.messages + rhs.messages,
            words: self.words + rhs.words,
            flops: self.flops + rhs.flops,
        }
    }
}

impl AddAssign for Cost {
    #[inline]
    fn add_assign(&mut self, rhs: Cost) {
        *self = *self + rhs;
    }
}

impl Mul<f64> for Cost {
    type Output = Cost;
    #[inline]
    fn mul(self, rhs: f64) -> Cost {
        self.repeat(rhs)
    }
}

impl Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        iter.fold(Cost::ZERO, Add::add)
    }
}

/// The machine parameters (α, β, γ) of §3.1.
///
/// `α` is the per-message latency, `β` the per-word inverse bandwidth, and
/// `γ` the per-flop compute cost, all in the same (arbitrary) time unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineParams {
    /// Per-message latency cost.
    pub alpha: f64,
    /// Per-word bandwidth cost.
    pub beta: f64,
    /// Per-flop compute cost.
    pub gamma: f64,
}

impl MachineParams {
    /// Bandwidth-only accounting: α = γ = 0, β = 1.
    ///
    /// Under these parameters [`MachineParams::time`] equals the word count
    /// along the critical path — exactly the quantity bounded by Theorem 3.
    pub const BANDWIDTH_ONLY: MachineParams = MachineParams { alpha: 0.0, beta: 1.0, gamma: 0.0 };

    /// A representative HPC interconnect / node balance, loosely modeled on
    /// published `(α, β, γ)` for modern clusters: a message costs about
    /// 10⁴ flop-times, a word about 10 flop-times. Only ratios matter.
    pub const TYPICAL_CLUSTER: MachineParams =
        MachineParams { alpha: 1.0e4, beta: 10.0, gamma: 1.0 };

    /// Construct custom parameters. Panics on negative or non-finite input.
    pub fn new(alpha: f64, beta: f64, gamma: f64) -> MachineParams {
        assert!(
            alpha.is_finite() && beta.is_finite() && gamma.is_finite(),
            "machine parameters must be finite"
        );
        assert!(alpha >= 0.0 && beta >= 0.0 && gamma >= 0.0, "machine parameters must be >= 0");
        MachineParams { alpha, beta, gamma }
    }

    /// Time taken by `cost` on this machine: `α·messages + β·words + γ·flops`.
    #[inline]
    pub fn time(&self, cost: Cost) -> f64 {
        self.alpha * cost.messages + self.beta * cost.words + self.gamma * cost.flops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_identity_for_then_and_par() {
        let c = Cost { messages: 3.0, words: 100.0, flops: 42.0 };
        assert_eq!(c.then(Cost::ZERO), c);
        assert_eq!(Cost::ZERO.then(c), c);
        assert_eq!(c.par(Cost::ZERO), c);
        assert_eq!(Cost::ZERO.par(c), c);
    }

    #[test]
    fn sequential_composition_adds() {
        let a = Cost::message(10.0);
        let b = Cost::message(20.0);
        let c = a.then(b);
        assert_eq!(c.messages, 2.0);
        assert_eq!(c.words, 30.0);
    }

    #[test]
    fn parallel_composition_takes_max_componentwise() {
        let a = Cost { messages: 1.0, words: 50.0, flops: 0.0 };
        let b = Cost { messages: 4.0, words: 10.0, flops: 7.0 };
        let c = a.par(b);
        assert_eq!(c, Cost { messages: 4.0, words: 50.0, flops: 7.0 });
    }

    #[test]
    fn repeat_scales_linearly() {
        let c = Cost::message(8.0).repeat(5.0);
        assert_eq!(c.messages, 5.0);
        assert_eq!(c.words, 40.0);
    }

    #[test]
    fn sum_over_iterator() {
        let total: Cost = (1..=4).map(|i| Cost::words(i as f64)).sum();
        assert_eq!(total.words, 10.0);
        assert_eq!(total.messages, 0.0);
    }

    #[test]
    fn bandwidth_only_time_is_word_count() {
        let c = Cost { messages: 17.0, words: 123.0, flops: 99.0 };
        assert_eq!(MachineParams::BANDWIDTH_ONLY.time(c), 123.0);
    }

    #[test]
    fn typical_cluster_weighs_latency_heaviest_per_unit() {
        let p = MachineParams::TYPICAL_CLUSTER;
        assert!(p.time(Cost::message(0.0)) > p.time(Cost::words(1.0)));
        assert!(p.time(Cost::words(1.0)) > p.time(Cost::flops(1.0)));
    }

    #[test]
    fn validity_check() {
        assert!(Cost::message(5.0).is_valid());
        assert!(!Cost::words(f64::NAN).is_valid());
        assert!(!Cost::words(-1.0).is_valid());
    }

    #[test]
    #[should_panic(expected = "must be >= 0")]
    fn negative_params_rejected() {
        let _ = MachineParams::new(-1.0, 0.0, 0.0);
    }

    #[test]
    fn mul_matches_repeat() {
        let c = Cost { messages: 2.0, words: 3.0, flops: 4.0 };
        assert_eq!(c * 2.5, c.repeat(2.5));
    }
}
