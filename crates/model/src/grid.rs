//! Logical 3-dimensional processor grids (§5).
//!
//! Algorithm 1 organizes `P` processors into a `p1 × p2 × p3` grid with
//! `p1·p2·p3 = P`. Axis `i` of the grid is aligned with matrix dimension
//! `n_i` of the multiplication `(n1 × n2) · (n2 × n3)`:
//!
//! * matrix `A` lives on the `(1,2)`-face — it is partitioned across the
//!   grid's axes 0 and 1 and replicated (gathered) along axis 2;
//! * matrix `B` lives on the `(2,3)`-face — partitioned across axes 1 and 2,
//!   gathered along axis 0;
//! * matrix `C` lives on the `(1,3)`-face — partitioned across axes 0 and 2,
//!   reduce-scattered along axis 1.
//!
//! A **fiber** of the grid is the set of processors obtained by fixing two
//! coordinates and letting the third vary — exactly the communicator of one
//! collective in Algorithm 1 (the arrows of Fig. 1).

use std::fmt;

/// A coordinate in a 3D processor grid, `0`-based in each axis.
pub type Coord3 = [usize; 3];

/// A `p1 × p2 × p3` logical processor grid.
///
/// Ranks are assigned in row-major (lexicographic) order of coordinates:
/// rank = `c[0]·p2·p3 + c[1]·p3 + c[2]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Grid3 {
    dims: [usize; 3],
}

impl Grid3 {
    /// Create a grid; every dimension must be at least 1.
    pub fn new(p1: usize, p2: usize, p3: usize) -> Grid3 {
        assert!(p1 >= 1 && p2 >= 1 && p3 >= 1, "grid dimensions must be >= 1");
        Grid3 { dims: [p1, p2, p3] }
    }

    /// Grid from a dimension array.
    pub fn from_dims(dims: [usize; 3]) -> Grid3 {
        Grid3::new(dims[0], dims[1], dims[2])
    }

    /// The grid dimensions `[p1, p2, p3]`.
    #[inline]
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    /// Total number of processors `P = p1·p2·p3`.
    #[inline]
    pub fn size(&self) -> usize {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    /// How many of the three grid dimensions exceed 1 (3 ⇒ "3D grid",
    /// 2 ⇒ "2D", 1 ⇒ "1D", 0 ⇒ a single processor).
    pub fn effective_dimensionality(&self) -> usize {
        self.dims.iter().filter(|&&d| d > 1).count()
    }

    /// Rank of the processor at `coord` (row-major order).
    ///
    /// Panics if any coordinate is out of range.
    #[inline]
    pub fn rank_of(&self, coord: Coord3) -> usize {
        for a in 0..3 {
            assert!(coord[a] < self.dims[a], "coordinate {coord:?} out of grid {self}");
        }
        (coord[0] * self.dims[1] + coord[1]) * self.dims[2] + coord[2]
    }

    /// Coordinate of processor `rank`.
    ///
    /// Panics if `rank >= self.size()`.
    #[inline]
    pub fn coord_of(&self, rank: usize) -> Coord3 {
        assert!(rank < self.size(), "rank {rank} out of grid {self}");
        let c2 = rank % self.dims[2];
        let r = rank / self.dims[2];
        let c1 = r % self.dims[1];
        let c0 = r / self.dims[1];
        [c0, c1, c2]
    }

    /// Iterate over all coordinates in rank order.
    pub fn coords(&self) -> impl Iterator<Item = Coord3> + '_ {
        (0..self.size()).map(move |r| self.coord_of(r))
    }

    /// The ranks of the fiber through `coord` along `axis`: all processors
    /// agreeing with `coord` on the other two axes. The result has length
    /// `dims[axis]` and is sorted by the varying coordinate, so position
    /// `i` holds the processor whose `axis`-coordinate is `i`.
    pub fn fiber(&self, coord: Coord3, axis: usize) -> Vec<usize> {
        assert!(axis < 3, "axis must be 0, 1 or 2");
        (0..self.dims[axis])
            .map(|i| {
                let mut c = coord;
                c[axis] = i;
                self.rank_of(c)
            })
            .collect()
    }

    /// Index of `coord` within its own fiber along `axis` (just the
    /// coordinate on that axis).
    #[inline]
    pub fn fiber_index(&self, coord: Coord3, axis: usize) -> usize {
        coord[axis]
    }

    /// A stable color identifying the fiber through `coord` along `axis`:
    /// processors share a color iff they share a fiber. Useful as a
    /// communicator-split key.
    pub fn fiber_color(&self, coord: Coord3, axis: usize) -> usize {
        let mut c = coord;
        c[axis] = 0;
        self.rank_of(c)
    }

    /// All distinct fibers along `axis`, each a sorted rank list.
    pub fn fibers(&self, axis: usize) -> Vec<Vec<usize>> {
        assert!(axis < 3, "axis must be 0, 1 or 2");
        let (u, v) = match axis {
            0 => (1, 2),
            1 => (0, 2),
            _ => (0, 1),
        };
        let mut out = Vec::with_capacity(self.dims[u] * self.dims[v]);
        for cu in 0..self.dims[u] {
            for cv in 0..self.dims[v] {
                let mut c = [0usize; 3];
                c[u] = cu;
                c[v] = cv;
                out.push(self.fiber(c, axis));
            }
        }
        out
    }

    /// All ordered factorizations `[p1, p2, p3]` of `p` into three positive
    /// factors, in lexicographic order. The search space for the exact
    /// optimal-grid selection of §5.2.
    pub fn factorizations(p: usize) -> Vec<[usize; 3]> {
        assert!(p >= 1, "P must be >= 1");
        let mut out = Vec::new();
        for d1 in divisors(p) {
            let rest = p / d1;
            for d2 in divisors(rest) {
                out.push([d1, d2, rest / d2]);
            }
        }
        out.sort_unstable();
        out
    }
}

impl fmt::Display for Grid3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.dims[0], self.dims[1], self.dims[2])
    }
}

/// All positive divisors of `n`, sorted ascending.
pub fn divisors(n: usize) -> Vec<usize> {
    assert!(n >= 1, "divisors of zero are not defined here");
    let mut small = Vec::new();
    let mut large = Vec::new();
    let mut d = 1usize;
    while d.saturating_mul(d) <= n {
        if n.is_multiple_of(d) {
            small.push(d);
            if d != n / d {
                large.push(n / d);
            }
        }
        d += 1;
    }
    large.reverse();
    small.extend(large);
    small
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_coord_roundtrip() {
        let g = Grid3::new(3, 4, 5);
        assert_eq!(g.size(), 60);
        for r in 0..g.size() {
            assert_eq!(g.rank_of(g.coord_of(r)), r);
        }
    }

    #[test]
    fn ranks_are_row_major() {
        let g = Grid3::new(2, 3, 4);
        assert_eq!(g.rank_of([0, 0, 0]), 0);
        assert_eq!(g.rank_of([0, 0, 1]), 1);
        assert_eq!(g.rank_of([0, 1, 0]), 4);
        assert_eq!(g.rank_of([1, 0, 0]), 12);
        assert_eq!(g.rank_of([1, 2, 3]), 23);
    }

    #[test]
    #[should_panic(expected = "out of grid")]
    fn bad_coord_panics() {
        Grid3::new(2, 2, 2).rank_of([2, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "out of grid")]
    fn bad_rank_panics() {
        Grid3::new(2, 2, 2).coord_of(8);
    }

    #[test]
    fn fiber_varies_exactly_one_axis() {
        let g = Grid3::new(3, 3, 3);
        let c = [0, 2, 0]; // paper's processor (1,3,1) in 0-based coords
        for axis in 0..3 {
            let fiber = g.fiber(c, axis);
            assert_eq!(fiber.len(), 3);
            assert!(fiber.contains(&g.rank_of(c)));
            for (i, &r) in fiber.iter().enumerate() {
                let fc = g.coord_of(r);
                assert_eq!(fc[axis], i);
                for a in 0..3 {
                    if a != axis {
                        assert_eq!(fc[a], c[a]);
                    }
                }
            }
        }
    }

    #[test]
    fn fibers_partition_the_grid() {
        let g = Grid3::new(2, 3, 4);
        for axis in 0..3 {
            let fibers = g.fibers(axis);
            assert_eq!(fibers.len(), g.size() / g.dims()[axis]);
            let mut seen = vec![false; g.size()];
            for f in &fibers {
                assert_eq!(f.len(), g.dims()[axis]);
                for &r in f {
                    assert!(!seen[r], "rank {r} appears in two fibers");
                    seen[r] = true;
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn fiber_color_identifies_fibers() {
        let g = Grid3::new(2, 3, 4);
        for axis in 0..3 {
            for a in g.coords() {
                for b in g.coords() {
                    let same_fiber = (0..3).all(|x| x == axis || a[x] == b[x]);
                    let same_color = g.fiber_color(a, axis) == g.fiber_color(b, axis);
                    assert_eq!(same_fiber, same_color, "axis {axis}: {a:?} vs {b:?}");
                }
            }
        }
    }

    #[test]
    fn effective_dimensionality_counts_nontrivial_axes() {
        assert_eq!(Grid3::new(1, 1, 1).effective_dimensionality(), 0);
        assert_eq!(Grid3::new(3, 1, 1).effective_dimensionality(), 1);
        assert_eq!(Grid3::new(12, 3, 1).effective_dimensionality(), 2);
        assert_eq!(Grid3::new(32, 8, 2).effective_dimensionality(), 3);
    }

    #[test]
    fn divisors_basic() {
        assert_eq!(divisors(1), vec![1]);
        assert_eq!(divisors(12), vec![1, 2, 3, 4, 6, 12]);
        assert_eq!(divisors(36), vec![1, 2, 3, 4, 6, 9, 12, 18, 36]);
        assert_eq!(divisors(97), vec![1, 97]); // prime
    }

    #[test]
    fn factorizations_cover_and_multiply_back() {
        for p in [1usize, 2, 6, 12, 36, 64] {
            let fs = Grid3::factorizations(p);
            for f in &fs {
                assert_eq!(f[0] * f[1] * f[2], p);
            }
            // count = sum over divisors d1 of number of divisors of p/d1
            let expected: usize = divisors(p).iter().map(|&d| divisors(p / d).len()).sum();
            assert_eq!(fs.len(), expected);
            // distinct
            let mut sorted = fs.clone();
            sorted.dedup();
            assert_eq!(sorted.len(), fs.len());
        }
    }

    #[test]
    fn factorizations_of_36_contain_paper_grid() {
        // Fig. 2(b) uses grid 12x3x1 for P = 36.
        assert!(Grid3::factorizations(36).contains(&[12, 3, 1]));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Grid3::new(32, 8, 2).to_string(), "32x8x2");
    }
}
