//! # pmm-model — the α-β-γ parallel machine model
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace: the **cost algebra** of the α-β-γ distributed-memory machine
//! model (§3.1 of the paper), **3-dimensional logical processor grids** with
//! their fibers and planes (§5), and **matrix-multiplication dimension
//! triples** together with the paper's three-case classification
//! (Theorem 3).
//!
//! The machine model: `P` processors, each with local memory, connected by a
//! fully connected network of bidirectional links. A message of `w` words
//! costs `α + βw`; a flop costs `γ`. Costs are accounted along the critical
//! path: communication happening simultaneously between disjoint pairs of
//! processors overlaps, sequential phases add.
//!
//! Nothing in this crate allocates per-element data or performs
//! communication; it is pure bookkeeping, shared by the simulator
//! (`pmm-simnet`), the bound formulas (`pmm-core`) and the algorithms
//! (`pmm-algs`).

#![warn(missing_docs)]

pub mod calib;
pub mod cost;
pub mod dims;
pub mod grid;
pub mod predict;

pub use calib::{fit_affine, fit_through_origin, MachineCalibration};
pub use cost::{Cost, MachineParams};
pub use dims::{Case, MatMulDims, MatrixId, SortedDims};
pub use grid::{divisors, Coord3, Grid3};
pub use predict::{
    alg1_prediction, recovery_prediction, restore_words_total, run_words_total, Alg1Prediction,
    AlgPlan, AttemptPrediction, RecoveryPrediction,
};
