//! Small shared helpers for the collective implementations.

/// Prefix offsets of a `counts` array: `offsets(&[2,3,1]) == [0,2,5,6]`.
/// The last element is the total.
pub(crate) fn offsets(counts: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(counts.len() + 1);
    let mut acc = 0usize;
    out.push(0);
    for &c in counts {
        acc += c;
        out.push(acc);
    }
    out
}

/// Is `p` a power of two?
#[inline]
pub(crate) fn is_pow2(p: usize) -> bool {
    p != 0 && p & (p - 1) == 0
}

/// `⌈log2 p⌉` for `p ≥ 1`.
#[inline]
pub(crate) fn ceil_log2(p: usize) -> u32 {
    debug_assert!(p >= 1);
    usize::BITS - (p - 1).leading_zeros()
}

/// Element-wise `acc[i] += src[i]`; panics on length mismatch.
#[inline]
pub(crate) fn axpy1(acc: &mut [f64], src: &[f64]) {
    assert_eq!(acc.len(), src.len(), "reduction length mismatch");
    for (a, &s) in acc.iter_mut().zip(src) {
        *a += s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_accumulate() {
        assert_eq!(offsets(&[2, 3, 1]), vec![0, 2, 5, 6]);
        assert_eq!(offsets(&[]), vec![0]);
        assert_eq!(offsets(&[0, 0, 4]), vec![0, 0, 0, 4]);
    }

    #[test]
    fn pow2_detection() {
        assert!(is_pow2(1) && is_pow2(2) && is_pow2(64));
        assert!(!is_pow2(0) && !is_pow2(3) && !is_pow2(96));
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
    }

    #[test]
    fn axpy1_adds() {
        let mut a = vec![1.0, 2.0];
        axpy1(&mut a, &[10.0, 20.0]);
        assert_eq!(a, vec![11.0, 22.0]);
    }
}
