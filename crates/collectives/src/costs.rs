//! Closed-form cost models for every collective, matching the executed
//! implementations **exactly** (the unit tests of each collective assert
//! this).
//!
//! Conventions: `p` is the communicator size, `w` the per-rank block /
//! segment size in words (uniform case). Word counts are the per-rank
//! duplex volume, i.e. what the critical-path clock accrues under
//! [`MachineParams::BANDWIDTH_ONLY`](pmm_model::MachineParams::BANDWIDTH_ONLY);
//! for every algorithm here the per-rank sent and received volumes are
//! equal, so this is also the per-rank send volume.
//!
//! These are the formulas of Thakur et al. (2005) / Chan et al. (2007)
//! that §5.1 of the paper relies on: the bandwidth-optimal All-Gather and
//! Reduce-Scatter on `p` ranks cost `(1 − 1/p)·W` words, where `W = p·w`
//! is the gathered (resp. reduced) data volume per rank.

use pmm_model::Cost;

use crate::allgather::AllGatherAlgo;
use crate::allreduce::AllReduceAlgo;
use crate::alltoall::AllToAllAlgo;
use crate::bcast::BcastAlgo;
use crate::gather_scatter::{GatherAlgo, ScatterAlgo};
use crate::reduce::ReduceAlgo;
use crate::reduce_scatter::ReduceScatterAlgo;
use crate::util::{ceil_log2, is_pow2};

/// Cost of [`all_gather`](crate::all_gather) with per-rank block size `w`.
///
/// Ring: `(p−1)·α + (p−1)·w·β`. Recursive doubling (`p = 2^d`):
/// `d·α + (p−1)·w·β`. Both achieve the optimal `(1 − 1/p)·W` bandwidth.
pub fn all_gather_cost(algo: AllGatherAlgo, p: usize, w: usize) -> Cost {
    if p <= 1 {
        return Cost::ZERO;
    }
    let words = ((p - 1) * w) as f64;
    let messages = match algo {
        AllGatherAlgo::Ring => (p - 1) as f64,
        AllGatherAlgo::RecursiveDoubling => {
            assert!(is_pow2(p));
            ceil_log2(p) as f64
        }
        AllGatherAlgo::Bruck => ceil_log2(p) as f64,
        AllGatherAlgo::Auto => {
            if is_pow2(p) {
                ceil_log2(p) as f64
            } else {
                (p - 1) as f64
            }
        }
    };
    Cost { messages, words, flops: 0.0 }
}

/// Cost of [`reduce_scatter`](crate::reduce_scatter()) with per-rank segment
/// size `w` (input length `p·w`).
///
/// Same message/word counts as the matching All-Gather, plus
/// `(p−1)·w` reduction flops per rank.
pub fn reduce_scatter_cost(algo: ReduceScatterAlgo, p: usize, w: usize) -> Cost {
    if p <= 1 {
        return Cost::ZERO;
    }
    let ag = match algo {
        ReduceScatterAlgo::Ring => AllGatherAlgo::Ring,
        ReduceScatterAlgo::RecursiveHalving => AllGatherAlgo::RecursiveDoubling,
        ReduceScatterAlgo::Auto => AllGatherAlgo::Auto,
    };
    let mut c = all_gather_cost(ag, p, w);
    c.flops = ((p - 1) * w) as f64;
    c
}

/// Cost of [`bcast`](crate::bcast()) of `w` words from the root.
///
/// Binomial tree: `⌈log2 p⌉·(α + w·β)` (cost at the root; leaves pay one
/// message less — the model reports the critical path).
/// Scatter–All-Gather: `(⌈log2 p⌉ + p − 1)·α + 2·(1 − 1/p)·w·β`, requires
/// `p | w` in this implementation.
pub fn bcast_cost(algo: BcastAlgo, p: usize, w: usize) -> Cost {
    if p <= 1 {
        return Cost::ZERO;
    }
    match algo {
        BcastAlgo::Binomial => Cost {
            messages: ceil_log2(p) as f64,
            words: (ceil_log2(p) as usize * w) as f64,
            flops: 0.0,
        },
        BcastAlgo::ScatterAllGather => {
            assert!(w.is_multiple_of(p), "scatter-allgather bcast requires p | w");
            let chunk = w / p;
            let scatter = scatter_cost(ScatterAlgo::Binomial, p, chunk);
            let ag = all_gather_cost(AllGatherAlgo::Ring, p, chunk);
            scatter + ag
        }
        BcastAlgo::Auto => bcast_cost(BcastAlgo::Binomial, p, w),
    }
}

/// Cost of [`reduce`](crate::reduce()) of `w` words to the root (binomial):
/// critical path `⌈log2 p⌉·(α + w·β + w γ-flops)`.
pub fn reduce_cost(_algo: ReduceAlgo, p: usize, w: usize) -> Cost {
    if p <= 1 {
        return Cost::ZERO;
    }
    let d = ceil_log2(p) as f64;
    Cost { messages: d, words: d * w as f64, flops: d * w as f64 }
}

/// Cost of [`all_reduce`](crate::all_reduce) of `w` words.
///
/// Rabenseifner (reduce-scatter + all-gather), `p = 2^d`, `p | w`:
/// `2d·α + 2(1 − 1/p)·w·β + (1 − 1/p)·w` flops.
/// Recursive doubling: `d·(α + w·β + w flops)`.
pub fn all_reduce_cost(algo: AllReduceAlgo, p: usize, w: usize) -> Cost {
    if p <= 1 {
        return Cost::ZERO;
    }
    match algo {
        AllReduceAlgo::ReduceScatterAllGather => {
            assert!(w.is_multiple_of(p), "Rabenseifner all-reduce requires p | w");
            let chunk = w / p;
            reduce_scatter_cost(ReduceScatterAlgo::Auto, p, chunk)
                + all_gather_cost(AllGatherAlgo::Auto, p, chunk)
        }
        AllReduceAlgo::RecursiveDoubling => {
            assert!(is_pow2(p), "recursive-doubling all-reduce requires power-of-two p");
            let d = ceil_log2(p) as f64;
            Cost { messages: d, words: d * w as f64, flops: d * w as f64 }
        }
        AllReduceAlgo::Auto => {
            if is_pow2(p) && w.is_multiple_of(p) {
                all_reduce_cost(AllReduceAlgo::ReduceScatterAllGather, p, w)
            } else if is_pow2(p) {
                all_reduce_cost(AllReduceAlgo::RecursiveDoubling, p, w)
            } else {
                // ring reduce-scatter-v + ring all-gather-v with uneven
                // blocks; for the uniform-w cost model we report the p | w
                // case approximation.
                let chunk_words = w as f64 / p as f64;
                let words = 2.0 * (p as f64 - 1.0) * chunk_words;
                Cost {
                    messages: 2.0 * (p as f64 - 1.0),
                    words,
                    flops: (p as f64 - 1.0) * chunk_words,
                }
            }
        }
    }
}

/// Cost of [`gather_v`](crate::gather_v) with uniform block `w` (binomial,
/// cost at the root): `⌈log2 p⌉·α + (p−1)·w·β`.
pub fn gather_cost(_algo: GatherAlgo, p: usize, w: usize) -> Cost {
    if p <= 1 {
        return Cost::ZERO;
    }
    Cost { messages: ceil_log2(p) as f64, words: ((p - 1) * w) as f64, flops: 0.0 }
}

/// Cost of [`scatter_v`](crate::scatter_v) with uniform block `w`
/// (binomial, cost at the root): `⌈log2 p⌉·α + (p−1)·w·β`.
pub fn scatter_cost(_algo: ScatterAlgo, p: usize, w: usize) -> Cost {
    if p <= 1 {
        return Cost::ZERO;
    }
    Cost { messages: ceil_log2(p) as f64, words: ((p - 1) * w) as f64, flops: 0.0 }
}

/// Cost of [`all_to_all`](crate::all_to_all) with `w` words per
/// destination (pairwise exchange): `(p−1)·(α + w·β)`.
pub fn all_to_all_cost(_algo: AllToAllAlgo, p: usize, w: usize) -> Cost {
    if p <= 1 {
        return Cost::ZERO;
    }
    Cost { messages: (p - 1) as f64, words: ((p - 1) * w) as f64, flops: 0.0 }
}

/// Cost of [`scan`](crate::scan()) of `w` words per rank (Hillis–Steele
/// doubling): critical path `⌈log2 p⌉·(α + w·β)` plus `⌈log2 p⌉·w`
/// reduction flops.
///
/// The last rank attains this exactly — it receives in every one of the
/// `⌈log2 p⌉` rounds (and never sends); every other rank communicates in
/// a subset of the rounds, so this is the per-rank maximum the
/// critical-path clock accrues.
pub fn scan_cost(p: usize, w: usize) -> Cost {
    if p <= 1 {
        return Cost::ZERO;
    }
    let d = ceil_log2(p) as f64;
    Cost { messages: d, words: d * w as f64, flops: d * w as f64 }
}

/// Cost of [`exscan`](crate::exscan): identical to [`scan_cost`] — the
/// exclusive prefix is derived from the inclusive one locally, with no
/// extra communication.
pub fn exscan_cost(p: usize, w: usize) -> Cost {
    scan_cost(p, w)
}

/// Cost of [`barrier`](crate::barrier()) (dissemination): `⌈log2 p⌉·α`.
pub fn barrier_cost(p: usize) -> Cost {
    if p <= 1 {
        return Cost::ZERO;
    }
    Cost { messages: ceil_log2(p) as f64, words: 0.0, flops: 0.0 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allgather_bandwidth_is_optimal_fraction() {
        // (1 - 1/p)·W with W = p·w
        let c = all_gather_cost(AllGatherAlgo::Ring, 8, 10);
        assert_eq!(c.words, 70.0);
        let c = all_gather_cost(AllGatherAlgo::RecursiveDoubling, 8, 10);
        assert_eq!(c.words, 70.0);
        assert_eq!(c.messages, 3.0);
    }

    #[test]
    fn reduce_scatter_adds_flops() {
        let c = reduce_scatter_cost(ReduceScatterAlgo::Ring, 5, 8);
        assert_eq!(c.words, 32.0);
        assert_eq!(c.flops, 32.0);
        assert_eq!(c.messages, 4.0);
    }

    #[test]
    fn trivial_communicators_are_free() {
        assert_eq!(all_gather_cost(AllGatherAlgo::Auto, 1, 100), Cost::ZERO);
        assert_eq!(reduce_scatter_cost(ReduceScatterAlgo::Auto, 1, 100), Cost::ZERO);
        assert_eq!(bcast_cost(BcastAlgo::Auto, 1, 100), Cost::ZERO);
        assert_eq!(barrier_cost(1), Cost::ZERO);
    }

    #[test]
    fn bcast_binomial_scales_with_log_p() {
        let c = bcast_cost(BcastAlgo::Binomial, 16, 5);
        assert_eq!(c.messages, 4.0);
        assert_eq!(c.words, 20.0);
    }

    #[test]
    fn bcast_scatter_allgather_halves_bandwidth_for_large_w() {
        let c = bcast_cost(BcastAlgo::ScatterAllGather, 8, 800);
        // 2 (1-1/8) * 800 = 1400 < binomial 3*800 = 2400
        assert_eq!(c.words, 1400.0);
        assert!(c.words < bcast_cost(BcastAlgo::Binomial, 8, 800).words);
    }

    #[test]
    fn allreduce_rabenseifner_vs_recursive_doubling() {
        let rab = all_reduce_cost(AllReduceAlgo::ReduceScatterAllGather, 8, 80);
        let rd = all_reduce_cost(AllReduceAlgo::RecursiveDoubling, 8, 80);
        assert_eq!(rab.words, 140.0); // 2 (1-1/8)·80
        assert_eq!(rd.words, 240.0); // 3·80
        assert!(rab.words < rd.words);
        assert!(rab.messages > rd.messages);
    }

    #[test]
    fn scan_is_logarithmic_and_exscan_is_free_on_top() {
        let c = scan_cost(8, 5);
        assert_eq!(c.messages, 3.0);
        assert_eq!(c.words, 15.0);
        assert_eq!(c.flops, 15.0);
        // Non-power-of-two p rounds up.
        assert_eq!(scan_cost(5, 2).messages, 3.0);
        assert_eq!(exscan_cost(8, 5), scan_cost(8, 5));
        assert_eq!(scan_cost(1, 100), Cost::ZERO);
    }

    #[test]
    fn alltoall_pairwise() {
        let c = all_to_all_cost(AllToAllAlgo::Pairwise, 8, 3);
        assert_eq!(c.messages, 7.0);
        assert_eq!(c.words, 21.0);
    }
}
