//! All-Gather: after the call, every rank holds the concatenation of all
//! ranks' contributions, in communicator order.
//!
//! Two bandwidth-optimal algorithms are provided (Thakur et al. 2005):
//!
//! * **Ring** (bidirectional-exchange ring): `p − 1` steps, each rank
//!   forwards one block to its right neighbor while receiving from the
//!   left. Works for any `p` and any (possibly uneven, possibly empty)
//!   block sizes.
//! * **Recursive doubling**: `log2 p` steps for power-of-two `p`; at step
//!   `s` each rank exchanges everything it holds with its partner at XOR
//!   distance `2^s`.
//!
//! Both move exactly `W − w_me` words per rank, i.e. `(1 − 1/p)·W` for
//! uniform blocks, which is optimal.

use std::future::Future;
use std::panic::Location;

use pmm_simnet::{poll_now, CollectiveOp, Comm, Rank};

use crate::util::{is_pow2, offsets};

/// Algorithm selector for [`all_gather_v`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllGatherAlgo {
    /// Bidirectional ring; any `p`.
    Ring,
    /// Recursive doubling; requires power-of-two `p`.
    RecursiveDoubling,
    /// Bruck's algorithm: `⌈log2 p⌉` rounds for **any** `p` (each round
    /// sends everything held to rank `−2^s` and receives from `+2^s`),
    /// at the price of a final local rotation. Latency-optimal where the
    /// ring is bandwidth-optimal-but-slow to start.
    Bruck,
    /// Recursive doubling when `p` is a power of two, ring otherwise.
    Auto,
}

/// All-Gather with uniform block sizes.
///
/// Every rank contributes `mine` (all contributions must have equal
/// length); returns the concatenation in communicator order.
#[track_caller]
pub fn all_gather(rank: &mut Rank, comm: &Comm, mine: &[f64], algo: AllGatherAlgo) -> Vec<f64> {
    poll_now(all_gather_a(rank, comm, mine, algo))
}

/// Async form of [`all_gather`] (event-loop programs).
#[track_caller]
pub fn all_gather_a<'r>(
    rank: &'r mut Rank,
    comm: &'r Comm,
    mine: &'r [f64],
    algo: AllGatherAlgo,
) -> impl Future<Output = Vec<f64>> + 'r {
    let site = Location::caller();
    async move {
        let counts = vec![mine.len(); comm.size()];
        all_gather_v_at(rank, comm, mine, &counts, algo, site).await
    }
}

/// All-Gather with per-rank block sizes (`MPI_Allgatherv`).
///
/// `counts[i]` is the contribution length of member `i` and must be known
/// (and identical) at every rank; `counts[comm.index()] == mine.len()`.
#[track_caller]
pub fn all_gather_v(
    rank: &mut Rank,
    comm: &Comm,
    mine: &[f64],
    counts: &[usize],
    algo: AllGatherAlgo,
) -> Vec<f64> {
    poll_now(all_gather_v_a(rank, comm, mine, counts, algo))
}

/// Async form of [`all_gather_v`] (event-loop programs).
#[track_caller]
pub fn all_gather_v_a<'r>(
    rank: &'r mut Rank,
    comm: &'r Comm,
    mine: &'r [f64],
    counts: &'r [usize],
    algo: AllGatherAlgo,
) -> impl Future<Output = Vec<f64>> + 'r {
    all_gather_v_at(rank, comm, mine, counts, algo, Location::caller())
}

pub(crate) async fn all_gather_v_at(
    rank: &mut Rank,
    comm: &Comm,
    mine: &[f64],
    counts: &[usize],
    algo: AllGatherAlgo,
    site: &'static Location<'static>,
) -> Vec<f64> {
    let p = comm.size();
    assert_eq!(counts.len(), p, "counts length must equal communicator size");
    assert_eq!(counts[comm.index()], mine.len(), "own count disagrees with contribution");
    rank.collective_begin_at(comm, CollectiveOp::AllGather, mine.len() as u64, site).await;
    if p == 1 {
        return mine.to_vec();
    }
    match algo {
        AllGatherAlgo::Ring => ring(rank, comm, mine, counts).await,
        AllGatherAlgo::RecursiveDoubling => {
            assert!(is_pow2(p), "recursive doubling requires power-of-two communicator");
            recursive_doubling(rank, comm, mine, counts).await
        }
        AllGatherAlgo::Bruck => bruck(rank, comm, mine, counts).await,
        AllGatherAlgo::Auto => {
            if is_pow2(p) {
                recursive_doubling(rank, comm, mine, counts).await
            } else {
                ring(rank, comm, mine, counts).await
            }
        }
    }
}

/// Bruck's all-gather: rank `r` accumulates blocks in *relative* order
/// `r, r+1, r+2, …` (mod `p`); at step `s` it sends its current prefix of
/// `min(2^s, p − 2^s)` blocks to `r − 2^s` and receives the next blocks
/// from `r + 2^s`. `⌈log2 p⌉` rounds for any `p`; moves the same
/// `W − w_me` words as the ring.
async fn bruck(rank: &mut Rank, comm: &Comm, mine: &[f64], counts: &[usize]) -> Vec<f64> {
    let p = comm.size();
    let me = comm.index();
    // Blocks held, in relative order starting at my own block.
    let mut have: Vec<Vec<f64>> = Vec::with_capacity(p);
    have.push(mine.to_vec());

    let mut dist = 1usize;
    while dist < p {
        // We hold `have.len() = min(2^s, p)` blocks and need `p − have.len()`
        // more; this round provides up to `dist` of them. The partner at
        // `me − dist` holds blocks `me−dist … me−dist+have.len()−1` and is
        // missing our prefix next, so the payload is our first
        // `n_this_round` blocks.
        let n_this_round = (p - have.len()).min(dist);
        let payload: Vec<f64> = have[..n_this_round].iter().flatten().copied().collect();
        let to = (me + p - dist) % p;
        let from = (me + dist) % p;
        let msg = rank.exchange_a(comm, to, from, &payload).await;
        // Received: blocks (me + dist), (me + dist + 1), … in relative
        // order — split by their global counts.
        let mut off = 0usize;
        for i in 0..n_this_round {
            let owner = (me + dist + i) % p;
            let len = counts[owner];
            have.push(msg.payload[off..off + len].to_vec());
            off += len;
        }
        assert_eq!(off, msg.payload.len(), "Bruck round size mismatch");
        dist <<= 1;
    }

    // Local rotation into absolute block order.
    let off = offsets(counts);
    let mut out = vec![0.0f64; off[p]];
    for (i, block) in have.into_iter().enumerate() {
        let owner = (me + i) % p;
        out[off[owner]..off[owner + 1]].copy_from_slice(&block);
    }
    out
}

async fn ring(rank: &mut Rank, comm: &Comm, mine: &[f64], counts: &[usize]) -> Vec<f64> {
    let p = comm.size();
    let me = comm.index();
    let off = offsets(counts);
    let total = off[p];
    let mut out = vec![0.0f64; total];
    out[off[me]..off[me + 1]].copy_from_slice(mine);

    let right = (me + 1) % p;
    let left = (me + p - 1) % p;
    // At step s we forward block (me − s mod p) rightward and receive block
    // (me − 1 − s mod p) from the left.
    for s in 0..p - 1 {
        let send_block = (me + p - s) % p;
        let recv_block = (me + p - 1 - s) % p;
        let payload = out[off[send_block]..off[send_block + 1]].to_vec();
        let msg = rank.exchange_a(comm, right, left, &payload).await;
        assert_eq!(msg.payload.len(), counts[recv_block], "ring block size mismatch");
        out[off[recv_block]..off[recv_block + 1]].copy_from_slice(&msg.payload);
    }
    out
}

async fn recursive_doubling(
    rank: &mut Rank,
    comm: &Comm,
    mine: &[f64],
    counts: &[usize],
) -> Vec<f64> {
    let p = comm.size();
    let me = comm.index();
    let off = offsets(counts);
    let total = off[p];
    let mut out = vec![0.0f64; total];
    out[off[me]..off[me + 1]].copy_from_slice(mine);

    let mut mask = 1usize;
    while mask < p {
        let partner = me ^ mask;
        // After s steps each rank holds the contiguous block group
        // [⌊me/mask⌋·mask, ⌊me/mask⌋·mask + mask).
        let g_mine = (me / mask) * mask;
        let g_theirs = (partner / mask) * mask;
        let payload = out[off[g_mine]..off[g_mine + mask]].to_vec();
        let msg = rank.exchange_a(comm, partner, partner, &payload).await;
        let expect: usize = off[g_theirs + mask] - off[g_theirs];
        assert_eq!(msg.payload.len(), expect, "recursive-doubling block size mismatch");
        out[off[g_theirs]..off[g_theirs + mask]].copy_from_slice(&msg.payload);
        mask <<= 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs;
    use pmm_simnet::{MachineParams, World};

    fn expected(counts: &[usize]) -> Vec<f64> {
        let mut v = Vec::new();
        for (i, &c) in counts.iter().enumerate() {
            v.extend(std::iter::repeat_n(i as f64 + 0.5, c));
        }
        v
    }

    fn check(p: usize, counts: Vec<usize>, algo: AllGatherAlgo) {
        let want = expected(&counts);
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(|rank| {
            let comm = rank.world_comm();
            let mine = vec![rank.world_rank() as f64 + 0.5; counts[rank.world_rank()]];
            all_gather_v(rank, &comm, &mine, &counts, algo)
        });
        for (r, v) in out.values.iter().enumerate() {
            assert_eq!(v, &want, "rank {r} gathered wrong data (p={p}, {algo:?})");
        }
    }

    #[test]
    fn ring_uniform_various_p() {
        for p in [2, 3, 4, 5, 7, 8] {
            check(p, vec![3; p], AllGatherAlgo::Ring);
        }
    }

    #[test]
    fn recursive_doubling_uniform_pow2() {
        for p in [2, 4, 8, 16] {
            check(p, vec![2; p], AllGatherAlgo::RecursiveDoubling);
        }
    }

    #[test]
    fn uneven_and_empty_blocks() {
        check(5, vec![0, 3, 1, 0, 4], AllGatherAlgo::Ring);
        check(4, vec![2, 0, 5, 1], AllGatherAlgo::RecursiveDoubling);
    }

    #[test]
    fn auto_picks_valid_algorithm() {
        check(6, vec![1; 6], AllGatherAlgo::Auto);
        check(8, vec![1; 8], AllGatherAlgo::Auto);
    }

    #[test]
    fn bruck_any_p_and_uneven_blocks() {
        for p in [2usize, 3, 5, 6, 7, 8, 13] {
            check(p, vec![2; p], AllGatherAlgo::Bruck);
        }
        check(5, vec![0, 3, 1, 0, 4], AllGatherAlgo::Bruck);
        check(7, vec![1, 2, 0, 3, 1, 0, 2], AllGatherAlgo::Bruck);
    }

    #[test]
    fn bruck_latency_is_ceil_log2_for_any_p() {
        let params = MachineParams::new(1.0, 0.0, 0.0);
        for (p, want) in [(5usize, 3.0), (6, 3.0), (7, 3.0), (8, 3.0), (9, 4.0)] {
            let out = World::new(p, params).run(move |rank| {
                let comm = rank.world_comm();
                all_gather(rank, &comm, &[1.0], AllGatherAlgo::Bruck);
                rank.time()
            });
            for r in 0..p {
                assert_eq!(out.values[r], want, "p={p} rank {r}");
            }
        }
    }

    #[test]
    fn bruck_moves_same_words_as_ring() {
        // Both send exactly W − w_me per rank (uniform case): (p−1)·w.
        let (p, w) = (6usize, 5usize);
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let comm = rank.world_comm();
            all_gather(rank, &comm, &vec![1.0; w], AllGatherAlgo::Bruck);
            rank.meter().words_sent
        });
        for &sent in &out.values {
            assert_eq!(sent as usize, (p - 1) * w);
        }
    }

    #[test]
    fn single_rank_is_identity() {
        let out = World::new(1, MachineParams::BANDWIDTH_ONLY).run(|rank| {
            let comm = rank.world_comm();
            all_gather(rank, &comm, &[9.0, 8.0], AllGatherAlgo::Auto)
        });
        assert_eq!(out.values[0], vec![9.0, 8.0]);
        assert_eq!(out.reports[0].meter.words_sent, 0);
    }

    #[test]
    fn bandwidth_matches_cost_model_ring() {
        let (p, w) = (6usize, 10usize);
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(|rank| {
            let comm = rank.world_comm();
            let mine = vec![1.0; w];
            all_gather(rank, &comm, &mine, AllGatherAlgo::Ring);
            rank.time()
        });
        let model = costs::all_gather_cost(AllGatherAlgo::Ring, p, w);
        // words moved per rank: (p-1) * w, both directions; duplex clock = (p-1)*w
        for r in 0..p {
            assert_eq!(out.reports[r].meter.words_sent, ((p - 1) * w) as u64);
            assert_eq!(out.reports[r].meter.words_recv, ((p - 1) * w) as u64);
            assert_eq!(out.values[r], model.words);
        }
        assert_eq!(model.words, ((p - 1) * w) as f64);
    }

    #[test]
    fn bandwidth_matches_cost_model_recursive_doubling() {
        let (p, w) = (8usize, 5usize);
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(|rank| {
            let comm = rank.world_comm();
            let mine = vec![1.0; w];
            all_gather(rank, &comm, &mine, AllGatherAlgo::RecursiveDoubling);
            rank.time()
        });
        let model = costs::all_gather_cost(AllGatherAlgo::RecursiveDoubling, p, w);
        for r in 0..p {
            assert_eq!(out.values[r], model.words, "clock vs model at rank {r}");
            assert_eq!(out.reports[r].meter.words_sent, model.words as u64);
        }
        // (1 - 1/p) * W where W = p*w
        assert_eq!(model.words, ((p - 1) * w) as f64);
    }

    #[test]
    fn latency_matches_cost_model() {
        let params = MachineParams::new(1.0, 0.0, 0.0); // count messages only
        for (algo, p) in [(AllGatherAlgo::Ring, 6), (AllGatherAlgo::RecursiveDoubling, 8)] {
            let out = World::new(p, params).run(move |rank| {
                let comm = rank.world_comm();
                all_gather(rank, &comm, &[1.0, 2.0], algo);
                rank.time()
            });
            let model = costs::all_gather_cost(algo, p, 2);
            for r in 0..p {
                assert_eq!(out.values[r], model.messages, "{algo:?} latency at rank {r}");
            }
        }
    }

    #[test]
    fn works_on_subcommunicators() {
        // Split 6 ranks into two groups of 3 and all-gather within groups.
        let out = World::new(6, MachineParams::BANDWIDTH_ONLY).run(|rank| {
            let wc = rank.world_comm();
            let color = (rank.world_rank() % 2) as i64;
            let sub = rank.split(&wc, color, rank.world_rank() as i64).unwrap();
            all_gather(rank, &sub, &[rank.world_rank() as f64], AllGatherAlgo::Ring)
        });
        assert_eq!(out.values[0], vec![0.0, 2.0, 4.0]);
        assert_eq!(out.values[3], vec![1.0, 3.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn recursive_doubling_rejects_non_pow2() {
        World::new(3, MachineParams::BANDWIDTH_ONLY).run(|rank| {
            let comm = rank.world_comm();
            all_gather(rank, &comm, &[0.0], AllGatherAlgo::RecursiveDoubling);
        });
    }
}
