//! Reduce: element-wise sum of every rank's buffer, delivered at the root.

use std::future::Future;
use std::panic::Location;

use pmm_simnet::{poll_now, CollectiveOp, Comm, Rank};

use crate::util::axpy1;

/// Algorithm selector for [`reduce`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceAlgo {
    /// Binomial tree (`⌈log2 p⌉` rounds).
    Binomial,
}

/// Sum-reduce `data` to member `root`. Every rank contributes a buffer of
/// the same length; the root returns the element-wise sum, others return
/// an empty vector. Reduction additions are metered as flops.
#[track_caller]
pub fn reduce(
    rank: &mut Rank,
    comm: &Comm,
    data: &[f64],
    root: usize,
    algo: ReduceAlgo,
) -> Vec<f64> {
    poll_now(reduce_a(rank, comm, data, root, algo))
}

/// Async form of [`reduce`] (event-loop programs).
#[track_caller]
pub fn reduce_a<'r>(
    rank: &'r mut Rank,
    comm: &'r Comm,
    data: &'r [f64],
    root: usize,
    _algo: ReduceAlgo,
) -> impl Future<Output = Vec<f64>> + 'r {
    let site = Location::caller();
    async move {
        let p = comm.size();
        assert!(root < p, "root out of communicator");
        rank.collective_begin_at(comm, CollectiveOp::Reduce, data.len() as u64, site).await;
        if p == 1 {
            return data.to_vec();
        }
        let me = comm.index();
        let vrank = (me + p - root) % p;
        let unvrank = |v: usize| (v + root) % p;

        let mut acc = data.to_vec();
        let mut mask = 1usize;
        while mask < p {
            if vrank & mask != 0 {
                let parent = unvrank(vrank - mask);
                rank.send_a(comm, parent, &acc).await;
                return Vec::new();
            }
            let child_v = vrank | mask;
            if child_v < p {
                let msg = rank.recv_a(comm, unvrank(child_v)).await;
                assert_eq!(msg.payload.len(), acc.len(), "reduce length mismatch");
                axpy1(&mut acc, &msg.payload);
                rank.compute(acc.len() as f64);
            }
            mask <<= 1;
        }
        debug_assert_eq!(me, root);
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs;
    use pmm_simnet::{MachineParams, World};

    fn check(p: usize, root: usize, len: usize) {
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let comm = rank.world_comm();
            let data: Vec<f64> =
                (0..len).map(|e| (rank.world_rank() + 1) as f64 * (e + 1) as f64).collect();
            reduce(rank, &comm, &data, root, ReduceAlgo::Binomial)
        });
        let s = (p * (p + 1) / 2) as f64;
        let want: Vec<f64> = (0..len).map(|e| s * (e + 1) as f64).collect();
        for (r, v) in out.values.iter().enumerate() {
            if r == root {
                assert_eq!(v, &want, "root sum (p={p}, root={root})");
            } else {
                assert!(v.is_empty());
            }
        }
    }

    #[test]
    fn various_p_and_roots() {
        for p in [2usize, 3, 4, 5, 8, 9] {
            for root in [0, p - 1, p / 2] {
                check(p, root, 4);
            }
        }
    }

    #[test]
    fn root_critical_path_matches_model_for_pow2() {
        let (p, w) = (8usize, 6usize);
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let comm = rank.world_comm();
            reduce(rank, &comm, &vec![1.0; w], 0, ReduceAlgo::Binomial);
            rank.time()
        });
        let model = costs::reduce_cost(ReduceAlgo::Binomial, p, w);
        // With α=γ=0 the root's clock is log2(p)·w.
        assert_eq!(out.values[0], model.words);
        assert_eq!(out.reports[0].meter.words_recv as f64, model.words);
    }

    #[test]
    fn flops_are_metered() {
        let (p, w) = (4usize, 10usize);
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let comm = rank.world_comm();
            reduce(rank, &comm, &vec![1.0; w], 0, ReduceAlgo::Binomial);
            rank.meter().flops
        });
        // Total additions across ranks: (p-1)·w.
        let total: f64 = out.values.iter().sum();
        assert_eq!(total, ((p - 1) * w) as f64);
    }

    #[test]
    fn single_rank_identity() {
        let out = World::new(1, MachineParams::BANDWIDTH_ONLY).run(|rank| {
            let comm = rank.world_comm();
            reduce(rank, &comm, &[2.0, 4.0], 0, ReduceAlgo::Binomial)
        });
        assert_eq!(out.values[0], vec![2.0, 4.0]);
    }
}
