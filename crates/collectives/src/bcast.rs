//! Broadcast: the root's buffer is replicated to every rank.

use std::future::Future;
use std::panic::Location;

use pmm_simnet::{poll_now, CollectiveOp, Comm, Rank};

use crate::allgather::{all_gather_v_a, AllGatherAlgo};
use crate::gather_scatter::{scatter_v_a, ScatterAlgo};

/// Algorithm selector for [`bcast`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BcastAlgo {
    /// Binomial tree: `⌈log2 p⌉` rounds, good for small messages.
    Binomial,
    /// Scatter followed by ring All-Gather (van de Geijn): near-optimal
    /// bandwidth `2(1 − 1/p)·w` for large messages. Requires `p | w`.
    ScatterAllGather,
    /// Binomial (latency-optimal default).
    Auto,
}

/// Broadcast `data` from member `root`.
///
/// On the root, `data` must hold the message; on other ranks `data` is
/// ignored (pass `&[]`). Returns the broadcast message on every rank.
#[track_caller]
pub fn bcast(rank: &mut Rank, comm: &Comm, data: &[f64], root: usize, algo: BcastAlgo) -> Vec<f64> {
    poll_now(bcast_a(rank, comm, data, root, algo))
}

/// Async form of [`bcast`] (event-loop programs).
#[track_caller]
pub fn bcast_a<'r>(
    rank: &'r mut Rank,
    comm: &'r Comm,
    data: &'r [f64],
    root: usize,
    algo: BcastAlgo,
) -> impl Future<Output = Vec<f64>> + 'r {
    let site = Location::caller();
    async move {
        let p = comm.size();
        assert!(root < p, "root out of communicator");
        rank.collective_begin_at(comm, CollectiveOp::Bcast, data.len() as u64, site).await;
        if p == 1 {
            return data.to_vec();
        }
        match algo {
            BcastAlgo::Binomial | BcastAlgo::Auto => binomial(rank, comm, data, root).await,
            BcastAlgo::ScatterAllGather => scatter_allgather(rank, comm, data, root).await,
        }
    }
}

async fn binomial(rank: &mut Rank, comm: &Comm, data: &[f64], root: usize) -> Vec<f64> {
    let p = comm.size();
    let me = comm.index();
    let vrank = (me + p - root) % p;
    let unvrank = |v: usize| (v + root) % p;

    let mut buf: Vec<f64> = if me == root { data.to_vec() } else { Vec::new() };

    // Receive phase: wait for the message from the subtree parent.
    let mut mask = 1usize;
    while mask < p {
        if vrank & mask != 0 {
            let src = unvrank(vrank - mask);
            buf = rank.recv_a(comm, src).await.payload;
            break;
        }
        mask <<= 1;
    }
    // Send phase: forward to children at decreasing distances.
    mask >>= 1;
    while mask > 0 {
        if vrank + mask < p {
            let dst = unvrank(vrank + mask);
            rank.send_a(comm, dst, &buf).await;
        }
        mask >>= 1;
    }
    buf
}

async fn scatter_allgather(rank: &mut Rank, comm: &Comm, data: &[f64], root: usize) -> Vec<f64> {
    let p = comm.size();
    // MPI convention: the message length is collective knowledge, so every
    // rank must pass a `data` slice of the same length (contents only
    // matter at the root).
    assert!(
        data.len().is_multiple_of(p),
        "scatter-allgather bcast requires p | message length (len {} , p {p})",
        data.len()
    );
    let chunk = data.len() / p;
    let counts = vec![chunk; p];
    let mine = scatter_v_a(rank, comm, data, &counts, root, ScatterAlgo::Binomial).await;
    debug_assert_eq!(mine.len(), chunk);
    // Ring all-gather reassembles the full message everywhere. Blocks are
    // indexed by communicator order, matching the scatter.
    all_gather_v_a(rank, comm, &mine, &counts, AllGatherAlgo::Ring).await
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs;
    use pmm_simnet::{MachineParams, World};

    fn check(p: usize, root: usize, len: usize, algo: BcastAlgo) {
        let msg: Vec<f64> = (0..len).map(|i| i as f64 * 1.5).collect();
        let want = msg.clone();
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(|rank| {
            let comm = rank.world_comm();
            let data = if rank.world_rank() == root { msg.clone() } else { vec![0.0; len] };
            bcast(rank, &comm, &data, root, algo)
        });
        for (r, v) in out.values.iter().enumerate() {
            assert_eq!(v, &want, "rank {r} (p={p}, root={root}, {algo:?})");
        }
    }

    #[test]
    fn binomial_various_p_and_roots() {
        for p in [2, 3, 5, 8] {
            for root in [0, p - 1, p / 2] {
                check(p, root, 6, BcastAlgo::Binomial);
            }
        }
    }

    #[test]
    fn scatter_allgather_various() {
        check(4, 0, 8, BcastAlgo::ScatterAllGather);
        check(4, 2, 12, BcastAlgo::ScatterAllGather);
        check(6, 1, 18, BcastAlgo::ScatterAllGather);
    }

    #[test]
    fn root_cost_matches_binomial_model() {
        let (p, w) = (8usize, 10usize);
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let comm = rank.world_comm();
            let data = vec![1.0; w];
            bcast(rank, &comm, &data, 0, BcastAlgo::Binomial);
            rank.time()
        });
        let model = costs::bcast_cost(BcastAlgo::Binomial, p, w);
        // The root sends log2 p messages of w words; its clock is the model.
        assert_eq!(out.values[0], model.words);
        assert_eq!(out.reports[0].meter.words_sent as f64, model.words);
        // Critical path over all ranks equals the root's cost for binomial.
        assert_eq!(out.critical_path_time(), model.words);
    }

    #[test]
    fn scatter_allgather_beats_binomial_bandwidth() {
        let (p, w) = (8usize, 64usize);
        let run = |algo: BcastAlgo| {
            World::new(p, MachineParams::BANDWIDTH_ONLY)
                .run(move |rank| {
                    let comm = rank.world_comm();
                    let data = vec![1.0; w];
                    bcast(rank, &comm, &data, 0, algo);
                })
                .critical_path_time()
        };
        let t_sag = run(BcastAlgo::ScatterAllGather);
        let t_bin = run(BcastAlgo::Binomial);
        assert!(t_sag < t_bin, "SAG {t_sag} should beat binomial {t_bin} at large w");
    }

    #[test]
    fn single_rank_identity() {
        let out = World::new(1, MachineParams::BANDWIDTH_ONLY).run(|rank| {
            let comm = rank.world_comm();
            bcast(rank, &comm, &[5.0], 0, BcastAlgo::Auto)
        });
        assert_eq!(out.values[0], vec![5.0]);
    }
}
