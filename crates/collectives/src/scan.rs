//! Scan (inclusive prefix sum) and Exscan (exclusive) — completing the
//! standard collective family. Used, e.g., to compute chunk offsets of
//! irregular distributions without a gather.
//!
//! Algorithm: the classic binomial/doubling prefix scheme (Hillis–Steele
//! over ranks): at step `s`, rank `r` receives from `r − 2^s` (if any) and
//! sends to `r + 2^s` (if any); `⌈log2 p⌉` rounds, `w` words each.

use std::future::Future;
use std::panic::Location;

use pmm_simnet::{poll_now, CollectiveOp, Comm, Rank};

use crate::util::axpy1;

/// Inclusive prefix sum: rank `r` returns the element-wise sum of the
/// contributions of ranks `0..=r`.
#[track_caller]
pub fn scan(rank: &mut Rank, comm: &Comm, data: &[f64]) -> Vec<f64> {
    poll_now(scan_a(rank, comm, data))
}

/// Async form of [`scan`] (event-loop programs).
#[track_caller]
pub fn scan_a<'r>(
    rank: &'r mut Rank,
    comm: &'r Comm,
    data: &'r [f64],
) -> impl Future<Output = Vec<f64>> + 'r {
    scan_at(rank, comm, data, Location::caller())
}

async fn scan_at(
    rank: &mut Rank,
    comm: &Comm,
    data: &[f64],
    site: &'static Location<'static>,
) -> Vec<f64> {
    let p = comm.size();
    rank.collective_begin_at(comm, CollectiveOp::Scan, data.len() as u64, site).await;
    let me = comm.index();
    let mut acc = data.to_vec();
    let mut dist = 1usize;
    while dist < p {
        // Post before receiving: the outgoing value must be this round's
        // *input* (the window sum of the previous round), not the updated
        // one. Sends are non-blocking, so posting first is safe.
        let send_to = me + dist;
        if send_to < p {
            rank.send_a(comm, send_to, &acc).await;
        }
        if me >= dist {
            let msg = rank.recv_a(comm, me - dist).await;
            assert_eq!(msg.payload.len(), acc.len(), "scan length mismatch");
            axpy1(&mut acc, &msg.payload);
            rank.compute(acc.len() as f64);
        }
        dist <<= 1;
    }
    acc
}

/// Exclusive prefix sum: rank `r` returns the element-wise sum of the
/// contributions of ranks `0..r` (zeros on rank 0).
#[track_caller]
pub fn exscan(rank: &mut Rank, comm: &Comm, data: &[f64]) -> Vec<f64> {
    poll_now(exscan_a(rank, comm, data))
}

/// Async form of [`exscan`] (event-loop programs).
#[track_caller]
pub fn exscan_a<'r>(
    rank: &'r mut Rank,
    comm: &'r Comm,
    data: &'r [f64],
) -> impl Future<Output = Vec<f64>> + 'r {
    let site = Location::caller();
    async move {
        rank.collective_begin_at(comm, CollectiveOp::ExScan, data.len() as u64, site).await;
        let incl = scan_at(rank, comm, data, site).await;
        // exclusive = inclusive − own contribution (exact for the integer-
        // valued data used throughout; no extra communication).
        incl.iter().zip(data).map(|(s, d)| s - d).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmm_simnet::{MachineParams, World};

    fn contribution(r: usize, w: usize) -> Vec<f64> {
        (0..w).map(|e| (r * 10 + e) as f64).collect()
    }

    fn check_scan(p: usize, w: usize) {
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let comm = rank.world_comm();
            let mine = contribution(rank.world_rank(), w);
            scan(rank, &comm, &mine)
        });
        for (r, v) in out.values.iter().enumerate() {
            let want: Vec<f64> =
                (0..w).map(|e| (0..=r).map(|q| (q * 10 + e) as f64).sum()).collect();
            assert_eq!(v, &want, "rank {r} (p={p})");
        }
    }

    #[test]
    fn scan_various_p() {
        for p in [1usize, 2, 3, 5, 8, 13] {
            check_scan(p, 3);
        }
    }

    #[test]
    fn exscan_shifts_by_one_rank() {
        let p = 6usize;
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let comm = rank.world_comm();
            let mine = contribution(rank.world_rank(), 2);
            exscan(rank, &comm, &mine)
        });
        assert_eq!(out.values[0], vec![0.0, 0.0]);
        for r in 1..p {
            let want: Vec<f64> =
                (0..2).map(|e| (0..r).map(|q| (q * 10 + e) as f64).sum()).collect();
            assert_eq!(out.values[r], want, "rank {r}");
        }
    }

    #[test]
    fn scan_computes_chunk_offsets() {
        // The motivating use: each rank contributes its chunk length; the
        // exclusive scan is its offset.
        let lens = [3usize, 0, 5, 2, 7];
        let out = World::new(5, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let comm = rank.world_comm();
            exscan(rank, &comm, &[lens[rank.world_rank()] as f64])[0] as usize
        });
        assert_eq!(out.values, vec![0, 3, 3, 8, 10]);
    }

    #[test]
    fn scan_latency_is_logarithmic() {
        // ⌈log2 p⌉ rounds; under the one-sided send/recv cost model a rank
        // pays at most 2α per round (its send plus its receive), so the
        // critical path lies in [⌈log2 p⌉, 2⌈log2 p⌉] — logarithmic, not
        // linear like a naive chain scan.
        let params = MachineParams::new(1.0, 0.0, 0.0);
        for (p, rounds) in [(8usize, 3.0), (16, 4.0), (32, 5.0)] {
            let out = World::new(p, params).run(|rank| {
                let comm = rank.world_comm();
                scan(rank, &comm, &[1.0]);
                rank.time()
            });
            let t = out.critical_path_time();
            assert!(t >= rounds && t <= 2.0 * rounds + 1e-9, "p={p}: {t}");
        }
    }

    #[test]
    fn single_rank_identity() {
        let out = World::new(1, MachineParams::BANDWIDTH_ONLY).run(|rank| {
            let comm = rank.world_comm();
            scan(rank, &comm, &[4.0, 5.0])
        });
        assert_eq!(out.values[0], vec![4.0, 5.0]);
    }
}
