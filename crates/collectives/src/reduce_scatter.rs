//! Reduce-Scatter: every rank contributes a full-length vector; afterwards
//! rank `i` holds segment `i` of the element-wise sum over all
//! contributions.
//!
//! This is the collective that assembles the output matrix `C` in
//! Algorithm 1 (each processor in a fiber holds a partial product `D` of
//! the full `C`-block; the sums end up evenly distributed).
//!
//! Bandwidth-optimal algorithms: **ring** (any `p`, any segment sizes) and
//! **recursive halving** (power-of-two `p`), both moving `(1 − 1/p)·W`
//! words per rank for uniform segments and performing the same number of
//! additions.

use std::future::Future;
use std::panic::Location;

use pmm_simnet::{poll_now, CollectiveOp, Comm, Rank};

use crate::util::{axpy1, is_pow2, offsets};

/// Algorithm selector for [`reduce_scatter_v`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceScatterAlgo {
    /// Ring; any `p`.
    Ring,
    /// Recursive halving; requires power-of-two `p`.
    RecursiveHalving,
    /// Recursive halving when `p` is a power of two, ring otherwise.
    Auto,
}

/// Reduce-Scatter with uniform segments: `data.len()` must be divisible by
/// `p`; rank `i` receives the sum of everyone's `i`-th chunk.
#[track_caller]
pub fn reduce_scatter(
    rank: &mut Rank,
    comm: &Comm,
    data: &[f64],
    algo: ReduceScatterAlgo,
) -> Vec<f64> {
    poll_now(reduce_scatter_a(rank, comm, data, algo))
}

/// Async form of [`reduce_scatter`] (event-loop programs).
#[track_caller]
pub fn reduce_scatter_a<'r>(
    rank: &'r mut Rank,
    comm: &'r Comm,
    data: &'r [f64],
    algo: ReduceScatterAlgo,
) -> impl Future<Output = Vec<f64>> + 'r {
    let site = Location::caller();
    async move {
        let p = comm.size();
        assert!(
            data.len().is_multiple_of(p),
            "reduce_scatter data length {} not divisible by communicator size {p}",
            data.len()
        );
        let counts = vec![data.len() / p; p];
        reduce_scatter_v_at(rank, comm, data, &counts, algo, site).await
    }
}

/// Reduce-Scatter with per-rank segment sizes (`MPI_Reduce_scatter`).
///
/// `data.len() == counts.iter().sum()` at every rank; rank `i` receives
/// the element-wise sum of everyone's segment `i`. Reduction additions are
/// metered as flops on the rank performing them.
#[track_caller]
pub fn reduce_scatter_v(
    rank: &mut Rank,
    comm: &Comm,
    data: &[f64],
    counts: &[usize],
    algo: ReduceScatterAlgo,
) -> Vec<f64> {
    poll_now(reduce_scatter_v_a(rank, comm, data, counts, algo))
}

/// Async form of [`reduce_scatter_v`] (event-loop programs).
#[track_caller]
pub fn reduce_scatter_v_a<'r>(
    rank: &'r mut Rank,
    comm: &'r Comm,
    data: &'r [f64],
    counts: &'r [usize],
    algo: ReduceScatterAlgo,
) -> impl Future<Output = Vec<f64>> + 'r {
    reduce_scatter_v_at(rank, comm, data, counts, algo, Location::caller())
}

pub(crate) async fn reduce_scatter_v_at(
    rank: &mut Rank,
    comm: &Comm,
    data: &[f64],
    counts: &[usize],
    algo: ReduceScatterAlgo,
    site: &'static Location<'static>,
) -> Vec<f64> {
    let p = comm.size();
    assert_eq!(counts.len(), p, "counts length must equal communicator size");
    let total: usize = counts.iter().sum();
    assert_eq!(data.len(), total, "data length disagrees with counts");
    rank.collective_begin_at(comm, CollectiveOp::ReduceScatter, total as u64, site).await;
    if p == 1 {
        return data.to_vec();
    }
    match algo {
        ReduceScatterAlgo::Ring => ring(rank, comm, data, counts).await,
        ReduceScatterAlgo::RecursiveHalving => {
            assert!(is_pow2(p), "recursive halving requires power-of-two communicator");
            recursive_halving(rank, comm, data, counts).await
        }
        ReduceScatterAlgo::Auto => {
            if is_pow2(p) {
                recursive_halving(rank, comm, data, counts).await
            } else {
                ring(rank, comm, data, counts).await
            }
        }
    }
}

async fn ring(rank: &mut Rank, comm: &Comm, data: &[f64], counts: &[usize]) -> Vec<f64> {
    let p = comm.size();
    let me = comm.index();
    let off = offsets(counts);
    let mut acc = data.to_vec();

    let right = (me + 1) % p;
    let left = (me + p - 1) % p;
    // Segment j starts at rank j+1 and travels rightward, accumulating; it
    // arrives fully reduced at rank j after p−1 steps. At step s this rank
    // sends segment (me − 1 − s mod p) and receives (me − 2 − s mod p).
    for s in 0..p - 1 {
        let send_seg = (me + p - 1 - s) % p;
        let recv_seg = (me + 2 * p - 2 - s) % p;
        let payload = acc[off[send_seg]..off[send_seg + 1]].to_vec();
        let msg = rank.exchange_a(comm, right, left, &payload).await;
        assert_eq!(msg.payload.len(), counts[recv_seg], "ring segment size mismatch");
        axpy1(&mut acc[off[recv_seg]..off[recv_seg + 1]], &msg.payload);
        rank.compute(counts[recv_seg] as f64);
    }
    acc[off[me]..off[me + 1]].to_vec()
}

async fn recursive_halving(
    rank: &mut Rank,
    comm: &Comm,
    data: &[f64],
    counts: &[usize],
) -> Vec<f64> {
    let p = comm.size();
    let me = comm.index();
    let off = offsets(counts);
    let mut acc = data.to_vec();

    // Active segment-index window [lo, hi); halves every step.
    let (mut lo, mut hi) = (0usize, p);
    while hi - lo > 1 {
        let size = hi - lo;
        let mid = lo + size / 2;
        let (keep_lo, keep_hi, partner) =
            if me < mid { (lo, mid, me + size / 2) } else { (mid, hi, me - size / 2) };
        let (send_lo, send_hi) = if me < mid { (mid, hi) } else { (lo, mid) };
        let payload = acc[off[send_lo]..off[send_hi]].to_vec();
        let msg = rank.exchange_a(comm, partner, partner, &payload).await;
        let keep_words = off[keep_hi] - off[keep_lo];
        assert_eq!(msg.payload.len(), keep_words, "halving segment size mismatch");
        axpy1(&mut acc[off[keep_lo]..off[keep_hi]], &msg.payload);
        rank.compute(keep_words as f64);
        lo = keep_lo;
        hi = keep_hi;
    }
    debug_assert_eq!(lo, me);
    acc[off[me]..off[me + 1]].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs;
    use pmm_simnet::{MachineParams, World};

    /// Contribution of rank r: element e of the full vector is r·1000 + e.
    fn contribution(r: usize, total: usize) -> Vec<f64> {
        (0..total).map(|e| (r * 1000 + e) as f64).collect()
    }

    fn expected_segment(me: usize, p: usize, counts: &[usize]) -> Vec<f64> {
        let off = crate::util::offsets(counts);
        let sum_r: f64 = (0..p).map(|r| (r * 1000) as f64).sum();
        (off[me]..off[me + 1]).map(|e| sum_r + (p as f64) * e as f64).collect()
    }

    fn check(p: usize, counts: Vec<usize>, algo: ReduceScatterAlgo) {
        let total: usize = counts.iter().sum();
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(|rank| {
            let comm = rank.world_comm();
            let data = contribution(rank.world_rank(), total);
            reduce_scatter_v(rank, &comm, &data, &counts, algo)
        });
        for (r, v) in out.values.iter().enumerate() {
            assert_eq!(v, &expected_segment(r, p, &counts), "rank {r} (p={p}, {algo:?})");
        }
    }

    #[test]
    fn ring_various_p() {
        for p in [2, 3, 4, 5, 7] {
            check(p, vec![2; p], ReduceScatterAlgo::Ring);
        }
    }

    #[test]
    fn recursive_halving_pow2() {
        for p in [2, 4, 8, 16] {
            check(p, vec![3; p], ReduceScatterAlgo::RecursiveHalving);
        }
    }

    #[test]
    fn uneven_and_empty_segments() {
        check(4, vec![0, 5, 2, 1], ReduceScatterAlgo::Ring);
        check(8, vec![1, 0, 3, 2, 0, 0, 4, 1], ReduceScatterAlgo::RecursiveHalving);
    }

    #[test]
    fn auto_dispatch() {
        check(6, vec![2; 6], ReduceScatterAlgo::Auto);
        check(4, vec![2; 4], ReduceScatterAlgo::Auto);
    }

    #[test]
    fn single_rank_identity() {
        let out = World::new(1, MachineParams::BANDWIDTH_ONLY).run(|rank| {
            let comm = rank.world_comm();
            reduce_scatter(rank, &comm, &[3.0, 4.0], ReduceScatterAlgo::Auto)
        });
        assert_eq!(out.values[0], vec![3.0, 4.0]);
    }

    #[test]
    fn bandwidth_and_flops_match_cost_model() {
        for (algo, p) in
            [(ReduceScatterAlgo::Ring, 6usize), (ReduceScatterAlgo::RecursiveHalving, 8)]
        {
            let w = 4usize; // words per segment
            let total = p * w;
            let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
                let comm = rank.world_comm();
                let data = vec![1.0; total];
                reduce_scatter(rank, &comm, &data, algo);
                rank.time()
            });
            let model = costs::reduce_scatter_cost(algo, p, w);
            for r in 0..p {
                assert_eq!(out.values[r], model.words, "{algo:?} clock at rank {r}");
                assert_eq!(out.reports[r].meter.words_sent, model.words as u64);
                assert_eq!(out.reports[r].meter.flops, model.flops, "{algo:?} flops");
            }
            // (1 - 1/p)·W with W = p·w
            assert_eq!(model.words, ((p - 1) * w) as f64);
            assert_eq!(model.flops, ((p - 1) * w) as f64);
        }
    }

    #[test]
    fn latency_matches_cost_model() {
        let params = MachineParams::new(1.0, 0.0, 0.0);
        for (algo, p, want) in
            [(ReduceScatterAlgo::Ring, 6usize, 5.0), (ReduceScatterAlgo::RecursiveHalving, 8, 3.0)]
        {
            let out = World::new(p, params).run(move |rank| {
                let comm = rank.world_comm();
                let data = vec![1.0; p];
                reduce_scatter(rank, &comm, &data, algo);
                rank.time()
            });
            let model = costs::reduce_scatter_cost(algo, p, 1);
            assert_eq!(model.messages, want);
            for r in 0..p {
                assert_eq!(out.values[r], want, "{algo:?} latency at rank {r}");
            }
        }
    }

    #[test]
    fn reduce_scatter_then_allgather_is_allreduce() {
        // Sanity composition: RS + AG should give every rank the full sum.
        use crate::allgather::{all_gather, AllGatherAlgo};
        let p = 4usize;
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(|rank| {
            let comm = rank.world_comm();
            let data = vec![(rank.world_rank() + 1) as f64; 8];
            let seg = reduce_scatter(rank, &comm, &data, ReduceScatterAlgo::Auto);
            all_gather(rank, &comm, &seg, AllGatherAlgo::Auto)
        });
        let want = vec![10.0; 8]; // 1+2+3+4
        for v in &out.values {
            assert_eq!(v, &want);
        }
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn uniform_requires_divisible_length() {
        World::new(3, MachineParams::BANDWIDTH_ONLY).run(|rank| {
            let comm = rank.world_comm();
            reduce_scatter(rank, &comm, &[1.0; 4], ReduceScatterAlgo::Ring);
        });
    }
}
