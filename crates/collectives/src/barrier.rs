//! Dissemination barrier: `⌈log2 p⌉` rounds of empty messages; works for
//! any `p`.

use std::future::Future;
use std::panic::Location;

use pmm_simnet::{poll_now, CollectiveOp, Comm, Rank};

/// Synchronize all members of `comm`. Unlike
/// [`Rank::hard_sync`](pmm_simnet::Rank::hard_sync) this is a *metered*
/// barrier: it exchanges real (empty) messages and pays `⌈log2 p⌉·α`.
#[track_caller]
pub fn barrier(rank: &mut Rank, comm: &Comm) {
    poll_now(barrier_a(rank, comm));
}

/// Async form of [`barrier`] (event-loop programs).
#[track_caller]
pub fn barrier_a<'r>(rank: &'r mut Rank, comm: &'r Comm) -> impl Future<Output = ()> + 'r {
    let site = Location::caller();
    async move {
        let p = comm.size();
        rank.collective_begin_at(comm, CollectiveOp::Barrier, 0, site).await;
        if p == 1 {
            return;
        }
        let me = comm.index();
        let mut dist = 1usize;
        while dist < p {
            let to = (me + dist) % p;
            let from = (me + p - dist) % p;
            rank.exchange_a(comm, to, from, &[]).await;
            dist <<= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs;
    use pmm_simnet::{MachineParams, World};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn barrier_actually_synchronizes() {
        // No rank may observe the post-barrier counter before every rank
        // has incremented the pre-barrier counter.
        let pre = Arc::new(AtomicUsize::new(0));
        let p = 8usize;
        let pre2 = pre.clone();
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let comm = rank.world_comm();
            pre2.fetch_add(1, Ordering::SeqCst);
            barrier(rank, &comm);
            pre2.load(Ordering::SeqCst)
        });
        for v in out.values {
            assert_eq!(v, p, "barrier released a rank early");
        }
    }

    #[test]
    fn cost_is_log_latency_only() {
        for p in [2usize, 3, 5, 8, 16] {
            let params = MachineParams::new(1.0, 1.0, 1.0);
            let out = World::new(p, params).run(|rank| {
                let comm = rank.world_comm();
                barrier(rank, &comm);
                (rank.time(), rank.meter().words_sent)
            });
            let model = costs::barrier_cost(p);
            for r in 0..p {
                assert_eq!(out.values[r].0, model.messages, "p={p} rank {r}");
                assert_eq!(out.values[r].1, 0);
            }
        }
    }

    #[test]
    fn single_rank_noop() {
        let out = World::new(1, MachineParams::BANDWIDTH_ONLY).run(|rank| {
            let comm = rank.world_comm();
            barrier(rank, &comm);
            rank.meter().msgs_sent
        });
        assert_eq!(out.values[0], 0);
    }
}
