//! Gather and Scatter (binomial trees), vector variants.
//!
//! Both follow the MPI convention that the `counts` array is known at all
//! ranks. Subtrees of the binomial tree own contiguous ranges of virtual
//! ranks, so messages carry concatenations of whole blocks and receivers
//! can split them using `counts`.

use std::future::Future;
use std::panic::Location;

use pmm_simnet::{poll_now, CollectiveOp, Comm, Rank};

use crate::util::offsets;

/// Algorithm selector for [`gather_v`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatherAlgo {
    /// Binomial tree (`⌈log2 p⌉` rounds at the root).
    Binomial,
}

/// Algorithm selector for [`scatter_v`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScatterAlgo {
    /// Binomial tree.
    Binomial,
}

/// Gather: member `i` contributes `mine` (`counts[i]` words); the root
/// returns the concatenation in communicator order, other ranks return an
/// empty vector.
#[track_caller]
pub fn gather_v(
    rank: &mut Rank,
    comm: &Comm,
    mine: &[f64],
    counts: &[usize],
    root: usize,
    algo: GatherAlgo,
) -> Vec<f64> {
    poll_now(gather_v_a(rank, comm, mine, counts, root, algo))
}

/// Async form of [`gather_v`] (event-loop programs).
#[track_caller]
pub fn gather_v_a<'r>(
    rank: &'r mut Rank,
    comm: &'r Comm,
    mine: &'r [f64],
    counts: &'r [usize],
    root: usize,
    _algo: GatherAlgo,
) -> impl Future<Output = Vec<f64>> + 'r {
    let site = Location::caller();
    async move {
        let p = comm.size();
        assert_eq!(counts.len(), p, "counts length must equal communicator size");
        assert_eq!(counts[comm.index()], mine.len(), "own count disagrees with contribution");
        assert!(root < p, "root out of communicator");
        rank.collective_begin_at(comm, CollectiveOp::Gather, mine.len() as u64, site).await;
        if p == 1 {
            return mine.to_vec();
        }
        let me = comm.index();
        let vrank = (me + p - root) % p;
        let unvrank = |v: usize| (v + root) % p;
        // counts in virtual-rank order
        let vcounts: Vec<usize> = (0..p).map(|v| counts[unvrank(v)]).collect();
        let voff = offsets(&vcounts);

        // Blocks held so far: virtual range [vrank, vrank + held).
        let mut held = 1usize;
        let mut buf = mine.to_vec();

        let mut mask = 1usize;
        while mask < p {
            if vrank & mask != 0 {
                // Send everything held to the parent and stop.
                let parent = unvrank(vrank - mask);
                rank.send_a(comm, parent, &buf).await;
                buf.clear();
                break;
            }
            // Receive the child subtree [vrank+mask, vrank+mask+subtree).
            let child_v = vrank + mask;
            if child_v < p {
                let subtree = mask.min(p - child_v);
                let expect = voff[child_v + subtree] - voff[child_v];
                let msg = rank.recv_a(comm, unvrank(child_v)).await;
                assert_eq!(msg.payload.len(), expect, "gather subtree size mismatch");
                buf.extend_from_slice(&msg.payload);
                held += subtree;
            }
            mask <<= 1;
        }

        if me == root {
            debug_assert_eq!(held, p);
            // buf is in virtual order starting at vrank = 0; rotate to
            // communicator order: virtual v corresponds to member (v+root)%p.
            let mut out = vec![0.0f64; voff[p]];
            let off = offsets(counts);
            for v in 0..p {
                let member = unvrank(v);
                out[off[member]..off[member + 1]].copy_from_slice(&buf[voff[v]..voff[v + 1]]);
            }
            out
        } else {
            Vec::new()
        }
    }
}

/// Scatter: the root provides `data` as the concatenation of per-member
/// blocks (`counts`, communicator order); every rank returns its own
/// block. Non-roots pass any `data` (ignored).
#[track_caller]
pub fn scatter_v(
    rank: &mut Rank,
    comm: &Comm,
    data: &[f64],
    counts: &[usize],
    root: usize,
    algo: ScatterAlgo,
) -> Vec<f64> {
    poll_now(scatter_v_a(rank, comm, data, counts, root, algo))
}

/// Async form of [`scatter_v`] (event-loop programs).
#[track_caller]
pub fn scatter_v_a<'r>(
    rank: &'r mut Rank,
    comm: &'r Comm,
    data: &'r [f64],
    counts: &'r [usize],
    root: usize,
    _algo: ScatterAlgo,
) -> impl Future<Output = Vec<f64>> + 'r {
    let site = Location::caller();
    async move {
        let p = comm.size();
        assert_eq!(counts.len(), p, "counts length must equal communicator size");
        assert!(root < p, "root out of communicator");
        rank.collective_begin_at(comm, CollectiveOp::Scatter, data.len() as u64, site).await;
        if p == 1 {
            return data.to_vec();
        }
        let me = comm.index();
        let vrank = (me + p - root) % p;
        let unvrank = |v: usize| (v + root) % p;
        let vcounts: Vec<usize> = (0..p).map(|v| counts[unvrank(v)]).collect();
        let voff = offsets(&vcounts);

        // The root rearranges into virtual order; every holder owns a virtual
        // range [vrank, vrank + span).
        let mut buf: Vec<f64>;
        let mut span: usize;
        if me == root {
            let off = offsets(counts);
            assert_eq!(data.len(), off[p], "scatter data length disagrees with counts");
            let mut v_ordered = vec![0.0f64; off[p]];
            for v in 0..p {
                let member = unvrank(v);
                v_ordered[voff[v]..voff[v + 1]]
                    .copy_from_slice(&data[off[member]..off[member + 1]]);
            }
            buf = v_ordered;
            span = p;
        } else {
            buf = Vec::new();
            span = 0;
        }

        // Receive phase: find the bit where we hang off our parent.
        let mut mask = 1usize;
        let mut recv_mask = 0usize;
        while mask < p {
            if vrank & mask != 0 {
                let parent = unvrank(vrank - mask);
                let subtree = mask.min(p - vrank);
                let expect = voff[vrank + subtree] - voff[vrank];
                let msg = rank.recv_a(comm, parent).await;
                assert_eq!(msg.payload.len(), expect, "scatter subtree size mismatch");
                buf = msg.payload;
                span = subtree;
                recv_mask = mask;
                break;
            }
            mask <<= 1;
        }
        if me == root {
            recv_mask = {
                // root never receives; it sends at every bit below p
                let mut m = 1usize;
                while m < p {
                    m <<= 1;
                }
                m
            };
        }

        // Send phase: peel off the upper halves at decreasing distances.
        let mut mask = recv_mask >> 1;
        while mask > 0 {
            if vrank + mask < p && mask < span {
                let child_v = vrank + mask;
                let child_span = span - mask;
                let start = voff[child_v] - voff[vrank];
                let end = voff[child_v + child_span] - voff[vrank];
                let payload = buf[start..end].to_vec();
                rank.send_a(comm, unvrank(child_v), &payload).await;
                buf.truncate(start);
                span = mask;
            }
            mask >>= 1;
        }

        debug_assert_eq!(span, 1);
        debug_assert_eq!(buf.len(), counts[me]);
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmm_simnet::{MachineParams, World};

    fn block(i: usize, c: usize) -> Vec<f64> {
        (0..c).map(|e| (i * 100 + e) as f64).collect()
    }

    fn check_gather(p: usize, counts: Vec<usize>, root: usize) {
        let want: Vec<f64> = (0..p).flat_map(|i| block(i, counts[i])).collect();
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(|rank| {
            let comm = rank.world_comm();
            let mine = block(rank.world_rank(), counts[rank.world_rank()]);
            gather_v(rank, &comm, &mine, &counts, root, GatherAlgo::Binomial)
        });
        for (r, v) in out.values.iter().enumerate() {
            if r == root {
                assert_eq!(v, &want, "root content (p={p}, root={root})");
            } else {
                assert!(v.is_empty(), "non-root {r} should return empty");
            }
        }
    }

    fn check_scatter(p: usize, counts: Vec<usize>, root: usize) {
        let full: Vec<f64> = (0..p).flat_map(|i| block(i, counts[i])).collect();
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(|rank| {
            let comm = rank.world_comm();
            let data = if rank.world_rank() == root { full.clone() } else { Vec::new() };
            scatter_v(rank, &comm, &data, &counts, root, ScatterAlgo::Binomial)
        });
        for (r, v) in out.values.iter().enumerate() {
            assert_eq!(v, &block(r, counts[r]), "rank {r} block (p={p}, root={root})");
        }
    }

    #[test]
    fn gather_various_p_and_roots() {
        for p in [2usize, 3, 4, 5, 8] {
            for root in [0, p - 1, p / 2] {
                check_gather(p, vec![2; p], root);
            }
        }
    }

    #[test]
    fn gather_uneven_blocks() {
        check_gather(5, vec![0, 3, 1, 2, 0], 0);
        check_gather(4, vec![4, 0, 0, 2], 3);
    }

    #[test]
    fn scatter_various_p_and_roots() {
        for p in [2usize, 3, 4, 5, 8] {
            for root in [0, p - 1, p / 2] {
                check_scatter(p, vec![2; p], root);
            }
        }
    }

    #[test]
    fn scatter_uneven_blocks() {
        check_scatter(5, vec![0, 3, 1, 2, 0], 1);
        check_scatter(6, vec![1, 2, 3, 0, 2, 1], 4);
    }

    #[test]
    fn gather_root_bandwidth_is_total_minus_own() {
        let (p, w) = (8usize, 5usize);
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let comm = rank.world_comm();
            let mine = vec![1.0; w];
            gather_v(rank, &comm, &mine, &vec![w; p], 0, GatherAlgo::Binomial);
        });
        assert_eq!(out.reports[0].meter.words_recv, ((p - 1) * w) as u64);
        assert_eq!(out.reports[0].meter.words_sent, 0);
    }

    #[test]
    fn scatter_root_bandwidth_is_total_minus_own() {
        let (p, w) = (8usize, 5usize);
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let comm = rank.world_comm();
            let data = vec![1.0; p * w];
            scatter_v(rank, &comm, &data, &vec![w; p], 0, ScatterAlgo::Binomial);
        });
        assert_eq!(out.reports[0].meter.words_sent, ((p - 1) * w) as u64);
        assert_eq!(out.reports[0].meter.words_recv, 0);
    }

    #[test]
    fn scatter_then_gather_roundtrips() {
        let p = 7usize;
        let counts: Vec<usize> = (0..p).map(|i| (i * 3) % 5).collect();
        let full: Vec<f64> = (0..p).flat_map(|i| block(i, counts[i])).collect();
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(|rank| {
            let comm = rank.world_comm();
            let data = if rank.world_rank() == 2 { full.clone() } else { Vec::new() };
            let mine = scatter_v(rank, &comm, &data, &counts, 2, ScatterAlgo::Binomial);
            gather_v(rank, &comm, &mine, &counts, 2, GatherAlgo::Binomial)
        });
        assert_eq!(out.values[2], full);
    }
}
