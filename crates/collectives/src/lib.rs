//! # pmm-collectives — MPI-style collectives on the simulated machine
//!
//! Algorithm 1 of the paper is built from three collective operations: two
//! **All-Gathers** (inputs) and one **Reduce-Scatter** (output). Its cost
//! analysis (§5.1) assumes the *bandwidth-optimal* algorithms for these
//! collectives — bidirectional exchange / recursive doubling & halving —
//! whose cost on `p` processors is `(1 − 1/p)·w` words, where `w` is the
//! data held by each processor after the All-Gather (resp. before the
//! Reduce-Scatter) (Thakur et al. 2005; Chan et al. 2007).
//!
//! This crate implements those collectives (plus the rest of the standard
//! family: broadcast, reduce, all-reduce, gather, scatter, all-to-all,
//! barrier) as *executable message-passing programs* over
//! [`pmm_simnet`], and pairs each with a **closed-form cost model** in
//! [`costs`]. Tests assert that the measured meters of the executed
//! collective match the closed form exactly — that agreement is what lets
//! the bound-tightness experiments trust the simulator.
//!
//! All "v" (vector) variants follow the MPI convention that every rank
//! knows the full `counts` array a priori.
//!
//! ## Example
//!
//! ```
//! use pmm_simnet::{World, MachineParams};
//! use pmm_collectives::{all_gather, AllGatherAlgo};
//!
//! let out = World::new(4, MachineParams::BANDWIDTH_ONLY).run(|rank| {
//!     let comm = rank.world_comm();
//!     let mine = [rank.world_rank() as f64; 2];
//!     all_gather(rank, &comm, &mine, AllGatherAlgo::Auto)
//! });
//! assert_eq!(out.values[3], vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
//! // bandwidth-optimal: each rank moves (1 - 1/p) * W = 6 words
//! assert_eq!(out.reports[0].meter.words_sent, 6);
//! ```

#![warn(missing_docs)]

pub mod allgather;
pub mod allreduce;
pub mod alltoall;
pub mod barrier;
pub mod bcast;
pub mod costs;
pub mod gather_scatter;
pub mod reduce;
pub mod reduce_scatter;
pub mod scan;
pub(crate) mod util;

pub use allgather::{all_gather, all_gather_a, all_gather_v, all_gather_v_a, AllGatherAlgo};
pub use allreduce::{all_reduce, all_reduce_a, AllReduceAlgo};
pub use alltoall::{all_to_all, all_to_all_a, AllToAllAlgo};
pub use barrier::{barrier, barrier_a};
pub use bcast::{bcast, bcast_a, BcastAlgo};
pub use gather_scatter::{gather_v, gather_v_a, scatter_v, scatter_v_a, GatherAlgo, ScatterAlgo};
pub use reduce::{reduce, reduce_a, ReduceAlgo};
pub use reduce_scatter::{
    reduce_scatter, reduce_scatter_a, reduce_scatter_v, reduce_scatter_v_a, ReduceScatterAlgo,
};
pub use scan::{exscan, exscan_a, scan, scan_a};
