//! All-to-All (personalized exchange): every rank sends a distinct block
//! to every other rank.
//!
//! Algorithm 1 *replaces* the All-to-All of Agarwal et al. (1995) with a
//! Reduce-Scatter (§5.1); the All-to-All is provided both for completeness
//! and so the ablation benches can compare the two assembly strategies.

use std::future::Future;
use std::panic::Location;

use pmm_simnet::{poll_now, CollectiveOp, Comm, Rank};

use crate::util::is_pow2;

/// Algorithm selector for [`all_to_all`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllToAllAlgo {
    /// `p − 1` steps; step `s` exchanges with rank `me XOR s` (power-of-two
    /// `p`) or sends to `me+s` while receiving from `me−s` (general `p`).
    Pairwise,
}

/// All-to-All with uniform block size: `data` is the concatenation of `p`
/// equal blocks (block `i` destined for member `i`); the result is the
/// concatenation of the blocks received from each member (own block
/// copied locally).
#[track_caller]
pub fn all_to_all(rank: &mut Rank, comm: &Comm, data: &[f64], algo: AllToAllAlgo) -> Vec<f64> {
    poll_now(all_to_all_a(rank, comm, data, algo))
}

/// Async form of [`all_to_all`] (event-loop programs).
#[track_caller]
pub fn all_to_all_a<'r>(
    rank: &'r mut Rank,
    comm: &'r Comm,
    data: &'r [f64],
    _algo: AllToAllAlgo,
) -> impl Future<Output = Vec<f64>> + 'r {
    let site = Location::caller();
    async move {
        let p = comm.size();
        assert!(data.len().is_multiple_of(p), "all_to_all data length must be divisible by p");
        rank.collective_begin_at(comm, CollectiveOp::AllToAll, data.len() as u64, site).await;
        let w = data.len() / p;
        let me = comm.index();
        let mut out = vec![0.0f64; data.len()];
        out[me * w..(me + 1) * w].copy_from_slice(&data[me * w..(me + 1) * w]);
        if p == 1 {
            return out;
        }
        if is_pow2(p) {
            for s in 1..p {
                let partner = me ^ s;
                let msg = rank
                    .exchange_a(comm, partner, partner, &data[partner * w..(partner + 1) * w])
                    .await;
                assert_eq!(msg.payload.len(), w);
                out[partner * w..(partner + 1) * w].copy_from_slice(&msg.payload);
            }
        } else {
            for s in 1..p {
                let to = (me + s) % p;
                let from = (me + p - s) % p;
                let msg = rank.exchange_a(comm, to, from, &data[to * w..(to + 1) * w]).await;
                assert_eq!(msg.payload.len(), w);
                out[from * w..(from + 1) * w].copy_from_slice(&msg.payload);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs;
    use pmm_simnet::{MachineParams, World};

    fn check(p: usize, w: usize) {
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let comm = rank.world_comm();
            let me = rank.world_rank();
            // block for destination d: value me*p + d, repeated w times
            let data: Vec<f64> =
                (0..p).flat_map(|d| std::iter::repeat_n((me * p + d) as f64, w)).collect();
            all_to_all(rank, &comm, &data, AllToAllAlgo::Pairwise)
        });
        for (r, v) in out.values.iter().enumerate() {
            let want: Vec<f64> =
                (0..p).flat_map(|src| std::iter::repeat_n((src * p + r) as f64, w)).collect();
            assert_eq!(v, &want, "rank {r} (p={p})");
        }
    }

    #[test]
    fn pow2_and_general_p() {
        check(2, 3);
        check(4, 2);
        check(8, 1);
        check(3, 4);
        check(5, 2);
        check(7, 1);
    }

    #[test]
    fn matches_cost_model() {
        for p in [8usize, 6] {
            let w = 5usize;
            let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
                let comm = rank.world_comm();
                let data = vec![1.0; p * w];
                all_to_all(rank, &comm, &data, AllToAllAlgo::Pairwise);
                rank.time()
            });
            let model = costs::all_to_all_cost(AllToAllAlgo::Pairwise, p, w);
            for r in 0..p {
                assert_eq!(out.values[r], model.words, "clock at rank {r} (p={p})");
            }
            assert_eq!(model.words, ((p - 1) * w) as f64);
        }
    }

    #[test]
    fn single_rank_identity() {
        let out = World::new(1, MachineParams::BANDWIDTH_ONLY).run(|rank| {
            let comm = rank.world_comm();
            all_to_all(rank, &comm, &[9.0, 9.5], AllToAllAlgo::Pairwise)
        });
        assert_eq!(out.values[0], vec![9.0, 9.5]);
    }
}
