//! All-Reduce: element-wise sum of every rank's buffer, delivered at every
//! rank.

use std::future::Future;
use std::panic::Location;

use pmm_simnet::{poll_now, CollectiveOp, Comm, Rank};

use crate::allgather::{all_gather_v_a, AllGatherAlgo};
use crate::reduce_scatter::{reduce_scatter_v_a, ReduceScatterAlgo};
use crate::util::{axpy1, is_pow2};

/// Algorithm selector for [`all_reduce`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllReduceAlgo {
    /// Rabenseifner: Reduce-Scatter then All-Gather. Bandwidth-optimal
    /// `2(1 − 1/p)·w`; any `p` (uneven trailing segment allowed).
    ReduceScatterAllGather,
    /// Recursive doubling: `log2 p` rounds of whole-buffer exchanges;
    /// latency-optimal, bandwidth `log2(p)·w`. Power-of-two `p` only.
    RecursiveDoubling,
    /// Rabenseifner (the bandwidth-optimal default).
    Auto,
}

/// Sum-reduce `data` across the communicator; every rank returns the full
/// element-wise sum.
#[track_caller]
pub fn all_reduce(rank: &mut Rank, comm: &Comm, data: &[f64], algo: AllReduceAlgo) -> Vec<f64> {
    poll_now(all_reduce_a(rank, comm, data, algo))
}

/// Async form of [`all_reduce`] (event-loop programs).
#[track_caller]
pub fn all_reduce_a<'r>(
    rank: &'r mut Rank,
    comm: &'r Comm,
    data: &'r [f64],
    algo: AllReduceAlgo,
) -> impl Future<Output = Vec<f64>> + 'r {
    let site = Location::caller();
    async move {
        let p = comm.size();
        rank.collective_begin_at(comm, CollectiveOp::AllReduce, data.len() as u64, site).await;
        if p == 1 {
            return data.to_vec();
        }
        match algo {
            AllReduceAlgo::ReduceScatterAllGather | AllReduceAlgo::Auto => {
                rsag(rank, comm, data).await
            }
            AllReduceAlgo::RecursiveDoubling => {
                assert!(is_pow2(p), "recursive-doubling all-reduce requires power-of-two p");
                recursive_doubling(rank, comm, data).await
            }
        }
    }
}

async fn rsag(rank: &mut Rank, comm: &Comm, data: &[f64]) -> Vec<f64> {
    let p = comm.size();
    // Split the buffer into p near-equal segments (first `rem` segments one
    // word longer) so any length works.
    let base = data.len() / p;
    let rem = data.len() % p;
    let counts: Vec<usize> = (0..p).map(|i| base + usize::from(i < rem)).collect();
    let seg = reduce_scatter_v_a(rank, comm, data, &counts, ReduceScatterAlgo::Auto).await;
    all_gather_v_a(rank, comm, &seg, &counts, AllGatherAlgo::Auto).await
}

async fn recursive_doubling(rank: &mut Rank, comm: &Comm, data: &[f64]) -> Vec<f64> {
    let p = comm.size();
    let me = comm.index();
    let mut acc = data.to_vec();
    let mut mask = 1usize;
    while mask < p {
        let partner = me ^ mask;
        let msg = rank.exchange_a(comm, partner, partner, &acc).await;
        assert_eq!(msg.payload.len(), acc.len(), "all-reduce length mismatch");
        axpy1(&mut acc, &msg.payload);
        rank.compute(acc.len() as f64);
        mask <<= 1;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs;
    use pmm_simnet::{MachineParams, World};

    fn check(p: usize, len: usize, algo: AllReduceAlgo) {
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let comm = rank.world_comm();
            let data: Vec<f64> =
                (0..len).map(|e| (rank.world_rank() + 1) as f64 + e as f64).collect();
            all_reduce(rank, &comm, &data, algo)
        });
        let s = (p * (p + 1) / 2) as f64;
        let want: Vec<f64> = (0..len).map(|e| s + (p as f64) * e as f64).collect();
        for (r, v) in out.values.iter().enumerate() {
            assert_eq!(v, &want, "rank {r} (p={p}, len={len}, {algo:?})");
        }
    }

    #[test]
    fn rsag_various() {
        check(4, 8, AllReduceAlgo::ReduceScatterAllGather);
        check(5, 7, AllReduceAlgo::ReduceScatterAllGather); // uneven everything
        check(8, 16, AllReduceAlgo::ReduceScatterAllGather);
        check(3, 1, AllReduceAlgo::ReduceScatterAllGather); // len < p
    }

    #[test]
    fn recursive_doubling_various() {
        check(2, 5, AllReduceAlgo::RecursiveDoubling);
        check(8, 3, AllReduceAlgo::RecursiveDoubling);
    }

    #[test]
    fn auto_works_for_any_p() {
        check(6, 9, AllReduceAlgo::Auto);
        check(16, 32, AllReduceAlgo::Auto);
    }

    #[test]
    fn rabenseifner_matches_cost_model() {
        let (p, w) = (8usize, 80usize);
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let comm = rank.world_comm();
            all_reduce(rank, &comm, &vec![1.0; w], AllReduceAlgo::ReduceScatterAllGather);
            rank.time()
        });
        let model = costs::all_reduce_cost(AllReduceAlgo::ReduceScatterAllGather, p, w);
        for r in 0..p {
            assert_eq!(out.values[r], model.words, "clock at rank {r}");
        }
        assert_eq!(model.words, 2.0 * (1.0 - 1.0 / p as f64) * w as f64);
    }

    #[test]
    fn recursive_doubling_matches_cost_model() {
        let (p, w) = (8usize, 10usize);
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let comm = rank.world_comm();
            all_reduce(rank, &comm, &vec![1.0; w], AllReduceAlgo::RecursiveDoubling);
            rank.time()
        });
        let model = costs::all_reduce_cost(AllReduceAlgo::RecursiveDoubling, p, w);
        for r in 0..p {
            assert_eq!(out.values[r], model.words);
        }
        assert_eq!(model.words, 30.0);
    }

    #[test]
    fn single_rank_identity() {
        let out = World::new(1, MachineParams::BANDWIDTH_ONLY).run(|rank| {
            let comm = rank.world_comm();
            all_reduce(rank, &comm, &[1.0, 2.0], AllReduceAlgo::Auto)
        });
        assert_eq!(out.values[0], vec![1.0, 2.0]);
    }
}
