//! Property-based tests for the collectives: correctness on random
//! communicator sizes, block profiles (including empty blocks), roots and
//! payload values — integer-valued data so results are exact.

use pmm_collectives::{
    all_gather_v, all_to_all, bcast, gather_v, reduce, reduce_scatter_v, scatter_v, AllGatherAlgo,
    AllToAllAlgo, BcastAlgo, GatherAlgo, ReduceAlgo, ReduceScatterAlgo, ScatterAlgo,
};
use pmm_simnet::{MachineParams, World};
use proptest::prelude::*;

fn counts(p: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0usize..8, p)
}

fn block(owner: usize, c: usize) -> Vec<f64> {
    (0..c).map(|e| (owner * 64 + e) as f64).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn all_gather_v_any_profile(p in 2usize..9, cs in (2usize..9).prop_flat_map(counts)) {
        let cs = &cs[..p.min(cs.len())];
        if cs.len() != p { return Ok(()); }
        let cs = cs.to_vec();
        let want: Vec<f64> = (0..p).flat_map(|i| block(i, cs[i])).collect();
        for algo in [AllGatherAlgo::Ring, AllGatherAlgo::Bruck] {
            let cs2 = cs.clone();
            let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
                let comm = rank.world_comm();
                let mine = block(rank.world_rank(), cs2[rank.world_rank()]);
                all_gather_v(rank, &comm, &mine, &cs2, algo)
            });
            for v in &out.values {
                prop_assert_eq!(v, &want, "{:?}", algo);
            }
        }
    }

    #[test]
    fn reduce_scatter_v_any_profile(p in 2usize..9, seed in 0u64..100) {
        let cs: Vec<usize> = (0..p).map(|i| (seed as usize + i * 3) % 5).collect();
        let total: usize = cs.iter().sum();
        let cs2 = cs.clone();
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let data: Vec<f64> =
                (0..total).map(|e| (rank.world_rank() * total + e) as f64).collect();
            let comm = rank.world_comm();
            reduce_scatter_v(rank, &comm, &data, &cs2, ReduceScatterAlgo::Auto)
        });
        let mut off = 0usize;
        for (r, c) in cs.iter().enumerate() {
            let want: Vec<f64> = (off..off + c)
                .map(|e| (0..p).map(|q| (q * total + e) as f64).sum())
                .collect();
            prop_assert_eq!(&out.values[r], &want, "rank {}", r);
            off += c;
        }
    }

    #[test]
    fn gather_scatter_roundtrip_any_profile(
        p in 2usize..9,
        root in 0usize..9,
        seed in 0u64..100,
    ) {
        let root = root % p;
        let cs: Vec<usize> = (0..p).map(|i| (seed as usize + i) % 4).collect();
        let full: Vec<f64> = (0..p).flat_map(|i| block(i, cs[i])).collect();
        let want = full.clone();
        let cs2 = cs.clone();
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let comm = rank.world_comm();
            let data = if rank.world_rank() == root { full.clone() } else { Vec::new() };
            let mine = scatter_v(rank, &comm, &data, &cs2, root, ScatterAlgo::Binomial);
            gather_v(rank, &comm, &mine, &cs2, root, GatherAlgo::Binomial)
        });
        prop_assert_eq!(&out.values[root], &want);
    }

    #[test]
    fn bcast_from_any_root(p in 2usize..9, root in 0usize..9, w in 0usize..12) {
        let root = root % p;
        let msg: Vec<f64> = (0..w).map(|e| e as f64 * 3.0).collect();
        let want = msg.clone();
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let comm = rank.world_comm();
            let data = if rank.world_rank() == root { msg.clone() } else { vec![0.0; w] };
            bcast(rank, &comm, &data, root, BcastAlgo::Binomial)
        });
        for v in &out.values {
            prop_assert_eq!(v, &want);
        }
    }

    #[test]
    fn reduce_to_any_root(p in 2usize..9, root in 0usize..9, w in 1usize..10) {
        let root = root % p;
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let comm = rank.world_comm();
            let data: Vec<f64> = (0..w).map(|e| (rank.world_rank() + e) as f64).collect();
            reduce(rank, &comm, &data, root, ReduceAlgo::Binomial)
        });
        let sum_r = (p * (p - 1) / 2) as f64;
        let want: Vec<f64> = (0..w).map(|e| sum_r + (p * e) as f64).collect();
        prop_assert_eq!(&out.values[root], &want);
        for (r, v) in out.values.iter().enumerate() {
            if r != root {
                prop_assert!(v.is_empty());
            }
        }
    }

    #[test]
    fn all_to_all_is_a_transpose(p in 2usize..9, w in 1usize..6) {
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let me = rank.world_rank();
            let data: Vec<f64> =
                (0..p).flat_map(|d| std::iter::repeat_n((me * p + d) as f64, w)).collect();
            let comm = rank.world_comm();
            all_to_all(rank, &comm, &data, AllToAllAlgo::Pairwise)
        });
        for (r, v) in out.values.iter().enumerate() {
            let want: Vec<f64> =
                (0..p).flat_map(|s| std::iter::repeat_n((s * p + r) as f64, w)).collect();
            prop_assert_eq!(v, &want);
        }
    }

    #[test]
    fn measured_equals_cost_model_for_all_collectives(
        p in 2usize..10,
        w in 1usize..24,
    ) {
        use pmm_collectives::{costs, all_gather, reduce_scatter, all_reduce, barrier};
        use pmm_collectives::AllReduceAlgo;

        // All-Gather (every algorithm valid at this p).
        let mut algos = vec![AllGatherAlgo::Ring, AllGatherAlgo::Bruck];
        if p.is_power_of_two() {
            algos.push(AllGatherAlgo::RecursiveDoubling);
        }
        for algo in algos {
            let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
                let comm = rank.world_comm();
                all_gather(rank, &comm, &vec![1.0; w], algo);
                rank.time()
            });
            let model = costs::all_gather_cost(algo, p, w);
            for (r, &t) in out.values.iter().enumerate() {
                prop_assert!(
                    (t - model.words).abs() < 1e-9,
                    "{:?} p={} w={} rank {}: {} vs {}", algo, p, w, r, t, model.words
                );
            }
        }

        // Reduce-Scatter (auto) — words and flops.
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let comm = rank.world_comm();
            reduce_scatter(rank, &comm, &vec![1.0; p * w], ReduceScatterAlgo::Auto);
            (rank.time(), rank.meter().flops)
        });
        let model = costs::reduce_scatter_cost(ReduceScatterAlgo::Auto, p, w);
        for (r, &(t, f)) in out.values.iter().enumerate() {
            prop_assert!((t - model.words).abs() < 1e-9, "RS p={} rank {}", p, r);
            prop_assert!((f - model.flops).abs() < 1e-9, "RS flops p={} rank {}", p, r);
        }

        // All-Reduce Rabenseifner when p | total (always true here).
        let total = p * w;
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let comm = rank.world_comm();
            all_reduce(rank, &comm, &vec![1.0; total], AllReduceAlgo::ReduceScatterAllGather);
            rank.time()
        });
        let model = costs::all_reduce_cost(AllReduceAlgo::ReduceScatterAllGather, p, total);
        for &t in &out.values {
            prop_assert!((t - model.words).abs() < 1e-9, "AR p={}", p);
        }

        // Barrier: latency only.
        let out = World::new(p, MachineParams::new(1.0, 1.0, 1.0)).run(|rank| {
            let comm = rank.world_comm();
            barrier(rank, &comm);
            rank.time()
        });
        let model = costs::barrier_cost(p);
        for &t in &out.values {
            prop_assert!((t - model.messages).abs() < 1e-9, "barrier p={}", p);
        }
    }

    #[test]
    fn conservation_of_words_across_any_collective(p in 2usize..8, w in 1usize..10) {
        // Whatever the collective, globally sent == received.
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let comm = rank.world_comm();
            let mine = vec![1.0; w];
            all_gather_v(rank, &comm, &mine, &vec![w; p], AllGatherAlgo::Ring);
            let data = vec![1.0; p * w];
            reduce_scatter_v(rank, &comm, &data, &vec![w; p], ReduceScatterAlgo::Auto);
            rank.meter()
        });
        let sent: u64 = out.values.iter().map(|m| m.words_sent).sum();
        let recv: u64 = out.values.iter().map(|m| m.words_recv).sum();
        prop_assert_eq!(sent, recv);
    }
}
