//! The verifier seen from the collectives layer: misuse of the library
//! entry points must terminate with a report, never hang the test suite.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use pmm_collectives::{all_gather, gather_v, reduce_scatter, AllGatherAlgo};
use pmm_collectives::{GatherAlgo, ReduceScatterAlgo};
use pmm_simnet::{MachineParams, World};

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        panic!("panic payload is not a string");
    }
}

const WATCHDOG: Duration = Duration::from_millis(50);

#[test]
fn allgather_vs_reduce_scatter_aborts_with_report() {
    // The classic mismatched collective: rank 0 enters an All-Gather
    // while everyone else enters a Reduce-Scatter on the same
    // communicator. The matching lint catches the disagreement at entry
    // and aborts the world; without it the suite would hang.
    let start = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| {
        World::new(4, MachineParams::BANDWIDTH_ONLY).with_watchdog(WATCHDOG).run(|rank| {
            let wc = rank.world_comm();
            let data = vec![1.0f64; 8];
            if rank.world_rank() == 0 {
                all_gather(rank, &wc, &data, AllGatherAlgo::Auto);
            } else {
                reduce_scatter(rank, &wc, &data, ReduceScatterAlgo::Auto);
            }
        });
    }));
    let report = panic_text(result.expect_err("mismatched collectives must abort, not hang"));
    assert!(report.contains("collective mismatch"), "missing headline: {report}");
    assert!(report.contains("all_gather"), "missing all_gather: {report}");
    assert!(report.contains("reduce_scatter"), "missing reduce_scatter: {report}");
    assert!(report.contains("ctx"), "missing communicator context: {report}");
    assert!(start.elapsed() < Duration::from_secs(10), "took {:?}", start.elapsed());
}

#[test]
fn disagreeing_gather_roots_deadlock_is_reported() {
    // Both ranks call the *same* collective with the same counts, so the
    // matching lint is satisfied — but they disagree on the root, so each
    // waits for the other's contribution: a genuine communication
    // deadlock that only the watchdog can catch.
    let result = catch_unwind(AssertUnwindSafe(|| {
        World::new(2, MachineParams::BANDWIDTH_ONLY).with_watchdog(WATCHDOG).run(|rank| {
            let wc = rank.world_comm();
            let mine = vec![rank.world_rank() as f64; 4];
            let root = rank.world_rank(); // everyone thinks *they* are root
            gather_v(rank, &wc, &mine, &[4, 4], root, GatherAlgo::Binomial);
        });
    }));
    let report = panic_text(result.expect_err("disagreeing roots must deadlock and abort"));
    assert!(report.contains("deadlock detected"), "missing headline: {report}");
    assert!(report.contains("recv"), "missing blocked op: {report}");
}
