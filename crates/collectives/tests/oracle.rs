//! Serial-reference oracles and cost-meter checks for the collectives
//! that the matmul algorithms do **not** exercise: `scan`/`exscan`,
//! `all_to_all`, `bcast` and `all_reduce`.
//!
//! Each test compares a simulated run against an oracle computed
//! serially from the full input set, then holds the per-rank meters
//! against the closed forms in `pmm_collectives::costs`. Runs use
//! `World::with_seed`, so the collectives are also exercised under the
//! deterministic scheduler (and any failure names a replayable seed).

use pmm_collectives::{
    all_reduce, all_to_all, bcast, costs, exscan, scan, AllReduceAlgo, AllToAllAlgo, BcastAlgo,
};
use pmm_simnet::{MachineParams, Meter, World};

const SEED: u64 = 0x5EED;

/// Integer-valued contribution of `rank`, `w` words — exact in f64.
fn contribution(rank: usize, w: usize) -> Vec<f64> {
    (0..w).map(|e| ((rank * 31 + e * 7) % 100) as f64 - 17.0).collect()
}

fn run_collective<T, F>(p: usize, program: F) -> (Vec<T>, Vec<Meter>)
where
    T: Send + 'static,
    F: Fn(&mut pmm_simnet::Rank) -> T + Send + Sync + 'static,
{
    let out = World::new(p, MachineParams::BANDWIDTH_ONLY)
        .with_seed(SEED)
        .run(move |rank| (program(rank), rank.meter()));
    out.values.into_iter().unzip()
}

#[test]
fn scan_matches_serial_prefix_sums_and_the_cost_model() {
    for p in [2usize, 3, 5, 8, 16] {
        let w = 4;
        let (values, meters) = run_collective(p, move |rank| {
            let comm = rank.world_comm();
            scan(rank, &comm, &contribution(rank.world_rank(), w))
        });
        let model = costs::scan_cost(p, w);
        let rounds = model.messages as u32;
        for (r, v) in values.iter().enumerate() {
            // Serial oracle: element-wise sum of contributions 0..=r.
            let want: Vec<f64> =
                (0..w).map(|e| (0..=r).map(|q| contribution(q, w)[e]).sum()).collect();
            assert_eq!(v, &want, "scan p={p} rank {r}");
            // Exact per-rank traffic: rank r sends in rounds where
            // r + 2^s < p and receives where r ≥ 2^s.
            let sent = (0..rounds).filter(|s| r + (1usize << s) < p).count();
            let recv = (0..rounds).filter(|s| r >= (1usize << s)).count();
            assert_eq!(meters[r].words_sent as usize, sent * w, "scan p={p} rank {r} sent");
            assert_eq!(meters[r].words_recv as usize, recv * w, "scan p={p} rank {r} recv");
        }
        // The closed form is the per-rank maximum, attained by rank p−1.
        let max_duplex = meters.iter().map(Meter::duplex_words).max().unwrap_or(0);
        assert_eq!(max_duplex as f64, model.words, "scan p={p} duplex vs model");
        let max_flops = meters.iter().map(|m| m.flops).fold(0.0, f64::max);
        assert_eq!(max_flops, model.flops, "scan p={p} flops vs model");
    }
}

#[test]
fn exscan_shifts_the_scan_by_one_rank_at_the_same_cost() {
    let (p, w) = (7usize, 3usize);
    let (values, meters) = run_collective(p, move |rank| {
        let comm = rank.world_comm();
        exscan(rank, &comm, &contribution(rank.world_rank(), w))
    });
    for (r, v) in values.iter().enumerate() {
        let want: Vec<f64> = (0..w).map(|e| (0..r).map(|q| contribution(q, w)[e]).sum()).collect();
        assert_eq!(v, &want, "exscan rank {r}");
    }
    let model = costs::exscan_cost(p, w);
    let max_duplex = meters.iter().map(Meter::duplex_words).max().unwrap_or(0);
    assert_eq!(max_duplex as f64, model.words, "exscan duplex vs model");
}

#[test]
fn alltoall_transposes_blocks_and_every_rank_meets_the_cost_model() {
    for p in [2usize, 4, 6, 8] {
        let w = 3;
        let (values, meters) = run_collective(p, move |rank| {
            let me = rank.world_rank();
            // Block destined for rank j carries (me, j)-tagged values.
            let data: Vec<f64> =
                (0..p * w).map(|i| (me * 1000 + (i / w) * 10 + i % w) as f64).collect();
            let comm = rank.world_comm();
            all_to_all(rank, &comm, &data, AllToAllAlgo::Pairwise)
        });
        let model = costs::all_to_all_cost(AllToAllAlgo::Pairwise, p, w);
        for (r, v) in values.iter().enumerate() {
            // Oracle: slot j of rank r's output is rank j's block for r.
            let want: Vec<f64> =
                (0..p * w).map(|i| ((i / w) * 1000 + r * 10 + i % w) as f64).collect();
            assert_eq!(v, &want, "alltoall p={p} rank {r}");
            // Pairwise exchange is perfectly symmetric: every rank sends
            // and receives exactly (p−1)·w words.
            assert_eq!(meters[r].words_sent as f64, model.words, "p={p} rank {r} sent");
            assert_eq!(meters[r].words_recv as f64, model.words, "p={p} rank {r} recv");
            assert_eq!(meters[r].msgs_sent as f64, model.messages, "p={p} rank {r} msgs");
        }
    }
}

#[test]
fn bcast_delivers_root_data_from_any_root_and_meets_the_cost_model() {
    for p in [2usize, 3, 5, 8] {
        for root in [0, p / 2, p - 1] {
            let w = p * 2; // p | w, so both algorithms are legal.
            for algo in [BcastAlgo::Binomial, BcastAlgo::ScatterAllGather] {
                let (values, meters) = run_collective(p, move |rank| {
                    let comm = rank.world_comm();
                    bcast(rank, &comm, &contribution(root, w), root, algo)
                });
                let want = contribution(root, w);
                for (r, v) in values.iter().enumerate() {
                    assert_eq!(v, &want, "bcast {algo:?} p={p} root={root} rank {r}");
                }
                // The model reports the critical-path rank: the root for
                // the binomial tree (⌈log2 p⌉ sends of w), any rank for
                // scatter–all-gather (duplex (p−1)/p·2w).
                let model = costs::bcast_cost(algo, p, w);
                let max_duplex = meters.iter().map(Meter::duplex_words).max().unwrap_or(0);
                assert_eq!(
                    max_duplex as f64, model.words,
                    "bcast {algo:?} p={p} root={root} duplex vs model"
                );
            }
        }
    }
}

#[test]
fn allreduce_all_algorithms_match_the_serial_sum() {
    // Power-of-two p with p | w: all three selectable algorithms.
    for p in [2usize, 4, 8] {
        let w = p * 3;
        for algo in [
            AllReduceAlgo::ReduceScatterAllGather,
            AllReduceAlgo::RecursiveDoubling,
            AllReduceAlgo::Auto,
        ] {
            let (values, meters) = run_collective(p, move |rank| {
                let comm = rank.world_comm();
                all_reduce(rank, &comm, &contribution(rank.world_rank(), w), algo)
            });
            let want: Vec<f64> =
                (0..w).map(|e| (0..p).map(|q| contribution(q, w)[e]).sum()).collect();
            for (r, v) in values.iter().enumerate() {
                assert_eq!(v, &want, "allreduce {algo:?} p={p} rank {r}");
            }
            // Both power-of-two algorithms are rank-symmetric: every
            // rank's duplex volume equals the model exactly.
            let model = costs::all_reduce_cost(algo, p, w);
            for (r, m) in meters.iter().enumerate() {
                assert_eq!(
                    m.duplex_words() as f64,
                    model.words,
                    "allreduce {algo:?} p={p} rank {r} duplex vs model"
                );
            }
        }
    }
    // Non-power-of-two p exercises the v-collective fallback; the uniform
    // cost model is an approximation there, so only semantics + global
    // conservation are exact.
    for p in [3usize, 6] {
        let w = 5;
        let (values, meters) = run_collective(p, move |rank| {
            let comm = rank.world_comm();
            all_reduce(rank, &comm, &contribution(rank.world_rank(), w), AllReduceAlgo::Auto)
        });
        let want: Vec<f64> = (0..w).map(|e| (0..p).map(|q| contribution(q, w)[e]).sum()).collect();
        for (r, v) in values.iter().enumerate() {
            assert_eq!(v, &want, "allreduce auto p={p} rank {r}");
        }
        let sent: u64 = meters.iter().map(|m| m.words_sent).sum();
        let recv: u64 = meters.iter().map(|m| m.words_recv).sum();
        assert_eq!(sent, recv, "allreduce auto p={p} conservation");
    }
}

#[test]
fn collectives_on_split_subcommunicators_use_local_sizes() {
    // Two color groups of different sizes (4 and 2): each runs its own
    // scan + bcast; oracles and meters are per-subcommunicator.
    let p = 6usize;
    let w = 2usize;
    let (values, meters) = run_collective(p, move |rank| {
        let world = rank.world_comm();
        let me = rank.world_rank();
        let color = usize::from(me >= 4);
        let sub = rank.split(&world, color as i64, me as i64).expect("member of a color");
        let s = scan(rank, &sub, &contribution(me, w));
        let b = bcast(rank, &sub, &contribution(100 + color, w), 0, BcastAlgo::Binomial);
        (s, b)
    });
    for (r, (s, b)) in values.iter().enumerate() {
        let lo = if r < 4 { 0 } else { 4 };
        let want_scan: Vec<f64> =
            (0..w).map(|e| (lo..=r).map(|q| contribution(q, w)[e]).sum()).collect();
        assert_eq!(s, &want_scan, "sub-scan rank {r}");
        let color = usize::from(r >= 4);
        assert_eq!(b, &contribution(100 + color, w), "sub-bcast rank {r}");
    }
    // Meters reflect the subgroup size, not the world size: the largest
    // duplex in the 2-rank group is the 2-rank model, not the 6-rank one.
    let small_model = costs::scan_cost(2, w) + costs::bcast_cost(BcastAlgo::Binomial, 2, w);
    let small_max = meters[4..].iter().map(Meter::duplex_words).max().unwrap_or(0);
    assert_eq!(small_max as f64, small_model.words);
}
