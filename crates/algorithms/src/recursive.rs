//! The CARMA-style recursive algorithm (Demmel et al. 2013): both the
//! closed-form communication cost used as an analytic baseline, and a
//! full **executed implementation** on the simulated machine.
//!
//! The algorithm repeatedly splits the *largest* of the three dimensions
//! in half, assigning half the processors to each subproblem (a BFS
//! step). Splitting a non-contracted dimension (`n1` or `n3`) means both
//! halves need the matrix that does **not** contain that dimension, so
//! each processor exchanges its share of it (`words/P`); splitting the
//! contracted dimension `n2` means the two halves' partial `C`s must be
//! combined (`|C|/P` per processor).
//!
//! ```text
//!   W(m, n, k, 1) = 0
//!   W(m, n, k, P) = |shared matrix|/P + W(split dims, P/2)
//! ```
//!
//! The executed version uses the **CARMA layout**: a processor's share of
//! each matrix is defined by its path down the recursion tree — split
//! matrices are halved *semantically* (sub-matrix), shared matrices are
//! halved *flat* between the paired processors of the two halves, so a
//! single pairwise exchange per level reconstitutes exactly the share the
//! subproblem's layout requires. Consequently the executed communication
//! matches the closed form to the word (see tests), which is what lets
//! the `algo_compare` experiment use the cheap recursion at scale.
//!
//! Demmel et al. prove this algorithm attains all three cases of the
//! memory-independent bound *asymptotically* (their Table I); it does not
//! track constants — the gap Theorem 3 closes. `P` must be a power of
//! two, and every split dimension must be even along the recursion.

use pmm_dense::{gemm, Kernel, Matrix};
use pmm_model::MatMulDims;
use pmm_simnet::{poll_now, Comm, LocalBoxFuture, Rank};

/// Per-processor communication (words) of the recursive CARMA-style
/// algorithm, unlimited memory. Panics unless `p` is a power of two.
pub fn carma_cost_words(dims: MatMulDims, p: u64) -> f64 {
    assert!(p >= 1 && p & (p - 1) == 0, "CARMA cost model requires power-of-two P");
    recurse(dims.n1 as f64, dims.n2 as f64, dims.n3 as f64, p as f64)
}

fn recurse(n1: f64, n2: f64, n3: f64, p: f64) -> f64 {
    if p <= 1.0 {
        return 0.0;
    }
    // Largest dimension; ties prefer the non-contracted dimensions (so
    // square problems defer the k-split reductions — matches the BFS
    // description).
    let step;
    let rec;
    if n1 >= n2 && n1 >= n3 {
        // split m = n1: both halves need all of B (n2×n3)
        step = n2 * n3 / p;
        rec = recurse(n1 / 2.0, n2, n3, p / 2.0);
    } else if n3 >= n1 && n3 >= n2 {
        // split the other non-contracted dim n3: both halves need A
        step = n1 * n2 / p;
        rec = recurse(n1, n2, n3 / 2.0, p / 2.0);
    } else {
        // split contracted dim n2: combine partial C (n1×n3)
        step = n1 * n3 / p;
        rec = recurse(n1, n2 / 2.0, n3, p / 2.0);
    }
    step + rec
}

/// Which dimension the deterministic split rule picks for `(n1, n2, n3)`:
/// the largest, preferring `n1`, then `n3`, then `n2` on ties (so square
/// problems defer the contracted-dimension split, matching the BFS
/// description).
fn split_dim(n1: usize, n2: usize, n3: usize) -> usize {
    if n1 >= n3 && n1 >= n2 {
        0
    } else if n3 >= n2 {
        2
    } else {
        1
    }
}

/// Extract the CARMA-layout initial shares of `A` and `B` for the
/// processor with index `idx` in a group of `p` (both power-of-two
/// recursion; `a`/`b` are the global matrices, read only for the share).
pub fn carma_shares(p: usize, idx: usize, a: &Matrix, b: &Matrix) -> (Vec<f64>, Vec<f64>) {
    assert!(p.is_power_of_two(), "CARMA requires power-of-two P");
    assert!(idx < p);
    if p == 1 {
        return (a.as_slice().to_vec(), b.as_slice().to_vec());
    }
    let (n1, n2, n3) = (a.rows(), a.cols(), b.cols());
    let half = p / 2;
    let lower = idx < half;
    let sub_idx = if lower { idx } else { idx - half };
    match split_dim(n1, n2, n3) {
        0 => {
            // split n1: A halved semantically; B shared (flat-halved).
            assert!(n1 % 2 == 0, "split dimension n1 = {n1} must be even");
            let a_half = if lower { a.sub(0, 0, n1 / 2, n2) } else { a.sub(n1 / 2, 0, n1 / 2, n2) };
            let (a_share, b_dist) = carma_shares(half, sub_idx, &a_half, b);
            let l = b_dist.len();
            let b_share = if lower { b_dist[..l / 2].to_vec() } else { b_dist[l / 2..].to_vec() };
            (a_share, b_share)
        }
        2 => {
            // split n3: B halved semantically; A shared (flat-halved).
            assert!(n3 % 2 == 0, "split dimension n3 = {n3} must be even");
            let b_half = if lower { b.sub(0, 0, n2, n3 / 2) } else { b.sub(0, n3 / 2, n2, n3 / 2) };
            let (a_dist, b_share) = carma_shares(half, sub_idx, a, &b_half);
            let l = a_dist.len();
            let a_share = if lower { a_dist[..l / 2].to_vec() } else { a_dist[l / 2..].to_vec() };
            (a_share, b_share)
        }
        _ => {
            // split n2: both inputs halved semantically; C is the shared one.
            assert!(n2 % 2 == 0, "split dimension n2 = {n2} must be even");
            let (a_half, b_half) = if lower {
                (a.sub(0, 0, n1, n2 / 2), b.sub(0, 0, n2 / 2, n3))
            } else {
                (a.sub(0, n2 / 2, n1, n2 / 2), b.sub(n2 / 2, 0, n2 / 2, n3))
            };
            carma_shares(half, sub_idx, &a_half, &b_half)
        }
    }
}

/// Run the executed CARMA recursion on communicator `comm` (its size must
/// be a power of two). `a_share`/`b_share` are this rank's CARMA-layout
/// shares (from [`carma_shares`]). Returns this rank's share of `C`
/// (CARMA layout; reassemble with [`carma_assemble_c`]).
pub fn carma(
    rank: &mut Rank,
    comm: &Comm,
    dims: MatMulDims,
    kernel: Kernel,
    a_share: Vec<f64>,
    b_share: Vec<f64>,
) -> Vec<f64> {
    poll_now(carma_a(rank, comm, dims, kernel, a_share, b_share))
}

/// Async form of [`carma`] (event-loop programs). Boxed because the
/// recursion would otherwise make the future type infinitely sized.
pub fn carma_a<'r>(
    rank: &'r mut Rank,
    comm: &'r Comm,
    dims: MatMulDims,
    kernel: Kernel,
    a_share: Vec<f64>,
    b_share: Vec<f64>,
) -> LocalBoxFuture<'r, Vec<f64>> {
    Box::pin(async move {
        let p = comm.size();
        assert!(p.is_power_of_two(), "CARMA requires power-of-two P");
        let (n1, n2, n3) = (dims.n1 as usize, dims.n2 as usize, dims.n3 as usize);
        if p == 1 {
            return pmm_simnet::phase!(rank, "local multiply", {
                let a = Matrix::from_vec(n1, n2, a_share);
                let b = Matrix::from_vec(n2, n3, b_share);
                rank.compute((n1 * n2 * n3) as f64);
                gemm(&a, &b, kernel).into_vec()
            });
        }
        let half = p / 2;
        let me = comm.index();
        let lower = me < half;
        let partner = if lower { me + half } else { me - half };
        let sub_color = if lower { 0 } else { 1 };
        match split_dim(n1, n2, n3) {
            0 => {
                // split n1: exchange B shares so both halves hold the full
                // (p/2)-distribution of B.
                let msg = pmm_simnet::phase!(
                    rank,
                    "exchange B",
                    rank.sendrecv_a(comm, partner, &b_share).await
                );
                let combined = if lower {
                    [b_share, msg.payload].concat()
                } else {
                    [msg.payload, b_share].concat()
                };
                rank.mem_acquire((combined.len() / 2) as u64);
                let subcomm =
                    rank.split_a(comm, sub_color, me as i64).await.expect("subcommunicator");
                let subdims = MatMulDims::new(dims.n1 / 2, dims.n2, dims.n3);
                carma_a(rank, &subcomm, subdims, kernel, a_share, combined).await
            }
            2 => {
                // split n3: exchange A shares.
                let msg = pmm_simnet::phase!(
                    rank,
                    "exchange A",
                    rank.sendrecv_a(comm, partner, &a_share).await
                );
                let combined = if lower {
                    [a_share, msg.payload].concat()
                } else {
                    [msg.payload, a_share].concat()
                };
                rank.mem_acquire((combined.len() / 2) as u64);
                let subcomm =
                    rank.split_a(comm, sub_color, me as i64).await.expect("subcommunicator");
                let subdims = MatMulDims::new(dims.n1, dims.n2, dims.n3 / 2);
                carma_a(rank, &subcomm, subdims, kernel, combined, b_share).await
            }
            _ => {
                // split n2: recurse first, then combine the partial C shares —
                // keep my half of the distribution, send the other half.
                let subcomm =
                    rank.split_a(comm, sub_color, me as i64).await.expect("subcommunicator");
                let subdims = MatMulDims::new(dims.n1, dims.n2 / 2, dims.n3);
                let partial = carma_a(rank, &subcomm, subdims, kernel, a_share, b_share).await;
                let l = partial.len();
                assert!(l.is_multiple_of(2), "partial C share must split evenly");
                let (keep_range, send_range) =
                    if lower { (0..l / 2, l / 2..l) } else { (l / 2..l, 0..l / 2) };
                pmm_simnet::phase!(rank, "combine C", {
                    let msg = rank.sendrecv_a(comm, partner, &partial[send_range]).await;
                    let mut kept = partial[keep_range].to_vec();
                    assert_eq!(msg.payload.len(), kept.len(), "partial C exchange mismatch");
                    for (x, &y) in kept.iter_mut().zip(&msg.payload) {
                        *x += y;
                    }
                    rank.compute(kept.len() as f64);
                    kept
                })
            }
        }
    })
}

/// Reassemble the global `C` from every rank's CARMA-layout share
/// (test/harness helper, runs outside the simulated machine).
pub fn carma_assemble_c(dims: MatMulDims, p: usize, shares: &[Vec<f64>]) -> Matrix {
    assert_eq!(shares.len(), p);
    let mut c = Matrix::zeros(dims.n1 as usize, dims.n3 as usize);
    for (r, share) in shares.iter().enumerate() {
        place_c(p, r, dims.n1 as usize, dims.n2 as usize, dims.n3 as usize, share, &mut c, 0, 0);
    }
    c
}

/// Recursively locate rank `idx`'s C share within the output. `(r0, c0)`
/// is the global offset of the current `n1 × n3` sub-output. Mirrors the
/// split rule of [`carma`] exactly, including how the final `C`
/// distribution halves flat at `n2` splits.
#[allow(clippy::too_many_arguments)] // mirrors the recursion state one-to-one
fn place_c(
    p: usize,
    idx: usize,
    n1: usize,
    n2: usize,
    n3: usize,
    share: &[f64],
    out: &mut Matrix,
    r0: usize,
    c0: usize,
) {
    if p == 1 {
        let block = Matrix::from_vec(n1, n3, share.to_vec());
        out.set_sub(r0, c0, &block);
        return;
    }
    let half = p / 2;
    let lower = idx < half;
    let sub_idx = if lower { idx } else { idx - half };
    match split_dim(n1, n2, n3) {
        0 => {
            let r0 = if lower { r0 } else { r0 + n1 / 2 };
            place_c(half, sub_idx, n1 / 2, n2, n3, share, out, r0, c0);
        }
        2 => {
            let c0 = if lower { c0 } else { c0 + n3 / 2 };
            place_c(half, sub_idx, n1, n2, n3 / 2, share, out, r0, c0);
        }
        _ => {
            // n2-split: the final share is my half of the (p/2)-level
            // distribution — reconstruct by descending with a *virtual*
            // share twice as long, of which we hold the lower/upper flat
            // half. We realize this by descending to the leaf to find the
            // leaf block, then taking the flat half chain.
            place_c_n2(half, sub_idx, n1, n2 / 2, n3, share, lower, out, r0, c0);
        }
    }
}

/// After an `n2` split, rank shares are flat halves of the subproblem's C
/// distribution. Descend the remaining recursion keeping track of which
/// flat fraction (offset/fraction within the leaf block) this share is.
#[allow(clippy::too_many_arguments)]
fn place_c_n2(
    p: usize,
    idx: usize,
    n1: usize,
    n2: usize,
    n3: usize,
    share: &[f64],
    took_lower_half: bool,
    out: &mut Matrix,
    r0: usize,
    c0: usize,
) {
    // The flat halving composes: the leaf block (n1_leaf × n3_leaf) is a
    // contiguous row-major buffer of which this rank holds a contiguous
    // run. Track (num, den) position: we hold [off, off + len) of the
    // leaf's flat buffer.
    let mut p = p;
    let mut idx = idx;
    let (mut n1, mut n2, mut n3) = (n1, n2, n3);
    let (mut r0, mut c0) = (r0, c0);
    // fraction state: we hold the `which`-th of `parts` equal flat pieces
    let mut parts = 2usize;
    let mut which = if took_lower_half { 0usize } else { 1 };
    loop {
        if p == 1 {
            let rows = n1;
            let cols = n3;
            let total = rows * cols;
            let len = total / parts;
            assert_eq!(share.len(), len, "C share length mismatch in reassembly");
            let off = which * len;
            // Paste the contiguous run [off, off+len) of the row-major
            // leaf block.
            for (i, &v) in share.iter().enumerate() {
                let flat = off + i;
                let r = flat / cols;
                let c = flat % cols;
                out[(r0 + r, c0 + c)] += v;
            }
            return;
        }
        let half = p / 2;
        let lower = idx < half;
        let sub_idx = if lower { idx } else { idx - half };
        match split_dim(n1, n2, n3) {
            0 => {
                if !lower {
                    r0 += n1 / 2;
                }
                n1 /= 2;
            }
            2 => {
                if !lower {
                    c0 += n3 / 2;
                }
                n3 /= 2;
            }
            _ => {
                // A deeper n2-split is the *coarser* selection: it picks a
                // half of the leaf buffer, inside which our selection so
                // far applies. offset = w·(L/2) + which·(L/2)/parts ⇒
                // which' = w·parts + which, parts' = 2·parts.
                n2 /= 2;
                which += usize::from(!lower) * parts;
                parts *= 2;
            }
        }
        p = half;
        idx = sub_idx;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmm_core::theorem3::lower_bound;

    #[test]
    fn zero_for_single_processor() {
        assert_eq!(carma_cost_words(MatMulDims::square(1000), 1), 0.0);
    }

    #[test]
    fn within_constant_factor_of_bound_in_all_cases() {
        // Asymptotic optimality: cost / bound stays bounded (Demmel et al.
        // Table I). Check a generous constant across the three cases.
        let dims = MatMulDims::new(8192, 2048, 512);
        for p in [2u64, 4, 32, 256, 4096, 65536] {
            let w = carma_cost_words(dims, p);
            let b = lower_bound(dims, p as f64).bound;
            assert!(w >= b * 0.99, "P={p}: CARMA {w} below bound {b}?!");
            assert!(w <= 8.0 * b.max(1.0), "P={p}: CARMA {w} not within 8× of bound {b}");
        }
    }

    #[test]
    fn never_beats_the_lower_bound() {
        for (dims, ps) in [
            (MatMulDims::square(4096), vec![8u64, 64, 512]),
            (MatMulDims::new(16384, 256, 64), vec![2, 16, 128]),
        ] {
            for p in ps {
                let w = carma_cost_words(dims, p);
                let b = lower_bound(dims, p as f64).bound;
                assert!(w >= b * (1.0 - 1e-9), "{dims} P={p}: {w} < bound {b}");
            }
        }
    }

    #[test]
    fn splits_follow_the_largest_dimension() {
        // Tall-skinny: first split is m, cost |B|/P each level while m
        // dominates.
        let dims = MatMulDims::new(1 << 20, 4, 4);
        let w = carma_cost_words(dims, 2);
        assert_eq!(w, 16.0 / 2.0, "one m-split exchanges B/P");
    }

    #[test]
    fn cost_is_monotone_in_problem_size() {
        for p in [8u64, 64] {
            let small = carma_cost_words(MatMulDims::square(512), p);
            let big = carma_cost_words(MatMulDims::square(1024), p);
            assert!(big > small);
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_non_pow2() {
        carma_cost_words(MatMulDims::square(64), 3);
    }

    // ----- executed CARMA ---------------------------------------------------

    use pmm_dense::random_int_matrix;
    use pmm_simnet::{MachineParams, World};

    fn run_carma(
        dims: MatMulDims,
        p: usize,
        seed: u64,
    ) -> (Matrix, pmm_simnet::WorldResult<Vec<f64>>) {
        let (n1, n2, n3) = (dims.n1 as usize, dims.n2 as usize, dims.n3 as usize);
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let a = random_int_matrix(n1, n2, -3..4, seed);
            let b = random_int_matrix(n2, n3, -3..4, seed + 1);
            let (a_share, b_share) = carma_shares(p, rank.world_rank(), &a, &b);
            let comm = rank.world_comm();
            carma(rank, &comm, dims, Kernel::Naive, a_share, b_share)
        });
        let c = carma_assemble_c(dims, p, &out.values);
        (c, out)
    }

    fn reference(dims: MatMulDims, seed: u64) -> Matrix {
        let a = random_int_matrix(dims.n1 as usize, dims.n2 as usize, -3..4, seed);
        let b = random_int_matrix(dims.n2 as usize, dims.n3 as usize, -3..4, seed + 1);
        gemm(&a, &b, Kernel::Naive)
    }

    #[test]
    fn executed_carma_is_correct() {
        for (dims, p) in [
            (MatMulDims::square(16), 1usize),
            (MatMulDims::square(16), 2),
            (MatMulDims::square(16), 8),
            (MatMulDims::new(32, 8, 16), 4),
            (MatMulDims::new(64, 16, 8), 16),
            (MatMulDims::new(8, 32, 8), 8), // contracted dim dominates
        ] {
            let (c, _) = run_carma(dims, p, 91);
            assert_eq!(c, reference(dims, 91), "{dims} P={p}");
        }
    }

    #[test]
    fn executed_carma_matches_the_cost_model_exactly() {
        // The closed form used by algo_compare is exactly what the
        // execution pays: shares are equal-sized, exchanges are duplex, so
        // the critical-path clock equals the recursion sum.
        for (dims, p) in [
            (MatMulDims::square(32), 8usize),
            (MatMulDims::new(64, 16, 32), 16),
            (MatMulDims::new(128, 8, 8), 8),
        ] {
            let (_, out) = run_carma(dims, p, 13);
            let want = carma_cost_words(dims, p as u64);
            let got = out.critical_path_time();
            assert!((got - want).abs() < 1e-9, "{dims} P={p}: measured {got} vs model {want}");
        }
    }

    #[test]
    fn executed_carma_shares_have_expected_sizes() {
        // Every rank's input share is exactly 1/P of each matrix.
        let dims = MatMulDims::new(32, 16, 8);
        let p = 8usize;
        let a = random_int_matrix(dims.n1 as usize, dims.n2 as usize, -1..2, 5);
        let b = random_int_matrix(dims.n2 as usize, dims.n3 as usize, -1..2, 6);
        for r in 0..p {
            let (sa, sb) = carma_shares(p, r, &a, &b);
            assert_eq!(sa.len() as f64, dims.words_of(pmm_model::MatrixId::A) / p as f64);
            assert_eq!(sb.len() as f64, dims.words_of(pmm_model::MatrixId::B) / p as f64);
        }
    }

    #[test]
    fn executed_carma_is_load_balanced() {
        let (_, out) = run_carma(MatMulDims::square(32), 8, 3);
        let flops: Vec<f64> = out.reports.iter().map(|r| r.meter.flops).collect();
        for f in &flops {
            assert_eq!(*f, flops[0], "compute must be perfectly balanced");
        }
        let words: Vec<u64> = out.reports.iter().map(|r| r.meter.words_sent).collect();
        for w in &words {
            assert_eq!(*w, words[0], "communication must be perfectly balanced");
        }
    }
}
