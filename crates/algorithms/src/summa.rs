//! SUMMA — the broadcast-based 2D algorithm used by standard libraries
//! (van de Geijn & Watts; the baseline §2.4 algorithms outperform).
//!
//! `P = pr × pc` processors. `C` is distributed as `pr × pc` blocks. The
//! inner dimension is partitioned into `s = lcm(pr, pc)` panels; panel `t`
//! of `A` (block `(i, t)` of the `pr × s` partition) lives on process
//! column `t mod pc`, and panel `t` of `B` on process row `t mod pr`
//! (block-cyclic layout). Each step broadcasts one `A` panel along each
//! process row and one `B` panel down each process column, then
//! accumulates.
//!
//! Broadcasts use the van-de-Geijn scatter–all-gather algorithm when the
//! panel size divides evenly (bandwidth `2(1 − 1/p)·w`), falling back to a
//! binomial tree otherwise. SUMMA therefore moves `≈ 2·(n1n2/pr + n2n3/pc)`
//! words per rank — asymptotically 2D-optimal for square problems, but it
//! always communicates both inputs, unlike Algorithm 1 whose optimal grid
//! communicates only the matrices that must move.

use pmm_dense::{block_range, gemm_acc, Kernel, Matrix};
use pmm_model::MatMulDims;
use pmm_simnet::{poll_now, Comm, Rank};

use pmm_collectives::{bcast_a, BcastAlgo};

/// Configuration for [`summa`].
#[derive(Debug, Clone)]
pub struct SummaConfig {
    /// Problem dimensions.
    pub dims: MatMulDims,
    /// Process-grid rows (world size must be `pr·pc`).
    pub pr: usize,
    /// Process-grid columns.
    pub pc: usize,
    /// Local compute kernel.
    pub kernel: Kernel,
}

/// Per-rank result of [`summa`].
#[derive(Debug, Clone)]
pub struct SummaOutput {
    /// This rank's `C` block (block `(i, j)` of the `pr × pc` partition).
    pub c_block: Matrix,
}

fn lcm(a: usize, b: usize) -> usize {
    fn gcd(mut a: usize, mut b: usize) -> usize {
        while b != 0 {
            (a, b) = (b, a % b);
        }
        a
    }
    a / gcd(a, b) * b
}

/// Run SUMMA. `a`/`b` are the global inputs, read only for this rank's
/// owned panels.
pub fn summa(rank: &mut Rank, cfg: &SummaConfig, a: &Matrix, b: &Matrix) -> SummaOutput {
    poll_now(summa_a(rank, cfg, a, b))
}

/// Async form of [`summa`] (event-loop programs).
pub async fn summa_a(rank: &mut Rank, cfg: &SummaConfig, a: &Matrix, b: &Matrix) -> SummaOutput {
    let world = rank.world_comm();
    summa_on_a(rank, &world, cfg, a, b).await
}

/// [`summa`] generalized to an arbitrary base communicator of size
/// `pr·pc`: this rank's grid position is its index in `base`, and the
/// row/column communicators are split from `base`. Failure recovery uses
/// this to re-run SUMMA on the surviving ranks — see
/// [`crate::recovery::run_recoverable`].
pub fn summa_on(
    rank: &mut Rank,
    base: &Comm,
    cfg: &SummaConfig,
    a: &Matrix,
    b: &Matrix,
) -> SummaOutput {
    poll_now(summa_on_a(rank, base, cfg, a, b))
}

/// Async form of [`summa_on`] (event-loop programs).
pub async fn summa_on_a(
    rank: &mut Rank,
    base: &Comm,
    cfg: &SummaConfig,
    a: &Matrix,
    b: &Matrix,
) -> SummaOutput {
    let (pr, pc) = (cfg.pr, cfg.pc);
    assert_eq!(base.size(), pr * pc, "base communicator size must be pr·pc");
    let dims = cfg.dims;
    let (n1, n2, n3) = (dims.n1 as usize, dims.n2 as usize, dims.n3 as usize);
    let me = base.index();
    let (i, j) = (me / pc, me % pc);

    let row = rank.split_a(base, i as i64, j as i64).await.expect("row comm");
    let col = rank.split_a(base, (pr + j) as i64, i as i64).await.expect("col comm");

    let s = lcm(pr, pc);
    let my_rows = block_range(n1, pr, i).len();
    let my_cols = block_range(n3, pc, j).len();
    let mut c = Matrix::zeros(my_rows, my_cols);
    rank.mem_acquire(c.words() as u64);

    let ra = block_range(n1, pr, i);
    let rb = block_range(n3, pc, j);
    for t in 0..s {
        let panel = block_range(n2, s, t);
        // --- broadcast A(i, t) along the process row -----------------------
        let root_col = t % pc;
        let a_panel_words = my_rows * panel.len();
        let a_data = if j == root_col {
            a.sub(ra.start, panel.start, my_rows, panel.len()).into_vec()
        } else {
            vec![0.0; a_panel_words]
        };
        let a_panel = pmm_simnet::phase!(
            rank,
            "broadcast A",
            bcast_panel(rank, &row, &a_data, root_col).await
        );
        let a_panel = Matrix::from_vec(my_rows, panel.len(), a_panel);

        // --- broadcast B(t, j) down the process column ---------------------
        let root_row = t % pr;
        let b_panel_words = panel.len() * my_cols;
        let b_data = if i == root_row {
            b.sub(panel.start, rb.start, panel.len(), my_cols).into_vec()
        } else {
            vec![0.0; b_panel_words]
        };
        let b_panel = pmm_simnet::phase!(
            rank,
            "broadcast B",
            bcast_panel(rank, &col, &b_data, root_row).await
        );
        let b_panel = Matrix::from_vec(panel.len(), my_cols, b_panel);

        pmm_simnet::phase!(rank, "local multiply", {
            gemm_acc(&mut c, &a_panel, &b_panel, cfg.kernel);
            rank.compute((my_rows * panel.len() * my_cols) as f64);
        });
    }

    SummaOutput { c_block: c }
}

/// The most-square `pr × pc` factorization of `p` (`pr ≤ pc`, `pr·pc =
/// p`): the grid shape recovery lays over an arbitrary survivor count.
pub fn near_square_factors(p: usize) -> (usize, usize) {
    assert!(p >= 1);
    let mut pr = 1;
    let mut d = 1;
    while d * d <= p {
        if p.is_multiple_of(d) {
            pr = d;
        }
        d += 1;
    }
    (pr, p / pr)
}

async fn bcast_panel(
    rank: &mut Rank,
    comm: &pmm_simnet::Comm,
    data: &[f64],
    root: usize,
) -> Vec<f64> {
    let algo = if comm.size() > 1 && !data.is_empty() && data.len().is_multiple_of(comm.size()) {
        BcastAlgo::ScatterAllGather
    } else {
        BcastAlgo::Binomial
    };
    bcast_a(rank, comm, data, root, algo).await
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::assemble_from_blocks;
    use pmm_dense::{gemm, random_int_matrix};
    use pmm_simnet::{MachineParams, World};

    fn run(
        dims: MatMulDims,
        pr: usize,
        pc: usize,
    ) -> (Matrix, pmm_simnet::WorldResult<SummaOutput>) {
        let cfg = SummaConfig { dims, pr, pc, kernel: Kernel::Naive };
        let out = World::new(pr * pc, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let a = random_int_matrix(dims.n1 as usize, dims.n2 as usize, -3..4, 15);
            let b = random_int_matrix(dims.n2 as usize, dims.n3 as usize, -3..4, 16);
            summa(rank, &cfg, &a, &b)
        });
        let c = assemble_from_blocks(dims.n1 as usize, dims.n3 as usize, pr, pc, |i, j| {
            out.values[i * pc + j].c_block.clone()
        });
        (c, out)
    }

    fn reference(dims: MatMulDims) -> Matrix {
        let a = random_int_matrix(dims.n1 as usize, dims.n2 as usize, -3..4, 15);
        let b = random_int_matrix(dims.n2 as usize, dims.n3 as usize, -3..4, 16);
        gemm(&a, &b, Kernel::Naive)
    }

    #[test]
    fn correct_on_square_grids() {
        let dims = MatMulDims::new(12, 12, 12);
        for q in [1usize, 2, 3] {
            let (c, _) = run(dims, q, q);
            assert_eq!(c, reference(dims), "grid {q}x{q}");
        }
    }

    #[test]
    fn correct_on_rectangular_grids() {
        let dims = MatMulDims::new(12, 6, 8);
        for (pr, pc) in [(2usize, 3usize), (3, 2), (4, 1), (1, 4), (2, 4)] {
            let (c, _) = run(dims, pr, pc);
            assert_eq!(c, reference(dims), "grid {pr}x{pc}");
        }
    }

    #[test]
    fn correct_on_uneven_dims() {
        let dims = MatMulDims::new(7, 11, 5);
        for (pr, pc) in [(2usize, 2usize), (3, 2)] {
            let (c, _) = run(dims, pr, pc);
            assert_eq!(c, reference(dims), "grid {pr}x{pc}");
        }
    }

    #[test]
    fn single_rank_no_communication() {
        let dims = MatMulDims::new(4, 4, 4);
        let (c, out) = run(dims, 1, 1);
        assert_eq!(c, reference(dims));
        assert_eq!(out.total_words_sent(), 0.0);
    }

    #[test]
    fn critical_path_matches_sag_bcast_model() {
        // Per-rank bandwidth cost ≈ 2(1−1/pc)·n1n2/pr + 2(1−1/pr)·n2n3/pc
        // with SAG broadcasts (each panel costs 2(1−1/p)·w on the critical
        // path, every step synchronizes the row/column).
        let dims = MatMulDims::new(24, 24, 24);
        let (pr, pc) = (2usize, 2usize);
        let (_, out) = run(dims, pr, pc);
        let a_stripe = (24.0 / pr as f64) * 24.0;
        let b_stripe = 24.0 * (24.0 / pc as f64);
        let want =
            2.0 * (1.0 - 1.0 / pc as f64) * a_stripe + 2.0 * (1.0 - 1.0 / pr as f64) * b_stripe;
        let got = out.critical_path_time();
        assert!((got - want).abs() <= 1e-9, "critical path {got} vs model {want}");
    }
}
