//! Cannon's algorithm — the classic 2D baseline (§2.4 context).
//!
//! `P = q²` processors in a `q × q` grid; every matrix is distributed as
//! `q × q` blocks with block `(i, j)` on processor `(i, j)`. After an
//! initial *skew* (block-row `i` of `A` rotated left by `i`, block-column
//! `j` of `B` rotated up by `j`), the algorithm performs `q`
//! multiply-accumulate steps, rotating `A` left and `B` up by one between
//! steps.
//!
//! Per-processor communication: the skew plus `q − 1` rotations of one
//! `A`-block and one `B`-block each — `Θ(q·(n1n2 + n2n3)/P)` words. For
//! square matrices this matches the 2D-optimal `Θ(n²/√P)`; for rectangular
//! instances in the paper's 1D/2D cases it can lose badly to Algorithm 1
//! with the §5.2 grid, which is exactly what the `algo_compare` experiment
//! shows.

use pmm_dense::{block_range, gemm_acc, Kernel, Matrix};
use pmm_model::MatMulDims;
use pmm_simnet::{poll_now, Comm, Rank};

/// Configuration for [`cannon`].
#[derive(Debug, Clone)]
pub struct CannonConfig {
    /// Problem dimensions.
    pub dims: MatMulDims,
    /// Grid edge `q` (world size must be `q²`).
    pub q: usize,
    /// Local compute kernel.
    pub kernel: Kernel,
}

/// Per-rank result of [`cannon`].
#[derive(Debug, Clone)]
pub struct CannonOutput {
    /// This rank's `C` block (block `(i, j)` of the `q × q` partition).
    pub c_block: Matrix,
}

/// Extract the `(i, j)` blocks of `A` and `B` owned initially by rank
/// `(i, j)`.
fn owned_blocks(
    dims: MatMulDims,
    q: usize,
    i: usize,
    j: usize,
    a: &Matrix,
    b: &Matrix,
) -> (Matrix, Matrix) {
    let (n1, n2, n3) = (dims.n1 as usize, dims.n2 as usize, dims.n3 as usize);
    let ra = block_range(n1, q, i);
    let ca = block_range(n2, q, j);
    let rb = block_range(n2, q, i);
    let cb = block_range(n3, q, j);
    (a.sub(ra.start, ca.start, ra.len(), ca.len()), b.sub(rb.start, cb.start, rb.len(), cb.len()))
}

/// Run Cannon's algorithm. `a`/`b` are the global inputs, read only for
/// this rank's owned blocks.
pub fn cannon(rank: &mut Rank, cfg: &CannonConfig, a: &Matrix, b: &Matrix) -> CannonOutput {
    poll_now(cannon_a(rank, cfg, a, b))
}

/// Async form of [`cannon`] (event-loop programs).
pub async fn cannon_a(rank: &mut Rank, cfg: &CannonConfig, a: &Matrix, b: &Matrix) -> CannonOutput {
    let q = cfg.q;
    assert_eq!(rank.world_size(), q * q, "world size must be q²");
    let world = rank.world_comm();
    cannon_on_a(rank, &world, cfg, a, b).await.expect("a q² world has no idle ranks")
}

/// Run Cannon's algorithm on communicator `base` instead of the world
/// (recovery runs use a survivor communicator). The first `q²` members
/// are active; later members participate in the two splits with a
/// negative color and return `None`.
pub async fn cannon_on_a(
    rank: &mut Rank,
    base: &Comm,
    cfg: &CannonConfig,
    a: &Matrix,
    b: &Matrix,
) -> Option<CannonOutput> {
    let q = cfg.q;
    assert!(base.size() >= q * q, "communicator too small for a q × q torus");
    let dims = cfg.dims;
    let (n1, n3) = (dims.n1 as usize, dims.n3 as usize);
    let me = base.index();
    if me >= q * q {
        // Idle member: opt out of both splits (MPI_UNDEFINED) and hold
        // no block.
        let none = rank.split_a(base, -1, me as i64).await;
        debug_assert!(none.is_none());
        let none = rank.split_a(base, -1, me as i64).await;
        debug_assert!(none.is_none());
        return None;
    }
    let (i, j) = (me / q, me % q);

    let row = rank.split_a(base, i as i64, j as i64).await.expect("row comm");
    let col = rank.split_a(base, (q + j) as i64, i as i64).await.expect("col comm");
    debug_assert_eq!(row.size(), q);
    debug_assert_eq!(col.size(), q);

    let (mut a_cur, mut b_cur) = owned_blocks(dims, q, i, j, a, b);
    rank.mem_acquire((a_cur.words() + b_cur.words()) as u64);

    let my_rows = block_range(n1, q, i).len();
    let my_cols = block_range(n3, q, j).len();
    let inner_len = |idx: usize| block_range(dims.n2 as usize, q, idx).len();
    let mut c = Matrix::zeros(my_rows, my_cols);
    rank.mem_acquire(c.words() as u64);

    // The inner-dimension block index this rank holds after the skew
    // (tracked explicitly so shapes are well-defined even for empty
    // blocks). The skew leaves rank (i, j) holding block (i + j) mod q —
    // with i == 0 that is its own block and no data moves.
    let mut inner = (i + j) % q;

    // Initial skew (only when it moves data).
    pmm_simnet::phase!(rank, "skew", {
        if q > 1 && i > 0 {
            let to = (j + q - i) % q;
            let from = (j + i) % q;
            let msg = rank.exchange_a(&row, to, from, a_cur.as_slice()).await;
            a_cur = Matrix::from_vec(my_rows, inner_len(inner), msg.payload);
        }
        if q > 1 && j > 0 {
            let to = (i + q - j) % q;
            let from = (i + j) % q;
            let msg = rank.exchange_a(&col, to, from, b_cur.as_slice()).await;
            b_cur = Matrix::from_vec(inner_len(inner), my_cols, msg.payload);
        }
    });

    for t in 0..q {
        assert_eq!(a_cur.cols(), b_cur.rows(), "inner blocks misaligned at step {t}");
        pmm_simnet::phase!(rank, "local multiply", {
            gemm_acc(&mut c, &a_cur, &b_cur, cfg.kernel);
            rank.compute((a_cur.rows() * a_cur.cols() * b_cur.cols()) as f64);
        });
        if t + 1 < q {
            // Rotate A left by one, B up by one.
            pmm_simnet::phase!(rank, "rotate", {
                let next_inner = (inner + 1) % q;
                let msg =
                    rank.exchange_a(&row, (j + q - 1) % q, (j + 1) % q, a_cur.as_slice()).await;
                a_cur = Matrix::from_vec(my_rows, inner_len(next_inner), msg.payload);
                let msg =
                    rank.exchange_a(&col, (i + q - 1) % q, (i + 1) % q, b_cur.as_slice()).await;
                b_cur = Matrix::from_vec(inner_len(next_inner), my_cols, msg.payload);
                inner = next_inner;
            });
        }
    }

    Some(CannonOutput { c_block: c })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::assemble_from_blocks;
    use pmm_dense::{gemm, random_int_matrix};
    use pmm_simnet::{MachineParams, World};

    fn run(dims: MatMulDims, q: usize) -> (Matrix, pmm_simnet::WorldResult<CannonOutput>) {
        let cfg = CannonConfig { dims, q, kernel: Kernel::Naive };
        let out = World::new(q * q, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let a = random_int_matrix(dims.n1 as usize, dims.n2 as usize, -3..4, 5);
            let b = random_int_matrix(dims.n2 as usize, dims.n3 as usize, -3..4, 6);
            cannon(rank, &cfg, &a, &b)
        });
        let c = assemble_from_blocks(dims.n1 as usize, dims.n3 as usize, q, q, |i, j| {
            out.values[i * q + j].c_block.clone()
        });
        (c, out)
    }

    fn reference(dims: MatMulDims) -> Matrix {
        let a = random_int_matrix(dims.n1 as usize, dims.n2 as usize, -3..4, 5);
        let b = random_int_matrix(dims.n2 as usize, dims.n3 as usize, -3..4, 6);
        gemm(&a, &b, Kernel::Naive)
    }

    #[test]
    fn correct_square_divisible() {
        let dims = MatMulDims::new(12, 12, 12);
        for q in [1usize, 2, 3, 4] {
            let (c, _) = run(dims, q);
            assert_eq!(c, reference(dims), "q={q}");
        }
    }

    #[test]
    fn correct_rectangular_and_uneven() {
        for dims in [MatMulDims::new(9, 6, 12), MatMulDims::new(7, 5, 11)] {
            for q in [2usize, 3] {
                let (c, _) = run(dims, q);
                assert_eq!(c, reference(dims), "{dims} q={q}");
            }
        }
    }

    #[test]
    fn single_rank_no_communication() {
        let dims = MatMulDims::new(5, 4, 3);
        let (c, out) = run(dims, 1);
        assert_eq!(c, reference(dims));
        assert_eq!(out.total_words_sent(), 0.0);
    }

    #[test]
    fn communication_volume_matches_closed_form() {
        // Divisible square case: each rank moves (q−1)(skews: ≤1 each) +
        // (q−1) rotations of one A and one B block; with the skew, ranks
        // with i>0, j>0 send exactly q·(|A|+|B|)/P − (blocks they keep).
        let n = 12u64;
        let q = 3usize;
        let dims = MatMulDims::square(n);
        let (_, out) = run(dims, q);
        let block = (n as usize / q) * (n as usize / q);
        // Rank (1,1): skew A (1) + skew B (1) + 2 rotations × 2 matrices.
        let m = &out.reports[q + 1].meter;
        assert_eq!(m.words_sent as usize, block * (2 + 2 * (q - 1)));
        // Rank (0,0) skips both skews.
        let m = &out.reports[0].meter;
        assert_eq!(m.words_sent as usize, block * (2 * (q - 1)));
    }

    #[test]
    fn loses_to_alg1_grid_on_tall_skinny() {
        // Paper's 1D case: Cannon's square grid forces communication of the
        // big matrix; Alg1 with the optimal 1D grid only moves nk words.
        use crate::grid3d::{alg1, Alg1Config};
        use pmm_core::gridopt::best_grid;
        use pmm_model::Grid3;

        let dims = MatMulDims::new(64, 16, 16); // m/n = 4 ⇒ P=4 is 1D case
        let q = 2usize; // P = 4
        let (_, cannon_out) = run(dims, q);

        let choice = best_grid(dims, 4);
        let grid = Grid3::from_dims(choice.grid);
        let cfg = Alg1Config::new(dims, grid);
        let alg1_out = World::new(4, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let a = random_int_matrix(64, 16, -3..4, 5);
            let b = random_int_matrix(16, 16, -3..4, 6);
            alg1(rank, &cfg, &a, &b)
        });
        assert!(
            alg1_out.critical_path_time() < cannon_out.critical_path_time(),
            "Alg1 {} should beat Cannon {}",
            alg1_out.critical_path_time(),
            cannon_out.critical_path_time()
        );
    }
}
