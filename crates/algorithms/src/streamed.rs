//! The low-memory variant of Algorithm 1 that §6.2 sketches: "Alg. 1 can
//! be adapted to reduce the temporary memory required to a negligible
//! amount at the expense of higher latency cost but without affecting the
//! bandwidth cost."
//!
//! The adaptation streams the contracted dimension in `t` slabs: instead
//! of all-gathering the whole `A` and `B` blocks before multiplying, each
//! slab of `A`-columns / `B`-rows is gathered, multiplied into the
//! accumulator `D`, and dropped. The gather buffers shrink by `t×`; every
//! collective runs `t` times, so the latency term grows `t×`; the words
//! moved are identical (each element still travels exactly once).
//!
//! The initial distribution is the natural slab-aligned one: each
//! processor owns, for every slab, an even chunk of that slab across its
//! fiber (the lower bound makes no assumption on distribution beyond the
//! single-copy rule, so the variant is free to choose).

use pmm_collectives::{all_gather_v_a, reduce_scatter_v_a, AllGatherAlgo, ReduceScatterAlgo};
use pmm_dense::{block_range, chunk_of_block, gemm_acc, Kernel, Matrix};
use pmm_model::{Grid3, MatMulDims};
use pmm_simnet::{poll_now, Comm, Rank};

use crate::common::{fiber_comms_on_a, PhaseMeter, PhaseProbe};
use crate::grid3d::Alg1Output;

/// Run the streamed Algorithm 1 with `slabs` inner-dimension slabs
/// (`slabs = 1` is semantically plain Algorithm 1 modulo the input
/// distribution). Returns the same output shape as
/// [`alg1`](crate::grid3d::alg1) — chunks assemble with
/// [`assemble_c`](crate::grid3d::assemble_c).
pub fn alg1_streamed(
    rank: &mut Rank,
    dims: MatMulDims,
    grid: Grid3,
    slabs: usize,
    kernel: Kernel,
    a: &Matrix,
    b: &Matrix,
) -> Alg1Output {
    poll_now(alg1_streamed_a(rank, dims, grid, slabs, kernel, a, b))
}

/// Async form of [`alg1_streamed`] (event-loop programs).
pub async fn alg1_streamed_a(
    rank: &mut Rank,
    dims: MatMulDims,
    grid: Grid3,
    slabs: usize,
    kernel: Kernel,
    a: &Matrix,
    b: &Matrix,
) -> Alg1Output {
    let world = rank.world_comm();
    alg1_streamed_on_a(rank, &world, dims, grid, slabs, kernel, a, b).await
}

/// Run the streamed variant on communicator `base` instead of the world
/// (recovery runs use a survivor communicator). `base` must have exactly
/// `grid.size()` members; this rank's grid coordinate is derived from its
/// index in `base`.
#[allow(clippy::too_many_arguments)]
pub async fn alg1_streamed_on_a(
    rank: &mut Rank,
    base: &Comm,
    dims: MatMulDims,
    grid: Grid3,
    slabs: usize,
    kernel: Kernel,
    a: &Matrix,
    b: &Matrix,
) -> Alg1Output {
    assert!(slabs >= 1, "need at least one slab");
    let [p1, p2, p3] = grid.dims();
    let coord = grid.coord_of(base.index());
    let comms = fiber_comms_on_a(rank, base, grid).await;

    let rows_a = block_range(dims.n1 as usize, p1, coord[0]);
    let cols_b = block_range(dims.n3 as usize, p3, coord[2]);
    let inner = block_range(dims.n2 as usize, p2, coord[1]);
    let h1 = rows_a.len();
    let h2 = inner.len();
    let h3 = cols_b.len();

    let mut d = Matrix::zeros(h1, h3);
    rank.mem_acquire((h1 * h3) as u64);

    let mut words_a_phase = pmm_simnet::Meter::default();
    let mut words_b_phase = pmm_simnet::Meter::default();

    for s in 0..slabs {
        // Slab s of the local inner range.
        let slab = block_range(h2, slabs, s);
        if slab.is_empty() {
            continue;
        }
        // --- gather slab of A over fiber (p1', p2', :) ----------------------
        let a_slab_words = h1 * slab.len();
        let a_counts: Vec<usize> =
            (0..p3).map(|r| chunk_of_block(a_slab_words, p3, r).len()).collect();
        let a_slab_global =
            a.sub(rows_a.start, inner.start + slab.start, h1, slab.len()).into_vec();
        let my_chunk = chunk_of_block(a_slab_words, p3, coord[2]);
        let a_own = a_slab_global[my_chunk].to_vec();
        rank.mem_acquire(a_slab_words as u64);
        let before = rank.meter();
        let a_flat = pmm_simnet::phase!(rank, "all-gather A (streamed)", {
            all_gather_v_a(rank, &comms[2], &a_own, &a_counts, AllGatherAlgo::Auto).await
        });
        accumulate(&mut words_a_phase, rank.meter().diff(&before));
        let a_mat = Matrix::from_vec(h1, slab.len(), a_flat);

        // --- gather slab of B over fiber (:, p2', p3') ----------------------
        let b_slab_words = slab.len() * h3;
        let b_counts: Vec<usize> =
            (0..p1).map(|r| chunk_of_block(b_slab_words, p1, r).len()).collect();
        let b_slab_global =
            b.sub(inner.start + slab.start, cols_b.start, slab.len(), h3).into_vec();
        let my_chunk = chunk_of_block(b_slab_words, p1, coord[0]);
        let b_own = b_slab_global[my_chunk].to_vec();
        rank.mem_acquire(b_slab_words as u64);
        let before = rank.meter();
        let b_flat = pmm_simnet::phase!(rank, "all-gather B (streamed)", {
            all_gather_v_a(rank, &comms[0], &b_own, &b_counts, AllGatherAlgo::Auto).await
        });
        accumulate(&mut words_b_phase, rank.meter().diff(&before));
        let b_mat = Matrix::from_vec(slab.len(), h3, b_flat);

        // --- accumulate ------------------------------------------------------
        pmm_simnet::phase!(rank, "local multiply", {
            gemm_acc(&mut d, &a_mat, &b_mat, kernel);
            rank.compute((h1 * slab.len() * h3) as f64);
        });

        // Slab buffers dropped here — that's the whole point.
        rank.mem_release((a_slab_words + b_slab_words) as u64);
    }
    // --- reduce-scatter C over fiber (p1', :, p3') --------------------------
    let c_block_words = h1 * h3;
    let c_counts: Vec<usize> =
        (0..p2).map(|r| chunk_of_block(c_block_words, p2, r).len()).collect();
    let probe = PhaseProbe::begin(rank, "reduce-scatter C");
    let c_chunk =
        reduce_scatter_v_a(rank, &comms[1], d.as_slice(), &c_counts, ReduceScatterAlgo::Auto).await;
    let ph_c = probe.finish(rank);
    rank.mem_acquire(c_chunk.len() as u64);
    rank.mem_release(c_block_words as u64);

    Alg1Output {
        c_chunk,
        phases: [
            PhaseMeter { label: "all-gather A (streamed)", meter: words_a_phase },
            PhaseMeter { label: "all-gather B (streamed)", meter: words_b_phase },
            ph_c,
        ],
    }
}

fn accumulate(into: &mut pmm_simnet::Meter, delta: pmm_simnet::Meter) {
    into.words_sent += delta.words_sent;
    into.words_recv += delta.words_recv;
    into.msgs_sent += delta.msgs_sent;
    into.msgs_recv += delta.msgs_recv;
    into.flops += delta.flops;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid3d::{alg1, assemble_c, Alg1Config};
    use pmm_dense::{gemm, random_int_matrix};
    use pmm_simnet::{MachineParams, World};

    fn run(
        dims: MatMulDims,
        grid: [usize; 3],
        slabs: usize,
    ) -> (Matrix, pmm_simnet::WorldResult<Alg1Output>) {
        let g = Grid3::from_dims(grid);
        let (n1, n2, n3) = (dims.n1 as usize, dims.n2 as usize, dims.n3 as usize);
        let out = World::new(g.size(), MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let a = random_int_matrix(n1, n2, -3..4, 71);
            let b = random_int_matrix(n2, n3, -3..4, 72);
            alg1_streamed(rank, dims, g, slabs, Kernel::Naive, &a, &b)
        });
        let chunks: Vec<_> = out.values.iter().map(|v| v.c_chunk.clone()).collect();
        (assemble_c(dims, g, &chunks), out)
    }

    fn reference(dims: MatMulDims) -> Matrix {
        let a = random_int_matrix(dims.n1 as usize, dims.n2 as usize, -3..4, 71);
        let b = random_int_matrix(dims.n2 as usize, dims.n3 as usize, -3..4, 72);
        gemm(&a, &b, Kernel::Naive)
    }

    #[test]
    fn correct_for_various_slab_counts() {
        let dims = MatMulDims::new(16, 24, 12);
        for grid in [[2usize, 2, 2], [1, 4, 2], [4, 3, 1]] {
            for slabs in [1usize, 2, 3, 5, 100] {
                let (c, _) = run(dims, grid, slabs);
                assert_eq!(c, reference(dims), "grid {grid:?} slabs {slabs}");
            }
        }
    }

    #[test]
    fn bandwidth_unchanged_latency_grows_memory_shrinks() {
        let dims = MatMulDims::new(32, 64, 32);
        let grid = [2usize, 2, 2];
        let (_, one) = run(dims, grid, 1);
        let (_, eight) = run(dims, grid, 8);

        // Same words moved (per rank, both directions).
        for r in 0..8 {
            assert_eq!(
                one.reports[r].meter.words_sent, eight.reports[r].meter.words_sent,
                "bandwidth must not change (rank {r})"
            );
        }
        // More messages (t× the all-gather rounds).
        assert!(
            eight.reports[0].meter.msgs_sent > one.reports[0].meter.msgs_sent,
            "latency term must grow"
        );
        // Lower peak memory.
        assert!(
            eight.max_peak_mem_words() < one.max_peak_mem_words(),
            "peak memory must shrink: {} vs {}",
            eight.max_peak_mem_words(),
            one.max_peak_mem_words()
        );
    }

    #[test]
    fn matches_plain_alg1_bandwidth_on_divisible_instances() {
        // Streamed with divisible slabs moves exactly the same words as
        // plain Algorithm 1 (different distribution, same traffic).
        let dims = MatMulDims::new(24, 24, 24);
        let grid = [2usize, 2, 2];
        let (_, streamed) = run(dims, grid, 3);

        let g = Grid3::from_dims(grid);
        let cfg = Alg1Config::new(dims, g);
        let plain = World::new(8, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let a = random_int_matrix(24, 24, -3..4, 71);
            let b = random_int_matrix(24, 24, -3..4, 72);
            alg1(rank, &cfg, &a, &b)
        });
        for r in 0..8 {
            assert_eq!(
                streamed.reports[r].meter.words_sent, plain.reports[r].meter.words_sent,
                "rank {r}"
            );
        }
    }

    #[test]
    fn more_slabs_than_inner_dim_degenerates_gracefully() {
        let dims = MatMulDims::new(6, 4, 6);
        let (c, _) = run(dims, [2, 2, 1], 64);
        assert_eq!(c, reference(dims));
    }
}
