//! **Algorithm 1** — communication-optimal parallel matrix multiplication
//! on a `p1 × p2 × p3` logical processor grid (§5 of the paper).
//!
//! ```text
//! 1:  (p1', p2', p3') is my processor ID
//! 2:  // Gather input matrix data
//! 3:  A_{p1'p2'} = All-Gather(A_{p1'p2'p3'}, (p1', p2', :))
//! 4:  B_{p2'p3'} = All-Gather(B_{p1'p2'p3'}, (:, p2', p3'))
//! 5:  // Perform local computation
//! 6:  D_{p1'p2'p3'} = A_{p1'p2'} · B_{p2'p3'}
//! 7:  // Sum results to compute C_{p1'p3'}
//! 8:  C_{p1'p2'p3'} = Reduce-Scatter(D_{p1'p2'p3'}, (p1', :, p3'))
//! ```
//!
//! Initial distribution (§5): block `A_{p1'p2'}` of the `p1 × p2` block
//! partition of `A` is spread evenly (contiguous runs of its row-major
//! elements) over the `p3` processors of fiber `(p1', p2', :)`; likewise
//! `B_{p2'p3'}` over `(:, p2', p3')`. On output, `C_{p1'p3'}` is spread
//! evenly over `(p1', :, p3')`.
//!
//! With bandwidth-optimal collectives, the per-processor cost is exactly
//! eq. (3):
//!
//! ```text
//! (1 − 1/p3)·n1n2/(p1p2) + (1 − 1/p1)·n2n3/(p2p3) + (1 − 1/p2)·n1n3/(p1p3)
//! ```
//!
//! and with the §5.2 optimal grid this *equals* the Theorem 3 bound.

use pmm_collectives::{
    all_gather_v_a, all_to_all_a, reduce_scatter_v_a, AllGatherAlgo, AllToAllAlgo,
    ReduceScatterAlgo,
};
use pmm_dense::{block_range, chunk_of_block, gemm, Kernel, Matrix};
use pmm_model::{Grid3, MatMulDims};
use pmm_simnet::{poll_now, Comm, Rank};

use crate::common::{fiber_comms_on_a, flatten_block, PhaseMeter, PhaseProbe};

/// How the partial products `D` are combined into `C` (line 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Assembly {
    /// Reduce-Scatter (the paper's Algorithm 1): bandwidth-optimal and
    /// latency `O(log p2)`.
    #[default]
    ReduceScatter,
    /// All-to-All followed by local summation (Agarwal et al. 1995 style):
    /// same bandwidth, `p2 − 1` latency, and `p2×` more temporary memory.
    /// Kept as an ablation of the design choice §5.1 calls out.
    AllToAllSum,
}

/// Configuration of one Algorithm 1 run.
#[derive(Debug, Clone)]
pub struct Alg1Config {
    /// Problem dimensions.
    pub dims: MatMulDims,
    /// Logical processor grid (its size must equal the world size).
    pub grid: Grid3,
    /// Local compute kernel.
    pub kernel: Kernel,
    /// Output assembly strategy.
    pub assembly: Assembly,
}

impl Alg1Config {
    /// Convenience constructor with the default kernel and assembly.
    pub fn new(dims: MatMulDims, grid: Grid3) -> Alg1Config {
        Alg1Config { dims, grid, kernel: Kernel::default(), assembly: Assembly::default() }
    }
}

/// Per-rank result of [`alg1`].
#[derive(Debug, Clone, PartialEq)]
pub struct Alg1Output {
    /// This rank's chunk of `C_{p1'p3'}` (a contiguous run of the block's
    /// row-major elements; chunk index = `p2'`).
    pub c_chunk: Vec<f64>,
    /// Traffic per phase: `[All-Gather A, All-Gather B, assemble C]`.
    pub phases: [PhaseMeter; 3],
}

/// Extract the chunk of `A` owned initially by the processor at `coord`:
/// the `p3`-way even split (by `coord[2]`) of block `A_{coord0, coord1}`.
pub fn owned_a_chunk(dims: MatMulDims, grid: Grid3, coord: [usize; 3], a: &Matrix) -> Vec<f64> {
    let _ = dims;
    let [p1, p2, p3] = grid.dims();
    let block = flatten_block(a, p1, p2, coord[0], coord[1]);
    let r = chunk_of_block(block.len(), p3, coord[2]);
    block[r].to_vec()
}

/// Extract the chunk of `B` owned initially by the processor at `coord`:
/// the `p1`-way even split (by `coord[0]`) of block `B_{coord1, coord2}`.
pub fn owned_b_chunk(dims: MatMulDims, grid: Grid3, coord: [usize; 3], b: &Matrix) -> Vec<f64> {
    let [p1, p2, p3] = grid.dims();
    let _ = dims;
    let block = flatten_block(b, p2, p3, coord[1], coord[2]);
    let r = chunk_of_block(block.len(), p1, coord[0]);
    block[r].to_vec()
}

/// The chunk range of `C_{p1', p3'}` owned finally by `coord` (chunk index
/// = `coord[1]`), as a range into the block's row-major elements.
pub fn owned_c_range(dims: MatMulDims, grid: Grid3, coord: [usize; 3]) -> std::ops::Range<usize> {
    let [p1, p2, p3] = grid.dims();
    let h = block_range(dims.n1 as usize, p1, coord[0]).len();
    let w = block_range(dims.n3 as usize, p3, coord[2]).len();
    chunk_of_block(h * w, p2, coord[1])
}

/// Run Algorithm 1. `a` and `b` are the *global* inputs (available to the
/// closure only as a convenient source of this rank's owned chunks — the
/// algorithm reads nothing else from them).
pub fn alg1(rank: &mut Rank, cfg: &Alg1Config, a: &Matrix, b: &Matrix) -> Alg1Output {
    poll_now(alg1_a(rank, cfg, a, b))
}

/// Async form of [`alg1`] (event-loop programs).
pub async fn alg1_a(rank: &mut Rank, cfg: &Alg1Config, a: &Matrix, b: &Matrix) -> Alg1Output {
    let world = rank.world_comm();
    alg1_on_a(rank, &world, cfg, a, b).await
}

/// [`alg1`] generalized to an arbitrary base communicator (whose size
/// must equal the grid size): this rank's grid position is its index in
/// `base`, and all three fiber communicators are split from `base`. This
/// is the entry point failure recovery uses to re-run the multiplication
/// on the surviving ranks — see [`crate::recovery::run_recoverable`].
pub fn alg1_on(
    rank: &mut Rank,
    base: &Comm,
    cfg: &Alg1Config,
    a: &Matrix,
    b: &Matrix,
) -> Alg1Output {
    poll_now(alg1_on_a(rank, base, cfg, a, b))
}

/// Async form of [`alg1_on`] (event-loop programs).
pub async fn alg1_on_a(
    rank: &mut Rank,
    base: &Comm,
    cfg: &Alg1Config,
    a: &Matrix,
    b: &Matrix,
) -> Alg1Output {
    let dims = cfg.dims;
    let grid = cfg.grid;
    assert_eq!(
        (a.rows() as u64, a.cols() as u64, b.cols() as u64),
        (dims.n1, dims.n2, dims.n3),
        "global inputs disagree with dims"
    );
    let [p1, p2, p3] = grid.dims();
    let coord = grid.coord_of(base.index());
    let comms = fiber_comms_on_a(rank, base, grid).await;

    // ----- owned input chunks (initial distribution) -----------------------
    let a_own = owned_a_chunk(dims, grid, coord, a);
    let b_own = owned_b_chunk(dims, grid, coord, b);
    rank.mem_acquire((a_own.len() + b_own.len()) as u64);

    // Block shapes.
    let h1 = block_range(dims.n1 as usize, p1, coord[0]).len(); // rows of A/C block
    let h2 = block_range(dims.n2 as usize, p2, coord[1]).len(); // inner
    let h3 = block_range(dims.n3 as usize, p3, coord[2]).len(); // cols of B/C block
    let a_block_words = h1 * h2;
    let b_block_words = h2 * h3;
    let c_block_words = h1 * h3;

    // ----- line 3: All-Gather A over fiber (p1', p2', :) -------------------
    let a_counts: Vec<usize> =
        (0..p3).map(|t| chunk_of_block(a_block_words, p3, t).len()).collect();
    rank.mem_acquire(a_block_words as u64);
    let probe = PhaseProbe::begin(rank, "all-gather A");
    let a_flat = all_gather_v_a(rank, &comms[2], &a_own, &a_counts, AllGatherAlgo::Auto).await;
    let ph_a = probe.finish(rank);
    let a_block = Matrix::from_vec(h1, h2, a_flat);

    // ----- line 4: All-Gather B over fiber (:, p2', p3') -------------------
    let b_counts: Vec<usize> =
        (0..p1).map(|t| chunk_of_block(b_block_words, p1, t).len()).collect();
    rank.mem_acquire(b_block_words as u64);
    let probe = PhaseProbe::begin(rank, "all-gather B");
    let b_flat = all_gather_v_a(rank, &comms[0], &b_own, &b_counts, AllGatherAlgo::Auto).await;
    let ph_b = probe.finish(rank);
    let b_block = Matrix::from_vec(h2, h3, b_flat);

    // ----- line 6: local computation D = A_block · B_block -----------------
    rank.mem_acquire(c_block_words as u64);
    let d = pmm_simnet::phase!(rank, "local multiply", {
        let d = gemm(&a_block, &b_block, cfg.kernel);
        // The model meters scalar multiplications, matching the paper's
        // n1n2n3/P count (line 6 performs h1·h2·h3 of them).
        rank.compute((h1 * h2 * h3) as f64);
        d
    });

    // ----- line 8: assemble C over fiber (p1', :, p3') ---------------------
    let c_counts: Vec<usize> =
        (0..p2).map(|t| chunk_of_block(c_block_words, p2, t).len()).collect();
    let (c_chunk, ph_c) = match cfg.assembly {
        Assembly::ReduceScatter => {
            let probe = PhaseProbe::begin(rank, "reduce-scatter C");
            let c = reduce_scatter_v_a(
                rank,
                &comms[1],
                d.as_slice(),
                &c_counts,
                ReduceScatterAlgo::Auto,
            )
            .await;
            (c, probe.finish(rank))
        }
        Assembly::AllToAllSum => {
            let probe = PhaseProbe::begin(rank, "all-to-all C");
            let c = all_to_all_sum(rank, &comms[1], d.as_slice(), &c_counts).await;
            (c, probe.finish(rank))
        }
    };

    // Release gathered blocks and D; retain owned inputs + owned C chunk.
    rank.mem_acquire(c_chunk.len() as u64);
    rank.mem_release((a_block_words + b_block_words + c_block_words) as u64);

    Alg1Output { c_chunk, phases: [ph_a, ph_b, ph_c] }
}

/// Reduce-scatter semantics via All-to-All + local summation (the
/// [`Assembly::AllToAllSum`] ablation). Requires uniform `counts` (pads
/// internally when uneven by falling back to per-destination sends of the
/// exact segments).
async fn all_to_all_sum(
    rank: &mut Rank,
    comm: &pmm_simnet::Comm,
    data: &[f64],
    counts: &[usize],
) -> Vec<f64> {
    let p = comm.size();
    let me = comm.index();
    let uniform = counts.iter().all(|&c| c == counts[0]);
    let offsets: Vec<usize> = {
        let mut v = Vec::with_capacity(p + 1);
        let mut acc = 0;
        v.push(0);
        for &c in counts {
            acc += c;
            v.push(acc);
        }
        v
    };
    assert_eq!(data.len(), offsets[p], "data length disagrees with counts");
    let mut acc: Vec<f64> = data[offsets[me]..offsets[me + 1]].to_vec();
    // Temporary memory for the p−1 received chunks (the ablation's cost).
    rank.mem_acquire((data.len() - acc.len()) as u64);
    if uniform && counts[0] > 0 {
        let recv = all_to_all_a(rank, comm, data, AllToAllAlgo::Pairwise).await;
        for src in 0..p {
            if src == me {
                continue;
            }
            let seg = &recv[src * counts[0]..(src + 1) * counts[0]];
            for (a, &s) in acc.iter_mut().zip(seg) {
                *a += s;
            }
            rank.compute(counts[0] as f64);
        }
    } else {
        // Uneven segments: pairwise exchange of exact segments.
        for s in 1..p {
            let to = (me + s) % p;
            let from = (me + p - s) % p;
            let payload = &data[offsets[to]..offsets[to + 1]];
            let msg = rank.exchange_a(comm, to, from, payload).await;
            assert_eq!(msg.payload.len(), counts[me]);
            for (a, &v) in acc.iter_mut().zip(&msg.payload) {
                *a += v;
            }
            rank.compute(counts[me] as f64);
        }
    }
    rank.mem_release((data.len() - acc.len()) as u64);
    acc
}

/// Assemble the global `C` from every rank's [`Alg1Output::c_chunk`]
/// (test/harness helper; runs outside the simulated machine).
pub fn assemble_c(dims: MatMulDims, grid: Grid3, chunks: &[Vec<f64>]) -> Matrix {
    let [p1, p2, p3] = grid.dims();
    assert_eq!(chunks.len(), grid.size());
    let (n1, n3) = (dims.n1 as usize, dims.n3 as usize);
    let mut c = Matrix::zeros(n1, n3);
    for i in 0..p1 {
        let rrange = block_range(n1, p1, i);
        for l in 0..p3 {
            let crange = block_range(n3, p3, l);
            let words = rrange.len() * crange.len();
            let mut flat = vec![0.0f64; words];
            for j in 0..p2 {
                let rank = grid.rank_of([i, j, l]);
                let chunk = &chunks[rank];
                let range = chunk_of_block(words, p2, j);
                assert_eq!(chunk.len(), range.len(), "rank {rank} chunk size");
                flat[range].copy_from_slice(chunk);
            }
            let block = Matrix::from_vec(rrange.len(), crange.len(), flat);
            c.set_sub(rrange.start, crange.start, &block);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmm_core::gridopt::{alg1_cost_words, best_grid};
    use pmm_core::theorem3::lower_bound;
    use pmm_dense::{gemm as serial_gemm, random_int_matrix};
    use pmm_simnet::{MachineParams, World};

    /// Run Algorithm 1 on a world sized to `grid`, return (C, result).
    fn run(
        dims: MatMulDims,
        grid: [usize; 3],
        assembly: Assembly,
    ) -> (Matrix, pmm_simnet::WorldResult<Alg1Output>) {
        let grid = Grid3::from_dims(grid);
        let cfg = Alg1Config { dims, grid, kernel: Kernel::Naive, assembly };
        let out = World::new(grid.size(), MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let a = random_int_matrix(dims.n1 as usize, dims.n2 as usize, -3..4, 11);
            let b = random_int_matrix(dims.n2 as usize, dims.n3 as usize, -3..4, 22);
            alg1(rank, &cfg, &a, &b)
        });
        let chunks: Vec<Vec<f64>> = out.values.iter().map(|v| v.c_chunk.clone()).collect();
        (assemble_c(dims, grid, &chunks), out)
    }

    fn reference(dims: MatMulDims) -> Matrix {
        let a = random_int_matrix(dims.n1 as usize, dims.n2 as usize, -3..4, 11);
        let b = random_int_matrix(dims.n2 as usize, dims.n3 as usize, -3..4, 22);
        serial_gemm(&a, &b, Kernel::Naive)
    }

    #[test]
    fn correct_on_divisible_3d_grid() {
        let dims = MatMulDims::new(12, 8, 6);
        let (c, _) = run(dims, [2, 2, 3], Assembly::ReduceScatter);
        assert_eq!(c, reference(dims), "Alg1 product disagrees with serial reference");
    }

    #[test]
    fn correct_on_1d_and_2d_grids() {
        let dims = MatMulDims::new(12, 9, 5);
        for grid in [[4, 1, 1], [1, 3, 1], [1, 1, 5], [3, 3, 1], [2, 1, 5]] {
            let (c, _) = run(dims, grid, Assembly::ReduceScatter);
            assert_eq!(c, reference(dims), "grid {grid:?}");
        }
    }

    #[test]
    fn correct_on_non_divisible_dims() {
        let dims = MatMulDims::new(13, 7, 11);
        for grid in [[2, 2, 2], [3, 2, 1], [2, 3, 4]] {
            let (c, _) = run(dims, grid, Assembly::ReduceScatter);
            assert_eq!(c, reference(dims), "grid {grid:?}");
        }
    }

    #[test]
    fn correct_with_all_to_all_assembly() {
        let dims = MatMulDims::new(12, 8, 6);
        for grid in [[2, 2, 3], [1, 4, 1], [2, 3, 2]] {
            let (c, _) = run(dims, grid, Assembly::AllToAllSum);
            assert_eq!(c, reference(dims), "grid {grid:?}");
        }
    }

    #[test]
    fn single_processor_no_communication() {
        let dims = MatMulDims::new(6, 5, 4);
        let (c, out) = run(dims, [1, 1, 1], Assembly::ReduceScatter);
        assert_eq!(c, reference(dims));
        assert_eq!(out.total_words_sent(), 0.0);
    }

    #[test]
    fn measured_cost_equals_eq3_exactly_on_divisible_grids() {
        // The §5.1 analysis: per-processor critical-path words == eq. (3).
        let dims = MatMulDims::new(24, 12, 8);
        for grid in [[2, 2, 2], [4, 3, 1], [2, 3, 4], [1, 2, 2], [6, 1, 2]] {
            let (_, out) = run(dims, grid, Assembly::ReduceScatter);
            let want = alg1_cost_words(dims, grid);
            let got = out.critical_path_time();
            assert!((got - want).abs() < 1e-9, "grid {grid:?}: measured {got} vs eq3 {want}");
            // And every rank moves the same volume (balanced schedule).
            for r in &out.reports {
                assert_eq!(r.meter.duplex_words() as f64, want, "grid {grid:?}");
            }
        }
    }

    #[test]
    fn attains_lower_bound_exactly_with_optimal_grid() {
        // Tightness (the paper's headline): measured == Theorem 3 bound in
        // all three cases, on instances where both the blocks and the
        // per-fiber chunks divide evenly (same aspect ratios as the
        // paper's §5.3 example: m/n = 4, mn/k² = 64).
        let dims = MatMulDims::new(768, 192, 48);
        for (p, want_case) in [(3usize, "1D"), (36, "2D"), (512, "3D")] {
            let choice = best_grid(dims, p);
            assert!(dims.divisible_by(choice.grid), "P={p} grid {:?}", choice.grid);
            let (c, out) = run(dims, choice.grid, Assembly::ReduceScatter);
            assert_eq!(c, reference(dims));
            let bound = lower_bound(dims, p as f64).bound;
            let got = out.critical_path_time();
            assert!(
                (got - bound).abs() < 1e-9 * bound.max(1.0),
                "P={p} ({want_case}): measured {got} vs bound {bound}"
            );
        }
    }

    #[test]
    fn phase_traffic_matches_per_matrix_pattern() {
        // Fig. 2 narrative: on a 1D grid only B is communicated; on the
        // 12×3×1-style 2D grid only B and C; on 3D all three.
        let dims = MatMulDims::new(96, 24, 6);
        let phase_words = |grid: [usize; 3]| -> [u64; 3] {
            let (_, out) = run(dims, grid, Assembly::ReduceScatter);
            let mut w = [0u64; 3];
            for rep in &out.values {
                for (i, ph) in rep.phases.iter().enumerate() {
                    w[i] += ph.meter.words_sent;
                }
            }
            w
        };
        let w1 = phase_words([3, 1, 1]);
        assert_eq!(w1[0], 0, "1D: A not communicated");
        assert!(w1[1] > 0, "1D: B all-gathered");
        assert_eq!(w1[2], 0, "1D: C not communicated");

        let w2 = phase_words([12, 3, 1]);
        assert_eq!(w2[0], 0, "2D (r=1): A not communicated");
        assert!(w2[1] > 0 && w2[2] > 0, "2D: B and C communicated");

        let w3 = phase_words([4, 2, 2]);
        assert!(w3.iter().all(|&x| x > 0), "3D: all matrices communicated");
    }

    #[test]
    fn alltoall_assembly_same_bandwidth_more_latency() {
        let dims = MatMulDims::new(16, 16, 16);
        let grid = [2, 4, 2];
        let (_, rs) = run(dims, grid, Assembly::ReduceScatter);
        let (_, aa) = run(dims, grid, Assembly::AllToAllSum);
        assert_eq!(
            rs.reports[0].meter.words_sent, aa.reports[0].meter.words_sent,
            "assembly variants move the same words"
        );
        // p2 = 4: reduce-scatter (recursive halving) needs log2(4) = 2
        // messages; all-to-all needs p2 − 1 = 3.
        let rs_msgs = rs.values[0].phases[2].meter.msgs_sent;
        let aa_msgs = aa.values[0].phases[2].meter.msgs_sent;
        assert!(aa_msgs > rs_msgs, "all-to-all {aa_msgs} vs reduce-scatter {rs_msgs}");
    }

    #[test]
    fn memory_peak_tracks_eq3_footprint() {
        use pmm_core::memlimit::alg1_memory_words;
        let dims = MatMulDims::new(24, 24, 24);
        let grid = [2, 2, 2];
        let (_, out) = run(dims, grid, Assembly::ReduceScatter);
        let want = alg1_memory_words(dims, grid);
        for rep in &out.reports {
            let peak = rep.peak_mem_words as f64;
            // Peak includes the owned input chunks (counted once more than
            // the analytic footprint) but must stay within ~1.5× of it.
            assert!(peak >= want && peak <= 1.5 * want, "peak {peak} vs analytic footprint {want}");
        }
    }
}
