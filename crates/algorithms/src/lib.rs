//! # pmm-algs — communication-optimal parallel matmul algorithms
//!
//! Executable, fully metered implementations of parallel matrix
//! multiplication on the simulated distributed machine
//! ([`pmm_simnet`]):
//!
//! * [`grid3d`] — **Algorithm 1** of the paper: two All-Gathers and one
//!   Reduce-Scatter on a `p1 × p2 × p3` logical grid. With the §5.2
//!   optimal grid it attains the Theorem 3 lower bound *exactly* —
//!   the tightness half of the paper — which the tests and the
//!   `tightness` experiment verify to the word. An ablation variant
//!   assembles `C` with All-to-All + local summation (the Agarwal et al.
//!   1995 style) instead of Reduce-Scatter.
//! * [`mod@cannon`] — Cannon's algorithm on a square `√P × √P` grid (classic
//!   2D baseline).
//! * [`mod@summa`] — SUMMA on a general `pr × pc` grid (the standard library
//!   algorithm baseline, broadcast-based).
//! * [`mod@twofived`] — the 2.5D algorithm of Solomonik & Demmel 2011 with
//!   replication factor `c` (memory-for-communication trade-off).
//! * [`recursive`] — closed-form communication cost of the CARMA-style
//!   recursive algorithm (Demmel et al. 2013), used as an analytic
//!   baseline in the comparison experiments.
//! * [`recovery`] — algorithm-agnostic checkpointed failure recovery
//!   ([`recovery::run_recoverable`]) wrapping all six executable
//!   algorithms: checkpoint ring, typed rank-failure detection, re-plan
//!   onto the survivors, redistribute, resume.
//!
//! Every executed algorithm consumes the *initial distribution* it
//! specifies (each rank extracts only its owned part of the input),
//! returns its owned part of `C`, and reports per-phase traffic meters.
//! Tests reassemble the distributed output and compare it bit-for-bit
//! against a serial reference on integer-valued inputs.

#![warn(missing_docs)]

pub mod cannon;
pub mod common;
pub mod grid3d;
pub mod recovery;
pub mod recursive;
pub mod streamed;
pub mod summa;
pub mod twofived;

pub use cannon::{cannon, cannon_a, cannon_on_a, CannonConfig, CannonOutput};
pub use common::{
    assemble_from_blocks, fiber_comms, fiber_comms_a, fiber_comms_on, fiber_comms_on_a, PhaseMeter,
    PhaseProbe,
};
pub use grid3d::{alg1, alg1_a, alg1_on, alg1_on_a, assemble_c, Alg1Config, Alg1Output, Assembly};
pub use recovery::{
    assemble_recovered, plan_for, run_recoverable, run_recoverable_a, CShare, Recoverable,
    Recovered,
};
pub use recursive::{carma, carma_a, carma_assemble_c, carma_cost_words, carma_shares};
pub use streamed::{alg1_streamed, alg1_streamed_a, alg1_streamed_on_a};
pub use summa::{
    near_square_factors, summa, summa_a, summa_on, summa_on_a, SummaConfig, SummaOutput,
};
pub use twofived::{twofived, twofived_a, twofived_on_a, TwoFiveDConfig, TwoFiveDOutput};
