//! Algorithm-agnostic checkpointed failure recovery.
//!
//! [`run_recoverable`] wraps any of the six executable algorithms in the
//! same fault-tolerance protocol:
//!
//! 1. **Checkpoint / redistribute.** Each attempt opens with a ring
//!    exchange over the attempt's communicator: member `i` sends the
//!    input blocks that member `i + 1` owns under the attempt's layout
//!    and receives its own. On the first attempt this prices the
//!    checkpoint capture (every owned block copied off-rank once); on
//!    retry attempts it prices redistribution from the surviving
//!    checkpoints onto the shrunken layout. Either way the goodput total
//!    across members is exactly `n1n2 + n2n3` words
//!    ([`restore_words_total`](pmm_model::restore_words_total)).
//! 2. **Run.** The algorithm executes on the attempt communicator via
//!    its `*_on_a` entry point, laid out by [`plan_for`] (the §5.2
//!    optimal grid for Algorithm 1 and its streamed variant, near-square
//!    factors for SUMMA, the largest square / `c·q²` / power-of-two
//!    sub-machine for Cannon, 2.5D and CARMA — extra survivors idle).
//! 3. **Rally.** A fault-aware barrier ([`Rank::hard_sync_a`]) makes
//!    every survivor observe the same post-attempt dead set. If a
//!    member of the attempt's communicator died, every survivor
//!    abandons the attempt — even those whose own collectives completed
//!    — rebuilds a communicator over the survivors
//!    ([`Rank::recovery_split_a`]), and retries with a fresh layout.
//!    The killed rank returns `Err` and falls silent.
//!
//! Rounds run in **lockstep**: every rank executes round 0 on the full
//! world communicator (even a rank first scheduled after a death — its
//! attempt aborts promptly against the corpse), rallies once per round,
//! and keys each recovery rendezvous by the round number. This keeps
//! barrier generations and split sequences globally aligned no matter
//! how the scheduler interleaves rank start-up with the first kill —
//! without it, a rank that skipped the doomed first attempt would wait
//! in a rendezvous the others reach only after a rally that in turn
//! waits on it.
//!
//! The returned [`Recovered`] carries the successful attempt's output
//! share plus separate goodput meters for the restore phase and the
//! algorithm run, which match `pmm_model::recovery_prediction` exactly
//! (summed across survivors) on fault-free and recovered runs alike.

use pmm_core::gridopt::best_grid;
use pmm_dense::{Kernel, Matrix};
use pmm_model::{AlgPlan, Grid3, MatMulDims};
use pmm_simnet::{poll_now, Comm, Meter, Rank, RankFailed};

use crate::cannon::{cannon_on_a, CannonConfig, CannonOutput};
use crate::common::{assemble_from_blocks, flatten_block, PhaseProbe};
use crate::grid3d::{
    alg1_on_a, assemble_c, owned_a_chunk, owned_b_chunk, Alg1Config, Alg1Output, Assembly,
};
use crate::recursive::{carma_a, carma_assemble_c, carma_shares};
use crate::streamed::alg1_streamed_on_a;
use crate::summa::{near_square_factors, summa_on_a, SummaConfig};
use crate::twofived::{twofived_on_a, TwoFiveDConfig};

/// Which algorithm a [`run_recoverable`] call wraps, with its
/// per-algorithm knobs. The layout (grid shape, torus side, …) is *not*
/// part of the spec: [`plan_for`] re-derives it for every attempt from
/// the survivor count.
#[derive(Debug, Clone)]
pub enum Recoverable {
    /// Algorithm 1 on the §5.2-optimal grid of the survivors.
    Alg1 {
        /// Local compute kernel.
        kernel: Kernel,
        /// Output assembly strategy.
        assembly: Assembly,
    },
    /// Streamed Algorithm 1 (same grid policy, `slabs` inner slabs).
    Alg1Streamed {
        /// Local compute kernel.
        kernel: Kernel,
        /// Number of inner-dimension slabs.
        slabs: usize,
    },
    /// SUMMA on the near-square factorization of the survivor count.
    Summa {
        /// Local compute kernel.
        kernel: Kernel,
    },
    /// Cannon on the largest `q × q` torus that fits the survivors.
    Cannon {
        /// Local compute kernel.
        kernel: Kernel,
    },
    /// 2.5D on the largest `c` layers of `q × q` (with `c | q`) that fit
    /// the survivors.
    TwoFiveD {
        /// Local compute kernel.
        kernel: Kernel,
    },
    /// CARMA on the largest power-of-two sub-machine of the survivors.
    Carma {
        /// Local compute kernel.
        kernel: Kernel,
    },
}

/// One rank's share of the recovered `C` — the per-algorithm output
/// shape, unified so [`assemble_recovered`] can rebuild the global
/// product from any algorithm's shares.
#[derive(Debug, Clone, PartialEq)]
pub enum CShare {
    /// Algorithm 1 (plain or streamed): the owned `C` chunk plus its
    /// per-phase meters (chunk index = this rank's position in the
    /// attempt communicator).
    Chunk(Box<Alg1Output>),
    /// SUMMA / Cannon / 2.5D: the owned `C` block, `None` on ranks that
    /// hold no output (idle survivors, non-layer-0 2.5D ranks).
    Block(Option<Matrix>),
    /// CARMA: the flat recursive share, `None` on idle survivors.
    Flat(Option<Vec<f64>>),
}

/// Result of a successful [`run_recoverable`] call on one survivor.
#[derive(Debug, Clone, PartialEq)]
pub struct Recovered {
    /// This rank's share of `C` under `plan` (positioned by this rank's
    /// index in the final attempt's communicator, i.e. its index in
    /// `survivors`).
    pub share: CShare,
    /// The successful attempt's layout.
    pub plan: AlgPlan,
    /// World ranks alive at the successful attempt, ascending.
    pub survivors: Vec<usize>,
    /// Layouts of every attempt, first to last (the last succeeded).
    /// Feed to [`pmm_model::recovery_prediction`] together with
    /// `attempt_survivors` for the analytic cost of the whole run.
    pub attempt_plans: Vec<AlgPlan>,
    /// Survivor count of every attempt, first to last.
    pub attempt_survivors: Vec<usize>,
    /// Goodput this rank spent in the final attempt's checkpoint /
    /// redistribution ring.
    pub restore_meter: Meter,
    /// Goodput this rank spent in the final attempt's algorithm run.
    pub run_meter: Meter,
}

impl Recovered {
    /// Number of attempts the run took (1 = no failure observed).
    pub fn attempts(&self) -> usize {
        self.attempt_plans.len()
    }
}

fn isqrt(p: usize) -> usize {
    let mut q = 1usize;
    while (q + 1) * (q + 1) <= p {
        q += 1;
    }
    q
}

/// The layout an algorithm runs with on `p` survivors — the single
/// policy both the execution ([`run_recoverable`]) and the prediction
/// (`pmm_model::recovery_prediction`) price.
pub fn plan_for(spec: &Recoverable, dims: MatMulDims, p: usize) -> AlgPlan {
    assert!(p >= 1, "need at least one survivor");
    match *spec {
        Recoverable::Alg1 { .. } => AlgPlan::Alg1 { grid: best_grid(dims, p).grid },
        Recoverable::Alg1Streamed { slabs, .. } => {
            AlgPlan::Alg1Streamed { grid: best_grid(dims, p).grid, slabs }
        }
        Recoverable::Summa { .. } => {
            let (pr, pc) = near_square_factors(p);
            AlgPlan::Summa { pr, pc }
        }
        Recoverable::Cannon { .. } => AlgPlan::Cannon { q: isqrt(p) },
        Recoverable::TwoFiveD { .. } => {
            // Largest active count c·q² with c | q; ties prefer more
            // replication (larger c — fewer shift steps).
            let mut best = (1usize, 1usize); // (q, c)
            for q in 1..=isqrt(p) {
                let mut c = 1;
                for d in 1..=q {
                    if q.is_multiple_of(d) && d * q * q <= p {
                        c = d;
                    }
                }
                let (bq, bc) = best;
                let (now, was) = (c * q * q, bc * bq * bq);
                if now > was || (now == was && c > bc) {
                    best = (q, c);
                }
            }
            AlgPlan::TwoFiveD { q: best.0, c: best.1 }
        }
        Recoverable::Carma { .. } => {
            let mut p2 = 1usize;
            while p2 * 2 <= p {
                p2 *= 2;
            }
            AlgPlan::Carma { p: p2 }
        }
    }
}

fn lcm(a: usize, b: usize) -> usize {
    fn gcd(mut a: usize, mut b: usize) -> usize {
        while b != 0 {
            (a, b) = (b, a % b);
        }
        a
    }
    a / gcd(a, b) * b
}

/// The input blocks member `idx` of the attempt communicator owns under
/// `plan` (A part then B part, flattened) — what its checkpoint holds.
/// Idle members (beyond the plan's active count) own nothing. Summing
/// lengths over all members covers each input element exactly once.
fn owned_inputs(plan: &AlgPlan, dims: MatMulDims, idx: usize, a: &Matrix, b: &Matrix) -> Vec<f64> {
    match *plan {
        AlgPlan::Alg1 { grid } | AlgPlan::Alg1Streamed { grid, .. } => {
            let grid = Grid3::from_dims(grid);
            let coord = grid.coord_of(idx);
            let mut v = owned_a_chunk(dims, grid, coord, a);
            v.extend(owned_b_chunk(dims, grid, coord, b));
            v
        }
        AlgPlan::Summa { pr, pc } => {
            // Block-cyclic panels: A panel t on process column t mod pc,
            // B panel t on process row t mod pr.
            let (i, j) = (idx / pc, idx % pc);
            let s = lcm(pr, pc);
            let mut v = Vec::new();
            for t in 0..s {
                if t % pc == j {
                    v.extend(flatten_block(a, pr, s, i, t));
                }
                if t % pr == i {
                    v.extend(flatten_block(b, s, pc, t, j));
                }
            }
            v
        }
        AlgPlan::Cannon { q } => {
            if idx >= q * q {
                return Vec::new();
            }
            let (i, j) = (idx / q, idx % q);
            let mut v = flatten_block(a, q, q, i, j);
            v.extend(flatten_block(b, q, q, i, j));
            v
        }
        AlgPlan::TwoFiveD { q, .. } => {
            // One copy of the inputs lives on layer 0 (indices < q²).
            if idx >= q * q {
                return Vec::new();
            }
            let (i, j) = (idx / q, idx % q);
            let mut v = flatten_block(a, q, q, i, j);
            v.extend(flatten_block(b, q, q, i, j));
            v
        }
        AlgPlan::Carma { p } => {
            if idx >= p {
                return Vec::new();
            }
            let (mut av, bv) = carma_shares(p, idx, a, b);
            av.extend(bv);
            av
        }
    }
}

/// One attempt: checkpoint/redistribution ring, then the algorithm run
/// on `base` under `plan`. Returns the share plus the two phase meters.
#[allow(clippy::too_many_arguments)]
async fn run_attempt_a(
    rank: &mut Rank,
    base: &Comm,
    spec: &Recoverable,
    plan: &AlgPlan,
    dims: MatMulDims,
    a: &Matrix,
    b: &Matrix,
    restore_label: &'static str,
) -> (CShare, Meter, Meter) {
    let p = base.size();
    let me = base.index();

    // ---- restore: ring-exchange the owned blocks ---------------------------
    let probe = PhaseProbe::begin(rank, restore_label);
    if p > 1 {
        let payload = owned_inputs(plan, dims, (me + 1) % p, a, b);
        let (to, from) = ((me + 1) % p, (me + p - 1) % p);
        // The received copy is this rank's own owned blocks back from
        // the checkpoint holder; the simulation re-extracts them from
        // the global inputs below, so only the traffic matters here.
        let _ = rank.exchange_a(base, to, from, &payload).await;
    }
    let restore_meter = probe.finish(rank).meter;

    // ---- run the algorithm on the attempt communicator ---------------------
    let before = rank.meter();
    let share = match (spec, plan) {
        (&Recoverable::Alg1 { kernel, assembly }, &AlgPlan::Alg1 { grid }) => {
            let cfg = Alg1Config { dims, grid: Grid3::from_dims(grid), kernel, assembly };
            CShare::Chunk(Box::new(alg1_on_a(rank, base, &cfg, a, b).await))
        }
        (&Recoverable::Alg1Streamed { kernel, .. }, &AlgPlan::Alg1Streamed { grid, slabs }) => {
            let grid = Grid3::from_dims(grid);
            CShare::Chunk(Box::new(
                alg1_streamed_on_a(rank, base, dims, grid, slabs, kernel, a, b).await,
            ))
        }
        (&Recoverable::Summa { kernel }, &AlgPlan::Summa { pr, pc }) => {
            let cfg = SummaConfig { dims, pr, pc, kernel };
            CShare::Block(Some(summa_on_a(rank, base, &cfg, a, b).await.c_block))
        }
        (&Recoverable::Cannon { kernel }, &AlgPlan::Cannon { q }) => {
            let cfg = CannonConfig { dims, q, kernel };
            let out: Option<CannonOutput> = cannon_on_a(rank, base, &cfg, a, b).await;
            CShare::Block(out.map(|o| o.c_block))
        }
        (&Recoverable::TwoFiveD { kernel }, &AlgPlan::TwoFiveD { q, c }) => {
            let cfg = TwoFiveDConfig { dims, q, c, kernel };
            CShare::Block(twofived_on_a(rank, base, &cfg, a, b).await.c_block)
        }
        (&Recoverable::Carma { kernel }, &AlgPlan::Carma { p: active }) => {
            // Active sub-machine: the first `active` members; the rest
            // opt out of the split (MPI_UNDEFINED) and idle.
            let color = if me < active { 0 } else { -1 };
            match rank.split_a(base, color, me as i64).await {
                Some(sub) => {
                    let (a_share, b_share) = carma_shares(active, me, a, b);
                    CShare::Flat(Some(carma_a(rank, &sub, dims, kernel, a_share, b_share).await))
                }
                None => CShare::Flat(None),
            }
        }
        _ => unreachable!("plan_for always returns the spec's plan variant"),
    };
    let run_meter = rank.meter().diff(&before);
    (share, restore_meter, run_meter)
}

/// Run `spec`'s algorithm with checkpointed rank-failure recovery (see
/// the [module docs](self) for the protocol). Returns `Err` on the
/// killed rank (which must stop communicating) and `Ok` on every
/// survivor once an attempt completes with no new deaths. Kills placed
/// after the final attempt completes are not handled here — they surface
/// wherever the program communicates next.
pub fn run_recoverable(
    rank: &mut Rank,
    spec: &Recoverable,
    dims: MatMulDims,
    a: &Matrix,
    b: &Matrix,
) -> Result<Recovered, RankFailed> {
    poll_now(run_recoverable_a(rank, spec, dims, a, b))
}

/// Async form of [`run_recoverable`] (event-loop programs).
pub async fn run_recoverable_a(
    rank: &mut Rank,
    spec: &Recoverable,
    dims: MatMulDims,
    a: &Matrix,
    b: &Matrix,
) -> Result<Recovered, RankFailed> {
    let mut attempt_plans: Vec<AlgPlan> = Vec::new();
    let mut attempt_survivors: Vec<usize> = Vec::new();
    let mut round: u64 = 0;
    loop {
        // Rounds run in lockstep across every rank: round 0 is always
        // the full world communicator — even for a rank that already
        // observes a death when it is first scheduled (its attempt
        // aborts quickly against the corpse, but its rally arrival and
        // split sequence stay aligned with the ranks that started
        // earlier). Round r > 0 rebuilds over the survivors via a
        // rendezvous keyed by the globally-agreed round number; its
        // result (not this rank's possibly-stale dead-set view) defines
        // the round's membership.
        let base = if round == 0 { rank.world_comm() } else { rank.recovery_split_a(round).await };
        let survivors: Vec<usize> = base.members().to_vec();
        let plan = plan_for(spec, dims, survivors.len());
        attempt_plans.push(plan.clone());
        attempt_survivors.push(survivors.len());
        let restore_label: &'static str = if round == 0 { "checkpoint" } else { "redistribute" };
        // Arm the attempt's fault watch at the round's basis (the death
        // count when this round's membership was fixed), not the current
        // epoch: a rank first scheduled after a kill would otherwise arm
        // past the death and wait forever inside a collective its live
        // peers were kicked out of and abandoned. A member that deposits
        // in the membership rendezvous cannot die while blocked there
        // (kills fire only at its own fault ticks), so `world − |members|`
        // is exactly the epoch at which the membership was agreed.
        let basis = (rank.world_size() - survivors.len()) as u64;
        let watch = rank.fault_watch_arm_at(basis);
        let attempt = pmm_simnet::catch_fault_panics(run_attempt_a(
            &mut *rank,
            &base,
            spec,
            &plan,
            dims,
            a,
            b,
            restore_label,
        ))
        .await;
        rank.fault_watch_restore(watch);
        let completed = match attempt {
            // This rank is the casualty: it must fall silent — the
            // survivors' barrier already counts it as arrived.
            Err(failed) if failed.rank == rank.world_rank() => return Err(failed),
            Err(_) => None,
            Ok(v) => Some(v),
        };
        // Rally every survivor (the barrier counts dead ranks as
        // arrived) so all observe the same post-attempt dead set and
        // make the same retry-or-return decision. The rally itself can
        // kill this rank (cascades fire on the next operation) or
        // observe a fresh peer death; both feed the same loop logic.
        let rally = pmm_simnet::catch_failures_async!(rank, rank.hard_sync_a());
        round += 1;
        if let Err(failed) = rally {
            if failed.rank == rank.world_rank() {
                return Err(failed);
            }
        }
        if let Some((share, restore_meter, run_meter)) = completed {
            // Retry iff a member of this round's communicator is now
            // dead. Every member death happens at or before the rally
            // (a kill during the rally sweeps the corpse into the
            // barrier before it releases), so all survivors read the
            // same verdict and make the same retry-or-return decision.
            let dead_now = rank.dead_ranks();
            if !survivors.iter().any(|r| dead_now.contains(r)) {
                return Ok(Recovered {
                    share,
                    plan,
                    survivors,
                    attempt_plans,
                    attempt_survivors,
                    restore_meter,
                    run_meter,
                });
            }
            // A rank died during the attempt: even ranks whose own
            // collectives happened to complete must discard the result
            // (their peers may hold no consistent counterpart) and
            // rerun on the shrunken layout.
        }
    }
}

/// Reassemble the global `C` from every survivor's [`CShare`]
/// (test/harness helper; runs outside the simulated machine). `shares`
/// is indexed by position in the final attempt's communicator — i.e. by
/// position in [`Recovered::survivors`].
pub fn assemble_recovered(dims: MatMulDims, plan: &AlgPlan, shares: &[CShare]) -> Matrix {
    let (n1, n3) = (dims.n1 as usize, dims.n3 as usize);
    match *plan {
        AlgPlan::Alg1 { grid } | AlgPlan::Alg1Streamed { grid, .. } => {
            let grid = Grid3::from_dims(grid);
            let chunks: Vec<Vec<f64>> = shares
                .iter()
                .map(|s| match s {
                    CShare::Chunk(out) => out.c_chunk.clone(),
                    other => panic!("expected an Algorithm 1 chunk, got {other:?}"),
                })
                .collect();
            assemble_c(dims, grid, &chunks)
        }
        AlgPlan::Summa { pr, pc } => {
            assemble_from_blocks(n1, n3, pr, pc, |i, j| block_share(&shares[i * pc + j], i, j))
        }
        AlgPlan::Cannon { q } | AlgPlan::TwoFiveD { q, .. } => {
            assemble_from_blocks(n1, n3, q, q, |i, j| block_share(&shares[i * q + j], i, j))
        }
        AlgPlan::Carma { p } => {
            let flats: Vec<Vec<f64>> = shares[..p]
                .iter()
                .map(|s| match s {
                    CShare::Flat(Some(v)) => v.clone(),
                    other => panic!("expected a CARMA share, got {other:?}"),
                })
                .collect();
            carma_assemble_c(dims, p, &flats)
        }
    }
}

fn block_share(share: &CShare, i: usize, j: usize) -> Matrix {
    match share {
        CShare::Block(Some(m)) => m.clone(),
        other => panic!("expected the C block of position ({i}, {j}), got {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmm_dense::{gemm, random_int_matrix};
    use pmm_simnet::{FaultPlan, MachineParams, World};

    fn inputs(dims: MatMulDims) -> (Matrix, Matrix) {
        (
            random_int_matrix(dims.n1 as usize, dims.n2 as usize, -3..4, 91),
            random_int_matrix(dims.n2 as usize, dims.n3 as usize, -3..4, 92),
        )
    }

    fn all_specs() -> Vec<Recoverable> {
        vec![
            Recoverable::Alg1 { kernel: Kernel::Naive, assembly: Assembly::ReduceScatter },
            Recoverable::Alg1Streamed { kernel: Kernel::Naive, slabs: 2 },
            Recoverable::Summa { kernel: Kernel::Naive },
            Recoverable::Cannon { kernel: Kernel::Naive },
            Recoverable::TwoFiveD { kernel: Kernel::Naive },
            Recoverable::Carma { kernel: Kernel::Naive },
        ]
    }

    #[test]
    fn plan_for_fills_the_survivor_count_sensibly() {
        let dims = MatMulDims::new(16, 16, 16);
        for spec in all_specs() {
            for p in 1..=12usize {
                let plan = plan_for(&spec, dims, p);
                assert!(plan.active() <= p, "{plan} overfills p={p}");
                assert!(plan.active() >= 1);
            }
        }
        // Spot checks of the layout policies.
        assert_eq!(plan_for(&all_specs()[3], dims, 10), AlgPlan::Cannon { q: 3 });
        assert_eq!(plan_for(&all_specs()[4], dims, 8), AlgPlan::TwoFiveD { q: 2, c: 2 });
        assert_eq!(plan_for(&all_specs()[4], dims, 9), AlgPlan::TwoFiveD { q: 3, c: 1 });
        assert_eq!(plan_for(&all_specs()[5], dims, 13), AlgPlan::Carma { p: 8 });
        assert_eq!(plan_for(&all_specs()[2], dims, 6), AlgPlan::Summa { pr: 2, pc: 3 });
    }

    #[test]
    fn owned_inputs_partition_the_inputs_exactly() {
        let dims = MatMulDims::new(12, 8, 10);
        let (a, b) = inputs(dims);
        let total = (dims.n1 * dims.n2 + dims.n2 * dims.n3) as usize;
        for spec in all_specs() {
            for p in [1usize, 4, 6, 9] {
                let plan = plan_for(&spec, dims, p);
                let words: usize = (0..p).map(|i| owned_inputs(&plan, dims, i, &a, &b).len()).sum();
                assert_eq!(words, total, "{plan} on p={p}");
            }
        }
    }

    #[test]
    fn fault_free_recovery_is_bitwise_correct_for_all_six() {
        let dims = MatMulDims::new(12, 8, 16);
        let (a, b) = inputs(dims);
        let want = gemm(&a, &b, Kernel::Naive);
        for spec in all_specs() {
            for p in [4usize, 6] {
                if matches!(spec, Recoverable::Carma { .. }) && p == 6 {
                    continue; // CARMA splits need even dims at each level
                }
                let spec2 = spec.clone();
                let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
                    let (a, b) = inputs(dims);
                    run_recoverable(rank, &spec2, dims, &a, &b).expect("no faults")
                });
                let plan = out.values[0].plan.clone();
                let shares: Vec<CShare> = out.values.iter().map(|v| v.share.clone()).collect();
                let got = assemble_recovered(dims, &plan, &shares);
                assert_eq!(got, want, "{plan} on p={p}");
                for v in &out.values {
                    assert_eq!(v.attempts(), 1);
                    assert_eq!(v.survivors, (0..p).collect::<Vec<_>>());
                }
            }
        }
    }

    #[test]
    fn kill_recovers_on_all_six() {
        let dims = MatMulDims::new(12, 8, 16);
        let (a, b) = inputs(dims);
        let want = gemm(&a, &b, Kernel::Naive);
        for spec in all_specs() {
            let p = 5usize; // 4 survivors: power of two, square, 2×2
            let spec2 = spec.clone();
            let out = World::new(p, MachineParams::BANDWIDTH_ONLY)
                .with_faults(FaultPlan::default().with_kill(2, 3))
                .run(move |rank| {
                    let (a, b) = inputs(dims);
                    run_recoverable(rank, &spec2, dims, &a, &b)
                });
            let ok: Vec<&Recovered> = out.values.iter().filter_map(|r| r.as_ref().ok()).collect();
            assert_eq!(ok.len(), 4, "{spec:?}: survivors return Ok");
            let plan = ok[0].plan.clone();
            assert_eq!(ok[0].survivors, vec![0, 1, 3, 4]);
            assert!(ok[0].attempts() >= 2, "{spec:?}: retried after the kill");
            let shares: Vec<CShare> = ok.iter().map(|v| v.share.clone()).collect();
            assert_eq!(assemble_recovered(dims, &plan, &shares), want, "{plan}");
        }
    }

    #[test]
    fn restore_goodput_matches_the_model_exactly() {
        use pmm_model::restore_words_total;
        let dims = MatMulDims::new(12, 8, 16);
        for spec in all_specs() {
            let p = 4usize;
            let spec2 = spec.clone();
            let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
                let (a, b) = inputs(dims);
                run_recoverable(rank, &spec2, dims, &a, &b).expect("no faults")
            });
            let restore: u64 = out.values.iter().map(|v| v.restore_meter.words_sent).sum();
            assert_eq!(restore as f64, restore_words_total(dims, p), "{spec:?}");
        }
    }
}
