//! Shared infrastructure for the distributed algorithms: fiber
//! communicators, phase metering, and output reassembly for verification.

use pmm_dense::{block_range, Matrix};
use pmm_model::Grid3;
use pmm_simnet::{poll_now, Comm, Meter, Rank};

/// Traffic attributed to one named phase of an algorithm (diff of two
/// meter snapshots).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseMeter {
    /// Phase label (e.g. `"all-gather A"`).
    pub label: &'static str,
    /// Traffic and flops during the phase.
    pub meter: Meter,
}

impl PhaseMeter {
    /// Measure `f` as a phase on `rank`: the returned [`PhaseMeter`] is
    /// the meter diff across `f`, and when tracing is on the phase is
    /// additionally emitted as a labelled scope into the structured trace
    /// (see `pmm_simnet::tracer`).
    pub fn measure<T>(
        rank: &mut Rank,
        label: &'static str,
        f: impl FnOnce(&mut Rank) -> T,
    ) -> (T, PhaseMeter) {
        let probe = PhaseProbe::begin(rank, label);
        let out = f(rank);
        (out, probe.finish(rank))
    }
}

/// An in-flight phase measurement. [`PhaseMeter::measure`] wraps the
/// phase body in a closure, which cannot hold the rank borrow across an
/// `.await`; async algorithm bodies instead bracket the phase manually:
/// [`PhaseProbe::begin`], run the body (awaiting freely), then
/// [`PhaseProbe::finish`]. Both paths emit the same trace scope and meter
/// diff.
#[must_use = "a phase probe measures nothing until finished"]
pub struct PhaseProbe {
    label: &'static str,
    before: Meter,
}

impl PhaseProbe {
    /// Snapshot the meter and open the labelled phase scope.
    pub fn begin(rank: &mut Rank, label: &'static str) -> PhaseProbe {
        let before = rank.meter();
        rank.phase_begin(label);
        PhaseProbe { label, before }
    }

    /// Close the phase scope and return the meter diff across it.
    pub fn finish(self, rank: &mut Rank) -> PhaseMeter {
        rank.phase_end(self.label);
        let meter = rank.meter().diff(&self.before);
        PhaseMeter { label: self.label, meter }
    }
}

/// Create the three fiber communicators of `grid` for the calling rank:
/// `comms[axis]` spans the fiber through this rank's coordinate along
/// `axis`, ordered by that coordinate (so communicator index equals
/// `coord[axis]`).
///
/// Every world rank must call this exactly once, and the world size must
/// equal the grid size.
pub fn fiber_comms(rank: &mut Rank, grid: Grid3) -> [Comm; 3] {
    let world = rank.world_comm();
    fiber_comms_on(rank, &world, grid)
}

/// Async form of [`fiber_comms`] (event-loop programs).
pub async fn fiber_comms_a(rank: &mut Rank, grid: Grid3) -> [Comm; 3] {
    let world = rank.world_comm();
    fiber_comms_on_a(rank, &world, grid).await
}

/// [`fiber_comms`] generalized to an arbitrary base communicator: this
/// rank's grid coordinate is derived from its index *in `base`*, whose
/// size must equal the grid size. This is what failure recovery needs —
/// after a rank dies, the survivors' communicator is no longer the world,
/// and the shrunken grid is laid out over it.
pub fn fiber_comms_on(rank: &mut Rank, base: &Comm, grid: Grid3) -> [Comm; 3] {
    poll_now(fiber_comms_on_a(rank, base, grid))
}

/// Async form of [`fiber_comms_on`] (event-loop programs).
pub async fn fiber_comms_on_a(rank: &mut Rank, base: &Comm, grid: Grid3) -> [Comm; 3] {
    assert_eq!(base.size(), grid.size(), "base communicator size must equal grid size");
    let coord = grid.coord_of(base.index());
    async fn make(
        rank: &mut Rank,
        base: &Comm,
        grid: Grid3,
        coord: [usize; 3],
        axis: usize,
    ) -> Comm {
        let color = grid.fiber_color(coord, axis) as i64;
        let key = coord[axis] as i64;
        let comm = rank
            .split_a(base, color, key)
            .await
            .expect("non-negative color always yields a communicator");
        assert_eq!(comm.size(), grid.dims()[axis]);
        assert_eq!(comm.index(), coord[axis]);
        comm
    }
    [
        make(rank, base, grid, coord, 0).await,
        make(rank, base, grid, coord, 1).await,
        make(rank, base, grid, coord, 2).await,
    ]
}

/// Reassemble a global matrix from per-coordinate owned blocks.
///
/// `block_of(i, j)` must return the `(i, j)` block of the `pr × pc` block
/// partition of an `rows × cols` matrix (uneven partitions follow
/// [`block_range`]). Used by tests and experiment harnesses to verify
/// distributed outputs; reassembly happens *outside* the simulated
/// machine, so it does not perturb any meter.
pub fn assemble_from_blocks(
    rows: usize,
    cols: usize,
    pr: usize,
    pc: usize,
    mut block_of: impl FnMut(usize, usize) -> Matrix,
) -> Matrix {
    let mut out = Matrix::zeros(rows, cols);
    for i in 0..pr {
        for j in 0..pc {
            let r = block_range(rows, pr, i);
            let c = block_range(cols, pc, j);
            let blk = block_of(i, j);
            assert_eq!(
                (blk.rows(), blk.cols()),
                (r.len(), c.len()),
                "block ({i},{j}) has wrong shape"
            );
            out.set_sub(r.start, c.start, &blk);
        }
    }
    out
}

/// Flatten the `(i, j)` block of `m` under a `pr × pc` partition into a
/// row-major vector (the wire/storage format used by the distributed
/// algorithms).
pub fn flatten_block(m: &Matrix, pr: usize, pc: usize, i: usize, j: usize) -> Vec<f64> {
    let r = block_range(m.rows(), pr, i);
    let c = block_range(m.cols(), pc, j);
    m.sub(r.start, c.start, r.len(), c.len()).into_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmm_simnet::{MachineParams, World};

    #[test]
    fn fiber_comms_have_right_shape_and_order() {
        let grid = Grid3::new(2, 3, 2);
        let out = World::new(12, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let comms = fiber_comms(rank, grid);
            let coord = grid.coord_of(rank.world_rank());
            (0..3).map(|a| (comms[a].size(), comms[a].index() == coord[a])).collect::<Vec<_>>()
        });
        for v in &out.values {
            assert_eq!(v[0].0, 2);
            assert_eq!(v[1].0, 3);
            assert_eq!(v[2].0, 2);
            assert!(v.iter().all(|&(_, ok)| ok));
        }
    }

    #[test]
    fn fiber_comm_members_match_grid_fibers() {
        let grid = Grid3::new(3, 3, 3);
        let out = World::new(27, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let comms = fiber_comms(rank, grid);
            let coord = grid.coord_of(rank.world_rank());
            (0..3).map(|a| (comms[a].members().to_vec(), grid.fiber(coord, a))).collect::<Vec<_>>()
        });
        for v in &out.values {
            for (got, want) in v {
                assert_eq!(got, want);
            }
        }
    }

    #[test]
    fn assemble_round_trips_a_partition() {
        let m = Matrix::from_fn(7, 9, |r, c| (r * 9 + c) as f64);
        let got = assemble_from_blocks(7, 9, 3, 2, |i, j| {
            let r = block_range(7, 3, i);
            let c = block_range(9, 2, j);
            m.sub(r.start, c.start, r.len(), c.len())
        });
        assert_eq!(got, m);
    }

    #[test]
    fn flatten_block_is_row_major() {
        let m = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f64);
        let v = flatten_block(&m, 2, 2, 1, 0);
        assert_eq!(v, vec![8.0, 9.0, 12.0, 13.0]);
    }

    #[test]
    fn phase_meter_attributes_traffic() {
        let out = World::new(2, MachineParams::BANDWIDTH_ONLY).run(|rank| {
            let wc = rank.world_comm();
            let partner = 1 - wc.index();
            let (_, p1) = PhaseMeter::measure(rank, "x", |r| {
                r.sendrecv(&wc, partner, &[1.0; 5]);
            });
            let (_, p2) = PhaseMeter::measure(rank, "y", |r| {
                r.sendrecv(&wc, partner, &[1.0; 7]);
            });
            (p1.meter.words_sent, p2.meter.words_sent)
        });
        assert_eq!(out.values[0], (5, 7));
    }
}
