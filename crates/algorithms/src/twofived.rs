//! The 2.5D algorithm (Solomonik & Demmel 2011) — trading replicated
//! memory for reduced communication (§2.4, §6.2 context).
//!
//! `P = c·q²` processors arranged as `c` layers of `q × q` grids, with
//! `c | q`. One copy of the inputs lives on layer 0 (`q × q` blocks).
//! The algorithm:
//!
//! 1. broadcasts each block over its layer fiber (replication — this is
//!    the memory-for-bandwidth trade);
//! 2. each layer runs `q/c` Cannon-style shifted steps, layer `l`
//!    starting at inner offset `l·q/c`, so the `c` layers jointly cover
//!    all `q` inner positions;
//! 3. partial `C`s are summed to layer 0 with a binomial reduce over the
//!    fiber.
//!
//! Per-processor bandwidth is `Θ(n²/√(cP))` for square problems — a
//! `√c` improvement over 2D algorithms, at `c×` the memory. At `c = 1` it
//! degenerates to Cannon; at `c = q` (i.e. `P = q³`) it is a 3D
//! algorithm.

use pmm_collectives::{bcast_a, reduce_a, BcastAlgo, ReduceAlgo};
use pmm_dense::{block_range, gemm_acc, Kernel, Matrix};
use pmm_model::MatMulDims;
use pmm_simnet::{poll_now, Comm, Rank};

/// Configuration for [`twofived`].
#[derive(Debug, Clone)]
pub struct TwoFiveDConfig {
    /// Problem dimensions.
    pub dims: MatMulDims,
    /// Layer grid edge `q`.
    pub q: usize,
    /// Replication factor `c` (world size must be `c·q²`, and `c | q`).
    pub c: usize,
    /// Local compute kernel.
    pub kernel: Kernel,
}

/// Per-rank result of [`twofived`].
#[derive(Debug, Clone)]
pub struct TwoFiveDOutput {
    /// On layer 0: this rank's fully-summed `C` block; on other layers
    /// `None`.
    pub c_block: Option<Matrix>,
}

/// Run the 2.5D algorithm. `a`/`b` are the global inputs, read only by
/// the layer-0 owner of each block.
pub fn twofived(rank: &mut Rank, cfg: &TwoFiveDConfig, a: &Matrix, b: &Matrix) -> TwoFiveDOutput {
    poll_now(twofived_a(rank, cfg, a, b))
}

/// Async form of [`twofived`] (event-loop programs).
pub async fn twofived_a(
    rank: &mut Rank,
    cfg: &TwoFiveDConfig,
    a: &Matrix,
    b: &Matrix,
) -> TwoFiveDOutput {
    let (q, c) = (cfg.q, cfg.c);
    assert_eq!(rank.world_size(), c * q * q, "world size must be c·q²");
    let world = rank.world_comm();
    twofived_on_a(rank, &world, cfg, a, b).await
}

/// Run the 2.5D algorithm on communicator `base` instead of the world
/// (recovery runs use a survivor communicator). The first `c·q²`
/// members are active; later members participate in the three splits
/// with a negative color and return `c_block: None` like non-layer-0
/// ranks.
pub async fn twofived_on_a(
    rank: &mut Rank,
    base: &Comm,
    cfg: &TwoFiveDConfig,
    a: &Matrix,
    b: &Matrix,
) -> TwoFiveDOutput {
    let (q, c) = (cfg.q, cfg.c);
    assert!(base.size() >= c * q * q, "communicator too small for c layers of q × q");
    assert!(q % c == 0, "2.5D requires c | q (got q={q}, c={c})");
    let dims = cfg.dims;
    let (n1, n2, n3) = (dims.n1 as usize, dims.n2 as usize, dims.n3 as usize);

    // Rank layout: base index = l·q² + i·q + j.
    let me = base.index();
    if me >= c * q * q {
        // Idle member: opt out of all three splits (MPI_UNDEFINED).
        for _ in 0..3 {
            let none = rank.split_a(base, -1, me as i64).await;
            debug_assert!(none.is_none());
        }
        return TwoFiveDOutput { c_block: None };
    }
    let l = me / (q * q);
    let (i, j) = ((me % (q * q)) / q, me % q);

    // Row comm within my layer (vary j), column comm within my layer
    // (vary i), fiber comm across layers (vary l).
    let row = rank.split_a(base, (l * q + i) as i64, j as i64).await.expect("row comm");
    let col = rank.split_a(base, (q * q + l * q + j) as i64, i as i64).await.expect("col comm");
    let fiber =
        rank.split_a(base, (2 * q * q + i * q + j) as i64, l as i64).await.expect("fiber comm");
    debug_assert_eq!(row.size(), q);
    debug_assert_eq!(col.size(), q);
    debug_assert_eq!(fiber.size(), c);

    // ---- step 1: replicate the layer-0 blocks over the fiber --------------
    let ra = block_range(n1, q, i);
    let ca = block_range(n2, q, j);
    let rb = block_range(n2, q, i);
    let cb = block_range(n3, q, j);
    let a_words = ra.len() * ca.len();
    let b_words = rb.len() * cb.len();
    let a0 = if l == 0 {
        a.sub(ra.start, ca.start, ra.len(), ca.len()).into_vec()
    } else {
        vec![0.0; a_words]
    };
    let b0 = if l == 0 {
        b.sub(rb.start, cb.start, rb.len(), cb.len()).into_vec()
    } else {
        vec![0.0; b_words]
    };
    rank.mem_acquire((a_words + b_words) as u64);
    let (mut a_cur, mut b_cur) = pmm_simnet::phase!(rank, "replicate inputs", {
        let a = Matrix::from_vec(
            ra.len(),
            ca.len(),
            bcast_a(rank, &fiber, &a0, 0, BcastAlgo::Binomial).await,
        );
        let b = Matrix::from_vec(
            rb.len(),
            cb.len(),
            bcast_a(rank, &fiber, &b0, 0, BcastAlgo::Binomial).await,
        );
        (a, b)
    });

    // ---- step 2: shifted Cannon over my layer's q/c inner positions -------
    // Layer l covers inner positions {l·q/c + t : t in 0..q/c} (mod q,
    // Cannon-skewed by i+j). Pre-shift A and B so the first position is
    // aligned, exactly like Cannon's skew with offset l·q/c.
    let my_rows = ra.len();
    let my_cols = cb.len();
    let mut cmat = Matrix::zeros(my_rows, my_cols);
    rank.mem_acquire(cmat.words() as u64);

    // Inner-dimension block index held after the skews (tracked explicitly
    // so shapes stay well-defined even when uneven partitions yield empty
    // blocks).
    let inner_len = |idx: usize| block_range(n2, q, idx).len();
    let mut inner = (i + j + l * (q / c)) % q;

    pmm_simnet::phase!(rank, "skew", {
        let shift_a = (i + l * (q / c)) % q;
        if q > 1 && shift_a > 0 {
            let to = (j + q - shift_a) % q;
            let from = (j + shift_a) % q;
            let msg = rank.exchange_a(&row, to, from, a_cur.as_slice()).await;
            a_cur = Matrix::from_vec(my_rows, inner_len(inner), msg.payload);
        }
        let shift_b = (j + l * (q / c)) % q;
        if q > 1 && shift_b > 0 {
            let to = (i + q - shift_b) % q;
            let from = (i + shift_b) % q;
            let msg = rank.exchange_a(&col, to, from, b_cur.as_slice()).await;
            b_cur = Matrix::from_vec(inner_len(inner), my_cols, msg.payload);
        }
    });

    let steps = q / c;
    for t in 0..steps {
        assert_eq!(a_cur.cols(), b_cur.rows(), "inner blocks misaligned at step {t}");
        pmm_simnet::phase!(rank, "local multiply", {
            gemm_acc(&mut cmat, &a_cur, &b_cur, cfg.kernel);
            rank.compute((a_cur.rows() * a_cur.cols() * b_cur.cols()) as f64);
        });
        if t + 1 < steps {
            pmm_simnet::phase!(rank, "rotate", {
                let next_inner = (inner + 1) % q;
                let msg =
                    rank.exchange_a(&row, (j + q - 1) % q, (j + 1) % q, a_cur.as_slice()).await;
                a_cur = Matrix::from_vec(my_rows, inner_len(next_inner), msg.payload);
                let msg =
                    rank.exchange_a(&col, (i + q - 1) % q, (i + 1) % q, b_cur.as_slice()).await;
                b_cur = Matrix::from_vec(inner_len(next_inner), my_cols, msg.payload);
                inner = next_inner;
            });
        }
    }

    // ---- step 3: sum partial C over the fiber to layer 0 ------------------
    let summed = pmm_simnet::phase!(rank, "reduce C over fiber", {
        reduce_a(rank, &fiber, cmat.as_slice(), 0, ReduceAlgo::Binomial).await
    });
    let c_block = (l == 0).then(|| Matrix::from_vec(my_rows, my_cols, summed));
    TwoFiveDOutput { c_block }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::assemble_from_blocks;
    use pmm_dense::{gemm, random_int_matrix};
    use pmm_simnet::{MachineParams, World};

    fn run(
        dims: MatMulDims,
        q: usize,
        c: usize,
    ) -> (Matrix, pmm_simnet::WorldResult<TwoFiveDOutput>) {
        let cfg = TwoFiveDConfig { dims, q, c, kernel: Kernel::Naive };
        let out = World::new(c * q * q, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let a = random_int_matrix(dims.n1 as usize, dims.n2 as usize, -3..4, 25);
            let b = random_int_matrix(dims.n2 as usize, dims.n3 as usize, -3..4, 26);
            twofived(rank, &cfg, &a, &b)
        });
        let cmat = assemble_from_blocks(dims.n1 as usize, dims.n3 as usize, q, q, |i, j| {
            out.values[i * q + j].c_block.clone().expect("layer 0 holds C")
        });
        (cmat, out)
    }

    fn reference(dims: MatMulDims) -> Matrix {
        let a = random_int_matrix(dims.n1 as usize, dims.n2 as usize, -3..4, 25);
        let b = random_int_matrix(dims.n2 as usize, dims.n3 as usize, -3..4, 26);
        gemm(&a, &b, Kernel::Naive)
    }

    #[test]
    fn correct_at_c1_degenerates_to_cannon() {
        let dims = MatMulDims::new(12, 12, 12);
        let (cmat, _) = run(dims, 3, 1);
        assert_eq!(cmat, reference(dims));
    }

    #[test]
    fn correct_with_replication() {
        let dims = MatMulDims::new(8, 8, 8);
        for (q, c) in [(2usize, 2usize), (4, 2), (4, 4)] {
            let (cmat, _) = run(dims, q, c);
            assert_eq!(cmat, reference(dims), "q={q} c={c}");
        }
    }

    #[test]
    fn correct_rectangular() {
        let dims = MatMulDims::new(12, 8, 4);
        let (cmat, _) = run(dims, 4, 2);
        assert_eq!(cmat, reference(dims));
    }

    #[test]
    fn non_layer0_ranks_return_none() {
        let dims = MatMulDims::new(8, 8, 8);
        let (_, out) = run(dims, 2, 2);
        for (r, v) in out.values.iter().enumerate() {
            assert_eq!(v.c_block.is_some(), r < 4, "rank {r}");
        }
    }

    #[test]
    fn replication_beats_2d_at_scale() {
        // Same P = 1024: c = 1 (pure Cannon on 32×32) vs c = 4 (16×16×4).
        // The replicated version does q/c shift steps instead of q; at this
        // P the saving exceeds the replication + reduction overhead, the
        // memory-for-communication trade §6.2 discusses.
        use crate::cannon::{cannon, CannonConfig};
        let dims = MatMulDims::new(32, 32, 32);
        let (_, repl) = run(dims, 16, 4); // P = 1024
        let cfg = CannonConfig { dims, q: 32, kernel: Kernel::Naive };
        let flat = World::new(1024, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let a = random_int_matrix(32, 32, -3..4, 25);
            let b = random_int_matrix(32, 32, -3..4, 26);
            cannon(rank, &cfg, &a, &b)
        });
        assert!(
            repl.critical_path_time() < flat.critical_path_time(),
            "2.5D (c=4) {} should beat 2D (c=1) {}",
            repl.critical_path_time(),
            flat.critical_path_time()
        );
    }

    #[test]
    #[should_panic(expected = "c | q")]
    fn rejects_c_not_dividing_q() {
        let dims = MatMulDims::new(8, 8, 8);
        let cfg = TwoFiveDConfig { dims, q: 3, c: 2, kernel: Kernel::Naive };
        World::new(18, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let a = random_int_matrix(8, 8, -1..2, 1);
            let b = random_int_matrix(8, 8, -1..2, 2);
            twofived(rank, &cfg, &a, &b);
        });
    }
}
