//! Property-based tests for the distributed algorithms: Algorithm 1
//! computes the right product and meters exactly eq. (3) across random
//! dimensions and random grids (divisible or not), and Cannon/SUMMA agree
//! on random instances.

use pmm_algs::{
    alg1, assemble_c, assemble_from_blocks, cannon, summa, Alg1Config, Assembly, CannonConfig,
    SummaConfig,
};
use pmm_core::gridopt::alg1_cost_words;
use pmm_dense::{gemm, random_int_matrix, Kernel, Matrix};
use pmm_model::{Grid3, MatMulDims};
use pmm_simnet::{MachineParams, World};
use proptest::prelude::*;

fn reference(dims: MatMulDims, seed: u64) -> Matrix {
    let a = random_int_matrix(dims.n1 as usize, dims.n2 as usize, -3..4, seed);
    let b = random_int_matrix(dims.n2 as usize, dims.n3 as usize, -3..4, seed + 1);
    gemm(&a, &b, Kernel::Naive)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn alg1_is_correct_on_random_instances(
        n1 in 1u64..20, n2 in 1u64..20, n3 in 1u64..20,
        p1 in 1usize..4, p2 in 1usize..4, p3 in 1usize..4,
        assembly_pick in 0usize..2,
        seed in 0u64..500,
    ) {
        let dims = MatMulDims::new(n1, n2, n3);
        let grid = Grid3::new(p1, p2, p3);
        let assembly =
            if assembly_pick == 0 { Assembly::ReduceScatter } else { Assembly::AllToAllSum };
        let cfg = Alg1Config { dims, grid, kernel: Kernel::Naive, assembly };
        let out = World::new(grid.size(), MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let a = random_int_matrix(n1 as usize, n2 as usize, -3..4, seed);
            let b = random_int_matrix(n2 as usize, n3 as usize, -3..4, seed + 1);
            alg1(rank, &cfg, &a, &b)
        });
        let chunks: Vec<_> = out.values.iter().map(|v| v.c_chunk.clone()).collect();
        prop_assert_eq!(assemble_c(dims, grid, &chunks), reference(dims, seed));
    }

    #[test]
    fn alg1_meters_eq3_exactly_when_divisible(
        b1 in 1u64..5, b2 in 1u64..5, b3 in 1u64..5, // block edges
        p1 in 1usize..4, p2 in 1usize..4, p3 in 1usize..4,
        chunk_mult in 1u64..3,
    ) {
        // Construct dims so blocks AND fiber chunks divide evenly:
        // n_i = p_i · b_i · (chunk_mult · lcm-ish slack via P).
        let pall = (p1 * p2 * p3) as u64;
        let dims = MatMulDims::new(
            p1 as u64 * b1 * pall * chunk_mult,
            p2 as u64 * b2 * pall,
            p3 as u64 * b3 * pall,
        );
        let grid = [p1, p2, p3];
        prop_assume!(dims.divisible_by(grid));
        let g = Grid3::from_dims(grid);
        let cfg = Alg1Config::new(dims, g);
        let (n1, n2, n3) = (dims.n1 as usize, dims.n2 as usize, dims.n3 as usize);
        prop_assume!(n1 * n2 * n3 <= 200_000); // keep local gemm cheap
        let out = World::new(g.size(), MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let a = random_int_matrix(n1, n2, -1..2, 1);
            let b = random_int_matrix(n2, n3, -1..2, 2);
            alg1(rank, &cfg, &a, &b);
            rank.time()
        });
        let want = alg1_cost_words(dims, grid);
        for (r, &t) in out.values.iter().enumerate() {
            prop_assert!((t - want).abs() < 1e-6, "rank {r}: {t} vs eq3 {want}");
        }
    }

    #[test]
    fn cannon_and_summa_agree_with_reference(
        n1 in 1u64..16, n2 in 1u64..16, n3 in 1u64..16,
        q in 1usize..4,
        seed in 0u64..500,
    ) {
        let dims = MatMulDims::new(n1, n2, n3);
        let want = reference(dims, seed);

        let ccfg = CannonConfig { dims, q, kernel: Kernel::Naive };
        let out = World::new(q * q, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let a = random_int_matrix(n1 as usize, n2 as usize, -3..4, seed);
            let b = random_int_matrix(n2 as usize, n3 as usize, -3..4, seed + 1);
            cannon(rank, &ccfg, &a, &b)
        });
        let got = assemble_from_blocks(n1 as usize, n3 as usize, q, q, |i, j| {
            out.values[i * q + j].c_block.clone()
        });
        prop_assert_eq!(&got, &want, "cannon q={}", q);

        let scfg = SummaConfig { dims, pr: q, pc: q, kernel: Kernel::Naive };
        let out = World::new(q * q, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let a = random_int_matrix(n1 as usize, n2 as usize, -3..4, seed);
            let b = random_int_matrix(n2 as usize, n3 as usize, -3..4, seed + 1);
            summa(rank, &scfg, &a, &b)
        });
        let got = assemble_from_blocks(n1 as usize, n3 as usize, q, q, |i, j| {
            out.values[i * q + j].c_block.clone()
        });
        prop_assert_eq!(&got, &want, "summa q={}", q);
    }
}
