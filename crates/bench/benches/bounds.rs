//! Criterion bench: the bound machinery itself — cheap enough that a
//! downstream scheduler could call it per-decision (formula evaluation,
//! exact integer grid search, KKT verification, numeric solver).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pmm_core::gridopt::best_grid;
use pmm_core::kkt::{certificate_for, verify_kkt};
use pmm_core::numeric::solve_numeric;
use pmm_core::optproblem::OptProblem;
use pmm_core::theorem3::lower_bound;
use pmm_model::MatMulDims;
use std::hint::black_box;

fn bench_bound_eval(c: &mut Criterion) {
    let dims = MatMulDims::new(9600, 2400, 600);
    c.bench_function("lower_bound_eval", |b| {
        b.iter(|| black_box(lower_bound(black_box(dims), black_box(512.0))))
    });
}

fn bench_grid_search(c: &mut Criterion) {
    let dims = MatMulDims::new(9600, 2400, 600);
    let mut group = c.benchmark_group("best_grid");
    for p in [64usize, 512, 5040, 65536] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| black_box(best_grid(black_box(dims), p)))
        });
    }
    group.finish();
}

fn bench_kkt(c: &mut Criterion) {
    let prob = OptProblem::new(9600.0, 2400.0, 600.0, 36.0);
    let sol = prob.solve();
    c.bench_function("kkt_verify", |b| {
        b.iter(|| {
            let mu = certificate_for(&prob);
            black_box(verify_kkt(&prob, sol.x, mu, 1e-9))
        })
    });
}

fn bench_numeric_solver(c: &mut Criterion) {
    let prob = OptProblem::new(9600.0, 2400.0, 600.0, 36.0);
    let mut group = c.benchmark_group("numeric_solver");
    group.sample_size(20);
    for levels in [4usize, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(levels), &levels, |b, &l| {
            b.iter(|| black_box(solve_numeric(&prob, l)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bound_eval, bench_grid_search, bench_kkt, bench_numeric_solver);
criterion_main!(benches);
