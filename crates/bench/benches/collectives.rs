//! Criterion bench: wall-clock of the collective implementations on the
//! simulated machine (spawn + run + join), and the ring-vs-recursive
//! ablation of DESIGN.md §7.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pmm_collectives::{all_gather, reduce_scatter, AllGatherAlgo, ReduceScatterAlgo};
use pmm_simnet::{MachineParams, World};
use std::hint::black_box;

fn bench_all_gather(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_gather");
    group.sample_size(20);
    for p in [4usize, 8, 16] {
        for w in [1_000usize, 10_000] {
            group.throughput(Throughput::Elements(((p - 1) * w) as u64));
            for (name, algo) in
                [("ring", AllGatherAlgo::Ring), ("recdbl", AllGatherAlgo::RecursiveDoubling)]
            {
                group.bench_with_input(
                    BenchmarkId::new(name, format!("p{p}_w{w}")),
                    &0,
                    |bench, _| {
                        bench.iter(|| {
                            World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
                                let comm = rank.world_comm();
                                black_box(all_gather(rank, &comm, &vec![1.0; w], algo));
                            })
                        })
                    },
                );
            }
        }
    }
    group.finish();
}

fn bench_reduce_scatter(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduce_scatter");
    group.sample_size(20);
    for p in [4usize, 8, 16] {
        let w = 10_000usize;
        group.throughput(Throughput::Elements(((p - 1) * w) as u64));
        for (name, algo) in
            [("ring", ReduceScatterAlgo::Ring), ("rechalf", ReduceScatterAlgo::RecursiveHalving)]
        {
            group.bench_with_input(BenchmarkId::new(name, p), &p, |bench, _| {
                bench.iter(|| {
                    World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
                        let comm = rank.world_comm();
                        black_box(reduce_scatter(rank, &comm, &vec![1.0; p * w], algo));
                    })
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_all_gather, bench_reduce_scatter);
criterion_main!(benches);
