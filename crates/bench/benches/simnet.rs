//! Criterion bench: raw simulator overheads — world spawn/join, P2P
//! message round trips, duplex exchanges, communicator splits. These set
//! the noise floor under the algorithm benches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pmm_simnet::{MachineParams, World};
use std::hint::black_box;

fn bench_world_spawn(c: &mut Criterion) {
    let mut group = c.benchmark_group("world_spawn_join");
    group.sample_size(20);
    for p in [2usize, 16, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| World::new(p, MachineParams::BANDWIDTH_ONLY).run(|rank| rank.world_rank()))
        });
    }
    group.finish();
}

fn bench_ping_pong(c: &mut Criterion) {
    let mut group = c.benchmark_group("ping_pong");
    group.sample_size(20);
    for w in [8usize, 1024, 65536] {
        group.throughput(Throughput::Elements(w as u64));
        group.bench_with_input(BenchmarkId::from_parameter(w), &w, |b, &w| {
            b.iter(|| {
                World::new(2, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
                    let comm = rank.world_comm();
                    for _ in 0..10 {
                        if rank.world_rank() == 0 {
                            rank.send(&comm, 1, &vec![1.0; w]);
                            black_box(rank.recv(&comm, 1));
                        } else {
                            let m = rank.recv(&comm, 0);
                            rank.send(&comm, 0, &m.payload);
                        }
                    }
                })
            })
        });
    }
    group.finish();
}

fn bench_exchange_ring(c: &mut Criterion) {
    let mut group = c.benchmark_group("exchange_ring");
    group.sample_size(20);
    for p in [4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
                    let comm = rank.world_comm();
                    let me = comm.index();
                    for _ in 0..10 {
                        black_box(rank.exchange(&comm, (me + 1) % p, (me + p - 1) % p, &[1.0; 64]));
                    }
                })
            })
        });
    }
    group.finish();
}

fn bench_comm_split(c: &mut Criterion) {
    let mut group = c.benchmark_group("comm_split");
    group.sample_size(20);
    for p in [8usize, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
                    let world = rank.world_comm();
                    let color = (rank.world_rank() % 4) as i64;
                    black_box(rank.split(&world, color, rank.world_rank() as i64));
                })
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_world_spawn,
    bench_ping_pong,
    bench_exchange_ring,
    bench_comm_split
);
criterion_main!(benches);
