//! Criterion bench: end-to-end wall-clock of the parallel matmul
//! algorithms on the simulated machine (includes thread spawn/join — the
//! simulator's own overhead is benchmarked in `simnet`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pmm_algs::{
    alg1, alg1_streamed, cannon, carma, carma_shares, summa, Alg1Config, Assembly, CannonConfig,
    SummaConfig,
};
use pmm_core::gridopt::best_grid;
use pmm_dense::{random_matrix, Kernel, Matrix};
use pmm_model::MatMulDims;
use pmm_simnet::{MachineParams, World};
use std::hint::black_box;

fn inputs(dims: MatMulDims) -> (Matrix, Matrix) {
    (
        random_matrix(dims.n1 as usize, dims.n2 as usize, 11),
        random_matrix(dims.n2 as usize, dims.n3 as usize, 12),
    )
}

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_matmul");
    group.sample_size(10);
    let dims = MatMulDims::new(256, 128, 128);
    let p = 16usize;

    group.bench_function(BenchmarkId::new("alg1_opt_grid", p), |bench| {
        let cfg = Alg1Config::new(dims, best_grid(dims, p).grid3());
        bench.iter(|| {
            let cfg = cfg.clone();
            World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
                let (a, b) = inputs(dims);
                black_box(alg1(rank, &cfg, &a, &b));
            })
        })
    });

    group.bench_function(BenchmarkId::new("alg1_alltoall_assembly", p), |bench| {
        let mut cfg = Alg1Config::new(dims, best_grid(dims, p).grid3());
        cfg.assembly = Assembly::AllToAllSum;
        bench.iter(|| {
            let cfg = cfg.clone();
            World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
                let (a, b) = inputs(dims);
                black_box(alg1(rank, &cfg, &a, &b));
            })
        })
    });

    group.bench_function(BenchmarkId::new("alg1_streamed_t4", p), |bench| {
        let grid = best_grid(dims, p).grid3();
        bench.iter(|| {
            World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
                let (a, b) = inputs(dims);
                black_box(alg1_streamed(rank, dims, grid, 4, Kernel::Tiled, &a, &b));
            })
        })
    });

    group.bench_function(BenchmarkId::new("cannon", p), |bench| {
        let cfg = CannonConfig { dims, q: 4, kernel: Kernel::Tiled };
        bench.iter(|| {
            let cfg = cfg.clone();
            World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
                let (a, b) = inputs(dims);
                black_box(cannon(rank, &cfg, &a, &b));
            })
        })
    });

    group.bench_function(BenchmarkId::new("summa", p), |bench| {
        let cfg = SummaConfig { dims, pr: 4, pc: 4, kernel: Kernel::Tiled };
        bench.iter(|| {
            let cfg = cfg.clone();
            World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
                let (a, b) = inputs(dims);
                black_box(summa(rank, &cfg, &a, &b));
            })
        })
    });

    group.bench_function(BenchmarkId::new("carma", p), |bench| {
        bench.iter(|| {
            World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
                let (a, b) = inputs(dims);
                let (sa, sb) = carma_shares(p, rank.world_rank(), &a, &b);
                let comm = rank.world_comm();
                black_box(carma(rank, &comm, dims, Kernel::Tiled, sa, sb));
            })
        })
    });

    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
