//! Criterion bench: local matmul kernels (the γ side) — the ablation of
//! the per-rank compute choice called out in DESIGN.md §7.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pmm_dense::{gemm, gemm_view, random_matrix, Kernel};
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_matmul");
    // Every tier, including Auto (whose cost is the dispatch heuristic
    // plus whichever tier it resolves to at that size).
    for n in [32usize, 64, 128, 256] {
        let a = random_matrix(n, n, 1);
        let b = random_matrix(n, n, 2);
        group.throughput(Throughput::Elements((n * n * n) as u64));
        for kernel in Kernel::ALL {
            group.bench_with_input(BenchmarkId::new(format!("{kernel:?}"), n), &n, |bench, _| {
                bench.iter(|| black_box(gemm(black_box(&a), black_box(&b), kernel)))
            });
        }
    }
    group.finish();
}

fn bench_views_vs_copies(c: &mut Criterion) {
    // The zero-copy question: multiplying an interior block via a strided
    // view vs copying it out first.
    let mut group = c.benchmark_group("block_matmul");
    let parent_a = random_matrix(512, 512, 7);
    let parent_b = random_matrix(512, 512, 8);
    for blk in [64usize, 128, 256] {
        group.throughput(Throughput::Elements((blk * blk * blk) as u64));
        group.bench_with_input(BenchmarkId::new("copy_then_gemm", blk), &blk, |bench, &blk| {
            bench.iter(|| {
                let a = parent_a.sub(7, 11, blk, blk);
                let b = parent_b.sub(3, 5, blk, blk);
                black_box(gemm(&a, &b, Kernel::Tiled))
            })
        });
        group.bench_with_input(BenchmarkId::new("view_gemm", blk), &blk, |bench, &blk| {
            bench.iter(|| {
                black_box(gemm_view(
                    parent_a.subview(7, 11, blk, blk),
                    parent_b.subview(3, 5, blk, blk),
                ))
            })
        });
    }
    group.finish();
}

fn bench_rectangular(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_matmul_rect");
    // The shapes Algorithm 1's ranks actually see: skewed blocks.
    for (m, k, n) in [(256usize, 64usize, 16usize), (64, 256, 64), (16, 16, 1024)] {
        let a = random_matrix(m, k, 3);
        let b = random_matrix(k, n, 4);
        group.throughput(Throughput::Elements((m * k * n) as u64));
        for kernel in [Kernel::Naive, Kernel::Tiled, Kernel::Blocked, Kernel::Recursive] {
            group.bench_with_input(
                BenchmarkId::new(format!("{kernel:?}"), format!("{m}x{k}x{n}")),
                &0,
                |bench, _| bench.iter(|| black_box(gemm(black_box(&a), black_box(&b), kernel))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_views_vs_copies, bench_rectangular);
criterion_main!(benches);
