//! Measured-hardware calibration probes: fit the in-process α, β, γ of
//! [`pmm_model::MachineCalibration`] from timed runs.
//!
//! The simulator's cost model counts messages, words and flops; this
//! module measures what each of those *actually costs in wall-clock
//! seconds* on the current host, so `pmm-model` can turn eq. (3) word
//! counts into predicted seconds (see `docs/PERFORMANCE.md`):
//!
//! * **ping-pong** ([`pingpong_probe`]) — a 2-rank simnet world bounces
//!   payloads of increasing size; the per-message time is affine in the
//!   payload, and the least-squares fit yields `alpha` (intercept:
//!   per-message scheduling/matching overhead) and `beta` (slope:
//!   per-word channel cost, both endpoints included);
//! * **stream** ([`stream_probe`]) — a large `memcpy` loop reporting raw
//!   copy bandwidth in GB/s, a sanity diagnostic for `beta` (the channel
//!   cost is bounded below by the copy cost);
//! * **GEMM** ([`gemm_probe`]) — timed local multiplies fit `gamma`
//!   through the origin as seconds per *metered multiply-add* (the
//!   `n1·n2·n3` count the algorithms charge via `Rank::compute`, i.e.
//!   half the usual `2mnk` flop convention);
//! * an **empty world** run measures the fixed per-run setup cost that
//!   becomes [`MachineCalibration::rank_secs`];
//! * a **cell probe** ([`alg1_cell_run`] + [`fit_word_secs`]) — a small
//!   end-to-end Algorithm 1 run whose residual (after α, γ and
//!   `rank_secs`) fits the *effective* per-word cost δ of a given grid
//!   shape, which prices the staging copies and allocator traffic a bare
//!   ping-pong never sees.
//!
//! [`calibrate`] runs all four under a wall-clock budget and returns the
//! fitted calibration plus the raw probe points, so harnesses (the
//! `kernel_bench` binary, `cargo xtask calibrate`, `pmm calibrate`) can
//! report fit quality alongside the constants.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use pmm_algs::{alg1_a, Alg1Config};
use pmm_dense::{gemm, random_matrix, Kernel};
use pmm_model::{
    fit_affine, fit_through_origin, Grid3, MachineCalibration, MachineParams, MatMulDims,
};
use pmm_simnet::World;

/// Payload sizes (words) the ping-pong probe sweeps. Spread over two
/// orders of magnitude so the affine fit separates intercept from slope.
pub const PINGPONG_SIZES: [usize; 4] = [8, 256, 2048, 16384];

/// Matrix edges the GEMM probe times (square `n³` problems) — sized to
/// bracket the per-rank local blocks of the `kernel_bench` validation
/// cells, so the fitted γ transfers to distributed runs.
pub const GEMM_SIZES: [usize; 4] = [128, 192, 256, 384];

/// A fitted calibration plus the raw probe measurements it came from.
#[derive(Debug, Clone)]
pub struct CalibrationReport {
    /// The fitted constants (what `calibration.json` stores).
    pub cal: MachineCalibration,
    /// Ping-pong points: `(payload words, seconds per message)`.
    pub pingpong: Vec<(f64, f64)>,
    /// Raw memcpy bandwidth in GB/s (diagnostic; not a fitted constant).
    pub stream_gbps: f64,
    /// GEMM points: `(multiply-adds, seconds)` for the probed sizes.
    pub gemm: Vec<(f64, f64)>,
}

impl CalibrationReport {
    /// Worst relative error of the affine ping-pong fit over its own
    /// points — a fit-quality score (0 = perfect).
    pub fn pingpong_fit_error(&self) -> f64 {
        self.pingpong
            .iter()
            .map(|&(w, secs)| {
                let pred = self.cal.alpha + self.cal.beta * w;
                ((pred - secs) / secs).abs()
            })
            .fold(0.0, f64::max)
    }
}

/// Median-of-runs wall time of `f` (repeated `reps` times, `trials`
/// samples). The median discards scheduler hiccups without the bias of
/// taking the minimum.
fn timed(trials: usize, reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..trials.max(1))
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..reps.max(1) {
                f();
            }
            t0.elapsed().as_secs_f64() / reps.max(1) as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("probe times are finite"));
    samples[samples.len() / 2]
}

/// Wall time of one empty 2-rank world run — the fixed setup/teardown
/// cost every simulated run pays (`rank_secs`).
pub fn empty_world_probe(trials: usize) -> f64 {
    timed(trials, 1, || {
        let world = World::new(2, MachineParams::BANDWIDTH_ONLY);
        let out = world.run_async(|_rank| Box::pin(async {}));
        black_box(out.values.len());
    })
}

/// Time `rounds` ping-pong round trips of `words`-sized payloads on a
/// 2-rank world and return the wall time **per message** (2 messages per
/// round trip), with the empty-world setup cost subtracted.
pub fn pingpong_probe(words: usize, rounds: usize, world_secs: f64) -> f64 {
    let secs = timed(3, 1, || {
        let world = World::new(2, MachineParams::BANDWIDTH_ONLY);
        let out = world.run_async(|rank| {
            Box::pin(async move {
                let comm = rank.world_comm();
                let payload = vec![1.0f64; words];
                let mut acc = 0.0;
                for _ in 0..rounds {
                    if comm.index() == 0 {
                        rank.send_a(&comm, 1, &payload).await;
                        acc += rank.recv_a(&comm, 1).await.payload[0];
                    } else {
                        acc += rank.recv_a(&comm, 0).await.payload[0];
                        rank.send_a(&comm, 0, &payload).await;
                    }
                }
                acc
            })
        });
        black_box(out.values[0]);
    });
    ((secs - world_secs) / (2 * rounds) as f64).max(0.0)
}

/// Raw `memcpy` bandwidth in GB/s: repeatedly copy a `words`-sized
/// buffer and divide bytes moved by wall time.
pub fn stream_probe(words: usize, reps: usize) -> f64 {
    let src = vec![1.0f64; words];
    let mut dst = vec![0.0f64; words];
    let per_copy = timed(3, reps, || {
        dst.copy_from_slice(&src);
        black_box(dst[words / 2]);
    });
    (words * 8) as f64 / per_copy / 1e9
}

/// Time one `n × n × n` GEMM with `kernel` and return `(madds, secs)` —
/// the through-origin γ point for that size.
///
/// Each of the three trials multiplies a *fresh* matrix pair (generated
/// outside the timed region), so the median reflects the cold-data rate
/// a distributed run sees on newly received blocks, not the L3-warm
/// rerun rate — fitting γ warm underpredicts real runs by ~30%.
pub fn gemm_probe(n: usize, kernel: Kernel) -> (f64, f64) {
    let pairs: Vec<(pmm_dense::Matrix, pmm_dense::Matrix)> = (0..3)
        .map(|t| (random_matrix(n, n, 100 + 2 * t), random_matrix(n, n, 101 + 2 * t)))
        .collect();
    let mut trial = 0;
    let secs = timed(3, 1, || {
        let (a, b) = &pairs[trial % pairs.len()];
        trial += 1;
        black_box(gemm(black_box(a), black_box(b), kernel));
    });
    ((n * n * n) as f64, secs)
}

/// Best wall time and summed meter totals of an in-process Algorithm 1
/// run — the raw material for [`fit_word_secs`] and for the
/// `kernel_bench` validation cells.
#[derive(Debug, Clone, Copy)]
pub struct CellRun {
    /// Best-of-`reps` wall-clock seconds for the whole world run.
    pub wall_secs: f64,
    /// Messages sent, summed over ranks.
    pub msgs: f64,
    /// Words sent, summed over ranks.
    pub words: f64,
    /// Metered multiply-adds, summed over ranks.
    pub flops: f64,
}

/// Run Algorithm 1 on `dims` over `grid` in a simnet world and return
/// the best wall time plus the run's meter totals.
///
/// Inputs are generated once outside the timed region and shared across
/// ranks via `Arc`, so the wall clock prices only the run itself. The
/// event-loop simulator is single-threaded, so meters *summed over
/// ranks* (not critical-path maxima) are the right predictor basis.
pub fn alg1_cell_run(dims: MatMulDims, grid: [usize; 3], kernel: Kernel, reps: usize) -> CellRun {
    let p: usize = grid.iter().product();
    let a = Arc::new(random_matrix(dims.n1 as usize, dims.n2 as usize, 11));
    let b = Arc::new(random_matrix(dims.n2 as usize, dims.n3 as usize, 13));
    let mut cfg = Alg1Config::new(dims, Grid3::from_dims(grid));
    cfg.kernel = kernel;
    let cfg = Arc::new(cfg);
    let mut run = CellRun { wall_secs: f64::INFINITY, msgs: 0.0, words: 0.0, flops: 0.0 };
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run_async(|rank| {
            let (cfg, a, b) = (Arc::clone(&cfg), Arc::clone(&a), Arc::clone(&b));
            Box::pin(async move { alg1_a(rank, &cfg, &a, &b).await })
        });
        run.wall_secs = run.wall_secs.min(t0.elapsed().as_secs_f64());
        run.msgs = 0.0;
        run.words = 0.0;
        run.flops = 0.0;
        for r in &out.reports {
            run.msgs += r.meter.msgs_sent as f64;
            run.words += r.meter.words_sent as f64;
            run.flops += r.meter.flops;
        }
    }
    run
}

/// Fit the *end-to-end* per-word cost δ from a probe run's residual:
/// whatever wall time α, γ and `rank_secs` leave unexplained, divided by
/// the words sent.
///
/// The ping-pong β is the channel floor — what one word costs through a
/// bare send/recv pair. A real distributed run pays much more per word:
/// chunk extraction, v-collective assembly, fresh-buffer page faults and
/// the cache pressure all scale with the words moved, and *how much*
/// more depends on the communication pattern (fiber and chunk sizes), so
/// δ must be fitted per grid shape from a probe run of that shape and
/// only extrapolated along problem size (see `docs/PERFORMANCE.md`).
/// Clamped below by β: a run can hide per-word cost in cache warmth, but
/// the channel itself never gets cheaper than the probe floor.
pub fn fit_word_secs(cal: &MachineCalibration, probe: &CellRun) -> f64 {
    if probe.words <= 0.0 {
        return cal.beta;
    }
    let residual =
        probe.wall_secs - cal.gamma * probe.flops - cal.alpha * probe.msgs - cal.rank_secs;
    (residual / probe.words).max(cal.beta)
}

/// Run every probe under roughly `budget_secs` of wall clock and fit a
/// [`MachineCalibration`].
///
/// `kernel` selects the GEMM tier that γ describes — pass the same
/// kernel the runs you want to predict will use (normally
/// `pmm_dense::kernel_from_env(Kernel::default())`). The budget steers
/// the ping-pong round counts; the other probes are cheap and fixed.
pub fn calibrate(budget_secs: f64, kernel: Kernel) -> CalibrationReport {
    let budget = budget_secs.clamp(0.5, 120.0);

    let world_secs = empty_world_probe(5);

    // Ping-pong: pick a round count so each size costs ~1/8 of the
    // budget (4 sizes ≈ half the budget), from a quick 8-round pilot.
    let pilot = pingpong_probe(PINGPONG_SIZES[0], 8, world_secs).max(1e-8);
    let target_per_size = budget / 8.0;
    let rounds = ((target_per_size / (2.0 * pilot)) as usize).clamp(16, 4096);
    let pingpong: Vec<(f64, f64)> =
        PINGPONG_SIZES.iter().map(|&w| (w as f64, pingpong_probe(w, rounds, world_secs))).collect();
    let (alpha, beta) = fit_affine(&pingpong);

    let stream_gbps = stream_probe(1 << 21, 8); // 16 MiB copies

    let gemm: Vec<(f64, f64)> = GEMM_SIZES.iter().map(|&n| gemm_probe(n, kernel)).collect();
    let gamma = fit_through_origin(&gemm);

    let cal = MachineCalibration::new(alpha, beta, gamma).with_rank_secs(world_secs);
    CalibrationReport { cal, pingpong, stream_gbps, gemm }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_calibration_yields_positive_physical_constants() {
        let report = calibrate(0.5, Kernel::Naive);
        // β and γ are real measured rates — strictly positive on any
        // host. α can legitimately fit to ~0 (latency below noise).
        assert!(report.cal.beta > 0.0, "beta: {}", report.cal.beta);
        assert!(report.cal.gamma > 0.0, "gamma: {}", report.cal.gamma);
        assert!(report.cal.rank_secs > 0.0);
        assert!(report.stream_gbps > 0.0);
        assert_eq!(report.pingpong.len(), PINGPONG_SIZES.len());
        assert_eq!(report.gemm.len(), GEMM_SIZES.len());
    }

    #[test]
    fn gemm_probe_scales_with_problem_size() {
        let (f1, _) = gemm_probe(32, Kernel::Naive);
        let (f2, _) = gemm_probe(64, Kernel::Naive);
        assert_eq!(f1, 32.0 * 32.0 * 32.0);
        assert_eq!(f2 / f1, 8.0);
    }

    #[test]
    fn cell_run_meters_match_analytic_counts() {
        let dims = MatMulDims::new(32, 32, 32);
        let run = alg1_cell_run(dims, [2, 1, 1], Kernel::Naive, 1);
        // Grid [2,1,1]: only B is all-gathered — each of the 2 ranks
        // sends its half of B once. Flops: n1·n2·n3 madds total.
        assert_eq!(run.words, 32.0 * 32.0);
        assert_eq!(run.flops, 32.0 * 32.0 * 32.0);
        assert!(run.wall_secs > 0.0 && run.wall_secs.is_finite());
    }

    #[test]
    fn word_secs_fit_is_clamped_below_by_beta() {
        let cal = MachineCalibration::new(0.0, 1e-9, 1e-10);
        // A probe fully explained by γ alone → residual ~0 → clamp to β.
        let warm = CellRun { wall_secs: 1e-4, msgs: 2.0, words: 1e3, flops: 1e6 };
        assert_eq!(fit_word_secs(&cal, &warm), cal.beta);
        // A probe with unexplained time → δ above the floor.
        let cold = CellRun { wall_secs: 1e-2, msgs: 2.0, words: 1e5, flops: 1e6 };
        assert!(fit_word_secs(&cal, &cold) > cal.beta);
        // No words sent (p = 1): nothing to fit, fall back to β.
        let serial = CellRun { wall_secs: 1e-3, msgs: 0.0, words: 0.0, flops: 1e6 };
        assert_eq!(fit_word_secs(&cal, &serial), cal.beta);
    }

    #[test]
    fn stream_probe_reports_plausible_bandwidth() {
        let gbps = stream_probe(1 << 16, 4);
        assert!(gbps > 0.1, "implausibly slow memcpy: {gbps} GB/s");
    }
}
