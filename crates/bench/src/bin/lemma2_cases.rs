//! **E2 — Lemma 2's case diagram**: sweep `P` across both thresholds for
//! the paper's instance and report the optimal `(x1*, x2*, x3*)`, which
//! constraints are active, the KKT certificate residuals, and the
//! agreement of the independent numeric solver.
//!
//! Regenerates the content of the Lemma 2 visualization (the three
//! regimes separated at `P = m/n` and `P = mn/k²`).
//!
//! ```sh
//! cargo run --release -p pmm-bench --bin lemma2_cases
//! ```

use pmm_bench::{fnum, print_table, Checks};
use pmm_core::kkt::{certificate_for, verify_kkt};
use pmm_core::numeric::solve_numeric;
use pmm_core::optproblem::OptProblem;

fn main() {
    let (m, n, k) = (9600.0, 2400.0, 600.0);
    println!("Lemma 2 optimization problem, (m, n, k) = ({m}, {n}, {k})");
    println!("thresholds: P = m/n = {}, P = mn/k² = {}\n", m / n, m * n / (k * k));

    let mut checks = Checks::new();
    let mut rows = Vec::new();
    for p in [1.0, 2.0, 4.0, 8.0, 16.0, 36.0, 64.0, 128.0, 512.0, 4096.0, 65536.0] {
        let prob = OptProblem::new(m, n, k, p);
        let sol = prob.solve();
        let g = prob.constraints(sol.x);
        let b = prob.lower_bounds();
        // Which individual lower bounds are active (tight within 1e-9)?
        let active: String = (0..3)
            .map(|i| if g[i + 1].abs() <= 1e-9 * b[i].max(1.0) { 'x' } else { '.' })
            .collect();
        let mu = certificate_for(&prob);
        let kkt = verify_kkt(&prob, sol.x, mu, 1e-9);
        let (_, numeric_obj) = solve_numeric(&prob, 8);
        let d = sol.objective();

        checks.check(format!("P={p}: KKT certificate verifies"), kkt.holds(1e-8));
        checks.check(
            format!("P={p}: numeric solver within 1e-4"),
            (numeric_obj - d).abs() <= 1e-4 * d,
        );
        checks
            .check(format!("P={p}: numeric never beats analytic"), numeric_obj >= d * (1.0 - 1e-9));

        rows.push(vec![
            fnum(p),
            sol.case.to_string(),
            fnum(sol.x[0]),
            fnum(sol.x[1]),
            fnum(sol.x[2]),
            active,
            fnum(d),
            format!("{:+.1e}", (numeric_obj - d) / d),
            format!("{:.1e}", kkt.stationarity_residual),
        ]);
    }

    print_table(
        &["P", "case", "x1*", "x2*", "x3*", "active(b1b2b3)", "D = Σx*", "numeric Δ", "KKT resid"],
        &rows,
    );

    println!("\nreading the table (matches the Lemma 2 diagram):");
    println!(" * P ≤ 4 (case 1, '.xx'): b2 and b3 are active — x2 = mk/P and");
    println!("   x3 = mn/P sit on their floors while x1 = nk is set by the");
    println!("   product constraint (at P = 1 all three floors coincide: 'xxx');");
    println!(" * 4 ≤ P ≤ 64 (case 2, '..x'): only b3 active — x1 = x2 =");
    println!("   (mnk²/P)^1/2, x3 = mn/P;");
    println!(" * P ≥ 64 (case 3, '...'): none active — x1 = x2 = x3 = (mnk/P)^2/3.");

    // Continuity at the boundaries.
    for pb in [m / n, m * n / (k * k)] {
        let lo = OptProblem::new(m, n, k, pb * (1.0 - 1e-12)).solve();
        let hi = OptProblem::new(m, n, k, pb * (1.0 + 1e-12)).solve();
        let jump = (0..3).map(|i| ((lo.x[i] - hi.x[i]) / lo.x[i]).abs()).fold(0.0f64, f64::max);
        println!("continuity at P = {pb}: max relative jump {jump:.2e}");
        checks.check(format!("continuous at P={pb}"), jump < 1e-9);
    }

    checks.finish();
}
