//! **E1 — Table 1**: explicit constants of the leading term of parallel
//! memory-independent matmul communication lower bounds, prior work vs.
//! Theorem 3.
//!
//! The constants are *extracted numerically*: for each result and each
//! case we evaluate the bound on a sweep of instances inside the case and
//! divide by the case's leading term; the harness checks the extracted
//! ratio is constant across the sweep and equals the closed form.
//!
//! ```sh
//! cargo run --release -p pmm-bench --bin table1
//! ```

use pmm_bench::{print_table, Checks};
use pmm_core::prior::PriorBound;
use pmm_core::theorem3::lower_bound;
use pmm_model::{Case, MatMulDims};

fn main() {
    println!("Table 1: constants of the leading term, by case");
    println!("(leading terms: 1D = nk, 2D = (mnk²/P)^1/2, 3D = (mnk/P)^2/3)\n");

    // A sweep of (dims, P) instances per case — different shapes, same case.
    let sweeps: [(Case, Vec<(MatMulDims, f64)>); 3] = [
        (
            Case::OneD,
            vec![
                (MatMulDims::new(9600, 2400, 600), 2.0),
                (MatMulDims::new(9600, 2400, 600), 4.0),
                (MatMulDims::new(100_000, 500, 500), 50.0),
                (MatMulDims::new(4096, 32, 16), 100.0),
            ],
        ),
        (
            Case::TwoD,
            vec![
                (MatMulDims::new(9600, 2400, 600), 16.0),
                (MatMulDims::new(9600, 2400, 600), 36.0),
                (MatMulDims::new(10_000, 10_000, 100), 64.0),
                (MatMulDims::new(50_000, 1000, 100), 1000.0),
            ],
        ),
        (
            Case::ThreeD,
            vec![
                (MatMulDims::new(9600, 2400, 600), 512.0),
                (MatMulDims::new(9600, 2400, 600), 4096.0),
                (MatMulDims::square(10_000), 64.0),
                (MatMulDims::new(2000, 1000, 500), 1_000_000.0),
            ],
        ),
    ];

    let mut checks = Checks::new();
    let mut rows: Vec<Vec<String>> = Vec::new();
    for prior in PriorBound::ALL {
        let mut row = vec![prior.label().to_string()];
        for (case, instances) in &sweeps {
            match prior.leading_constant(*case) {
                None => row.push("-".into()),
                Some(closed_form) => {
                    // Extract the constant numerically on each instance.
                    let mut extracted = Vec::new();
                    for &(dims, p) in instances {
                        let r = lower_bound(dims, p);
                        assert_eq!(r.case, *case, "sweep instance fell out of its case");
                        let value =
                            prior.evaluate_leading(dims, p).expect("constant exists for this case");
                        extracted.push(value / r.leading_term);
                    }
                    let first = extracted[0];
                    let consistent = extracted.iter().all(|&e| (e - first).abs() < 1e-9 * first);
                    checks.check(
                        format!("{} {case}: constant is shape-independent", prior.label()),
                        consistent,
                    );
                    checks.check(
                        format!("{} {case}: matches closed form", prior.label()),
                        (first - closed_form).abs() < 1e-9 * closed_form,
                    );
                    row.push(format!("{first:.4}"));
                }
            }
        }
        rows.push(row);
    }

    print_table(&["result", "1D: 1<=P<=m/n", "2D: m/n<=P<=mn/k^2", "3D: mn/k^2<=P"], &rows);

    println!("\npaper's Table 1 for comparison:");
    println!("  Aggarwal et al. (1990)  -      -      (1/2)^(2/3) = 0.6300");
    println!("  Irony et al. (2004)     -      -      1/2         = 0.5000");
    println!("  Demmel et al. (2013)    16/25  √(2/3) 1           = 0.6400 / 0.8165 / 1.0000");
    println!("  Theorem 3               1      2      3");

    // §2.1 companion table: the memory-dependent constant's evolution
    // (c · mnk/(P√M)), which Theorem 3 complements rather than replaces.
    println!("\nmemory-dependent bound constants over time (§2.1):");
    let rows: Vec<Vec<String>> = pmm_core::prior::MemDependentBound::ALL
        .iter()
        .map(|b| vec![b.label().to_string(), format!("{:.4}", b.constant())])
        .collect();
    print_table(&["result", "constant on mnk/(P·sqrt(M))"], &rows);
    {
        let cs: Vec<f64> =
            pmm_core::prior::MemDependentBound::ALL.iter().map(|b| b.constant()).collect();
        checks.check(
            "memory-dependent constants improve monotonically",
            cs[0] < cs[1] && cs[1] < cs[2],
        );
        checks.check("tight memory-dependent constant is 2", cs[2] == 2.0);
    }
    println!();

    // Improvement factors (the paper's contribution in one line).
    let dims = MatMulDims::new(9600, 2400, 600);
    for (p, case) in [(2.0, "1D"), (36.0, "2D"), (512.0, "3D")] {
        let ours = PriorBound::ThisPaper
            .evaluate_leading(dims, p)
            .expect("this paper's bound is defined for every aspect ratio and p");
        let best_prior = PriorBound::ALL[..3]
            .iter()
            .filter_map(|b| b.evaluate_leading(dims, p))
            .fold(0.0f64, f64::max);
        println!("improvement over best prior constant, {case} case: {:.3}x", ours / best_prior);
        checks.check(format!("{case}: Theorem 3 strictly improves"), ours > best_prior);
    }

    checks.finish();
}
