//! **E14 — per-phase cost attribution from the structured trace**: run
//! Algorithm 1 with tracing enabled on the §5.3 instance (scaled 12.5×
//! down: 768×192 · 192×48) at one `P` per Theorem 3 regime, and show
//! where the words go.
//!
//! For each regime the harness prints the per-phase breakdown extracted
//! from the event trace — measured words vs the eq. (3) prediction vs
//! that phase's share of the critical path — and checks that:
//!
//! * every phase's measured words equal its eq. (3) term exactly (the
//!   §5.2 optimal grids of this instance divide the dimensions at all
//!   three `P`, so the attribution has no slack);
//! * the phases that eq. (3) says are free really move zero words (the
//!   1D grid touches only `B`; the 2D grid also leaves `A` resident);
//! * the critical path recovered from the trace equals the simulator's
//!   clock, and its total equals the Theorem 3 lower bound.
//!
//! ```sh
//! cargo run --release -p pmm-bench --bin phase_attribution
//! ```

use pmm_algs::{alg1, Alg1Config};
use pmm_bench::{fnum, print_table, Checks};
use pmm_core::gridopt::best_grid;
use pmm_core::theorem3::lower_bound;
use pmm_dense::random_int_matrix;
use pmm_model::{alg1_prediction, Grid3, MatMulDims};
use pmm_simnet::{MachineParams, World};

fn main() {
    let dims = MatMulDims::new(768, 192, 48);
    println!("per-phase attribution: {dims}, one P per Theorem 3 regime\n");

    let mut checks = Checks::new();
    for p in [3usize, 36, 512] {
        let choice = best_grid(dims, p);
        let grid = choice.grid;
        let g = Grid3::from_dims(grid);
        let case = dims.sorted().classify(p as f64);
        checks.check(format!("P={p}: optimal grid {grid:?} divides"), dims.divisible_by(grid));

        let cfg = Alg1Config::new(dims, g);
        let (n1, n2, n3) = (dims.n1 as usize, dims.n2 as usize, dims.n3 as usize);
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).with_trace(true).run(move |rank| {
            let a = random_int_matrix(n1, n2, -2..3, 7);
            let b = random_int_matrix(n2, n3, -2..3, 8);
            alg1(rank, &cfg, &a, &b)
        });
        let tracer = out.tracer().expect("tracing was on");
        let pred = alg1_prediction(dims, grid);
        let expected = [
            ("all-gather A", pred.allgather_a),
            ("all-gather B", pred.allgather_b),
            ("reduce-scatter C", pred.reduce_c),
        ];
        let cp = tracer.critical_path();
        let totals = tracer.phase_totals();

        println!("— case {case}: P = {p}, grid {g} —");
        let rows: Vec<Vec<String>> = expected
            .iter()
            .map(|&(label, want)| {
                let t = totals.iter().find(|t| t.label == label);
                let measured = t.map_or(0, |t| t.max_duplex());
                vec![
                    label.to_string(),
                    fnum(want),
                    measured.to_string(),
                    fnum(cp.phase_cost(label)),
                ]
            })
            .collect();
        print_table(&["phase", "eq.(3)", "measured w/rank", "critical-path share"], &rows);

        let attribution = tracer.attribution(&expected);
        checks.check(format!("P={p}: every phase matches eq. (3) exactly"), attribution.matches());
        for (label, want) in expected {
            if want == 0.0 {
                let moved = totals.iter().find(|t| t.label == label).map_or(0, |t| t.max_duplex());
                checks.check(format!("P={p}: free phase '{label}' moves zero words"), moved == 0);
            }
        }
        let clock = out.critical_path_time();
        checks.check(
            format!("P={p}: trace critical path equals the clock"),
            (cp.total - clock).abs() <= 1e-9 * clock.max(1.0),
        );
        let bound = lower_bound(dims, p as f64).bound;
        checks.check(
            format!("P={p}: critical path attains the Theorem 3 bound"),
            (cp.total - bound).abs() <= 1e-9 * bound.max(1.0),
        );
        println!(
            "critical path {} = bound {} ({} cross-rank hop(s), ends at rank {})\n",
            fnum(cp.total),
            fnum(bound),
            cp.hops,
            cp.end_rank
        );
    }

    checks.finish();
}
