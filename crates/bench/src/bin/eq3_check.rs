//! **E6 — eq. (3)**: the §5.1 cost analysis of Algorithm 1 holds on *any*
//! grid, not just the optimal one: for every factorization of several `P`
//! on a divisible instance, the measured per-processor critical-path
//! words equal
//!
//! ```text
//! (1 − 1/p3)·n1n2/(p1p2) + (1 − 1/p1)·n2n3/(p2p3) + (1 − 1/p2)·n1n3/(p1p3)
//! ```
//!
//! exactly. This cross-validates the executed simulator against the
//! closed-form cost engine used by the larger sweeps.
//!
//! ```sh
//! cargo run --release -p pmm-bench --bin eq3_check
//! ```

use pmm_algs::{alg1, Alg1Config};
use pmm_bench::{fnum, print_table, Checks};
use pmm_core::gridopt::alg1_cost_words;
use pmm_dense::random_int_matrix;
use pmm_model::{Grid3, MatMulDims};
use pmm_simnet::{MachineParams, World};

fn main() {
    // 96 = 2^5·3, 48, 24: every factorization of the P values below gives
    // divisible blocks and fiber chunks.
    let dims = MatMulDims::new(96, 48, 24);
    println!("eq. (3) vs execution: {dims}, every factorization of P ∈ {{4, 8, 12, 24}}\n");

    let mut checks = Checks::new();
    let mut rows = Vec::new();
    let mut n_grids = 0;
    for p in [4usize, 8, 12, 24] {
        for grid in Grid3::factorizations(p) {
            if !dims.divisible_by(grid) {
                continue;
            }
            n_grids += 1;
            let predicted = alg1_cost_words(dims, grid);
            let g = Grid3::from_dims(grid);
            let cfg = Alg1Config::new(dims, g);
            let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
                let a = random_int_matrix(96, 48, -2..3, 3);
                let b = random_int_matrix(48, 24, -2..3, 4);
                alg1(rank, &cfg, &a, &b)
            });
            let measured = out.critical_path_time();
            let exact = (measured - predicted).abs() < 1e-9;
            checks.check(format!("P={p} grid {grid:?}: measured == eq3"), exact);
            // Show a representative subset to keep the table readable.
            if grid[0] >= grid[1] && grid[1] >= grid[2] {
                rows.push(vec![
                    p.to_string(),
                    g.to_string(),
                    fnum(predicted),
                    fnum(measured),
                    if exact { "exact".into() } else { "MISMATCH".into() },
                ]);
            }
        }
    }
    print_table(&["P", "grid (sorted reps)", "eq.(3)", "measured", "verdict"], &rows);
    println!(
        "\nchecked all {n_grids} divisible factorizations (table shows sorted representatives)"
    );

    checks.finish();
}
