//! **E14 — local kernels + calibration**: measure every local GEMM tier,
//! fit the machine calibration, and validate that the calibrated α-β-γ
//! model predicts simulated Algorithm 1 wall-clock within tolerance.
//!
//! Three sections, each emitted as `KERNELS:` marker lines that
//! `cargo xtask kernel-bench` parses into `BENCH_kernels.json`:
//!
//! 1. **kernel table** — GFLOP/s per kernel tier × size (standard
//!    `2mnk` flop convention), plus the bitwise cross-tier identity
//!    check at each size;
//! 2. **calibration** — the fitted α, β, γ, `rank_secs` and the stream
//!    bandwidth diagnostic (see `pmm_bench::calibrate`);
//! 3. **validation cells** — one per Theorem 3 regime: fit the
//!    shape's effective per-word cost δ from a *half-scale probe run*
//!    (`fit_word_secs`), then run Algorithm 1 at full scale, predict its
//!    wall time as `α·Σmsgs + δ·Σwords + γ·Σflops + rank_secs` from the
//!    run's own meters, and compare against the measured wall time. The
//!    probe and validation runs share a grid shape but differ ~1.5-2x in
//!    problem size, so the check exercises extrapolation, not self-fit.
//!
//! Checks: the best kernel is ≥ 5× Naive at n = 1024, all tiers produce
//! bitwise-identical products, and every validation cell's prediction
//! lands within 25% of the measured wall-clock.
//!
//! ```sh
//! cargo run --release -p pmm-bench --bin kernel_bench [budget-secs]
//! ```

use std::time::Instant;

use pmm_bench::calibrate::{alg1_cell_run, calibrate, fit_word_secs, gemm_probe};
use pmm_bench::{print_table, Checks};
use pmm_dense::{gemm, random_matrix, Kernel};
use pmm_model::{MachineCalibration, MatMulDims};

/// Sizes for the per-kernel GFLOP/s table. The largest is the
/// acceptance size (5× criterion).
const SIZES: [usize; 3] = [256, 512, 1024];

/// One Theorem 3 regime cell: a half-scale probe problem that fits the
/// shape's per-word cost δ, and the full-scale problem the calibrated
/// prediction is validated against.
struct Cell {
    name: &'static str,
    probe_dims: MatMulDims,
    dims: MatMulDims,
    grid: [usize; 3],
}

/// The three regimes of the paper's case analysis: near-cubic (all three
/// matrices comparable), one dominant dimension (1D grid, only B moves),
/// and two large dimensions (2D grid). Local blocks stay ≥ the γ-probe
/// sizes so the fitted seconds-per-madd transfers, and probe problems
/// already exceed cache (per-word costs cliff when buffers first spill,
/// so a cache-resident probe would not extrapolate). The one-large cell
/// scales only the dominant dimension, which is exactly the regime's
/// point: the words moved (only B) stay fixed while compute grows.
fn cells() -> [Cell; 3] {
    [
        Cell {
            name: "cubic",
            probe_dims: MatMulDims::new(768, 768, 768),
            dims: MatMulDims::new(1152, 1152, 1152),
            grid: [2, 2, 2],
        },
        Cell {
            name: "one-large",
            probe_dims: MatMulDims::new(2048, 576, 576),
            dims: MatMulDims::new(4096, 576, 576),
            grid: [8, 1, 1],
        },
        Cell {
            name: "two-large",
            probe_dims: MatMulDims::new(1536, 1536, 192),
            dims: MatMulDims::new(2304, 2304, 288),
            grid: [4, 2, 1],
        },
    ]
}

/// The benchable tiers (Auto excluded — it resolves to one of these).
fn tiers() -> Vec<Kernel> {
    Kernel::ALL.into_iter().filter(|&k| k != Kernel::Auto).collect()
}

fn main() {
    let budget: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("budget must be a number of seconds"))
        .unwrap_or(20.0);
    let mut checks = Checks::new();
    let mut markers: Vec<String> = Vec::new();

    // Warm-up: ~1s of sustained vector work before any timing, so every
    // probe and cell runs in the same CPU frequency state (cold starts
    // measure the governor, not the kernel).
    {
        let a = random_matrix(512, 512, 7);
        let b = random_matrix(512, 512, 8);
        let t0 = Instant::now();
        while t0.elapsed().as_secs_f64() < 1.0 {
            std::hint::black_box(gemm(&a, &b, Kernel::Blocked));
        }
    }

    // ---- 1. kernel table ------------------------------------------------
    println!("local GEMM kernels (GFLOP/s, 2·n³ flops):\n");
    let mut rows = Vec::new();
    let mut best_at_1024 = (Kernel::Naive, 0.0f64);
    let mut naive_at_1024 = 0.0f64;
    for &n in &SIZES {
        let a = random_matrix(n, n, 1);
        let b = random_matrix(n, n, 2);
        let oracle = gemm(&a, &b, Kernel::Naive);
        let mut identical = true;
        let mut row = vec![n.to_string()];
        for k in tiers() {
            identical &= gemm(&a, &b, k) == oracle;
            let (madds, secs) = gemm_probe(n, k);
            let gflops = 2.0 * madds / secs / 1e9;
            row.push(format!("{gflops:.2}"));
            markers.push(format!("KERNELS: kernel name={k} n={n} gflops={gflops:.3}"));
            if n == 1024 {
                if k == Kernel::Naive {
                    naive_at_1024 = gflops;
                }
                if gflops > best_at_1024.1 {
                    best_at_1024 = (k, gflops);
                }
            }
        }
        rows.push(row);
        checks.check(format!("n={n}: all tiers bitwise-identical"), identical);
    }
    let headers: Vec<String> =
        std::iter::once("n".to_string()).chain(tiers().iter().map(|k| k.to_string())).collect();
    print_table(&headers, &rows);
    let (best_kernel, best_gflops) = best_at_1024;
    let speedup = best_gflops / naive_at_1024;
    println!("\nbest at n=1024: {best_kernel} at {best_gflops:.2} GFLOP/s = {speedup:.1}x naive");
    checks.check(format!("best tier {speedup:.1}x >= 5x naive at n=1024"), speedup >= 5.0);

    // ---- 2. calibration -------------------------------------------------
    // γ is fitted for the best tier — the one the validation cells run.
    let report = calibrate(budget * 0.5, best_kernel);
    let cal = report.cal;
    println!(
        "\ncalibration (kernel={best_kernel}): alpha={:.3e}s beta={:.3e}s/word \
         gamma={:.3e}s/madd rank_secs={:.3e}s stream={:.1}GB/s pingpong_fit_err={:.1}%",
        cal.alpha,
        cal.beta,
        cal.gamma,
        cal.rank_secs,
        report.stream_gbps,
        100.0 * report.pingpong_fit_error()
    );
    markers.push(format!(
        "KERNELS: calibration kernel={best_kernel} alpha={:.6e} beta={:.6e} gamma={:.6e} \
         rank_secs={:.6e} stream_gbps={:.3}",
        cal.alpha, cal.beta, cal.gamma, cal.rank_secs, report.stream_gbps
    ));
    checks.check("calibration: beta > 0", cal.beta > 0.0);
    checks.check("calibration: gamma > 0", cal.gamma > 0.0);

    // ---- 3. validation cells --------------------------------------------
    println!("\ncalibrated prediction vs measured wall-clock (Algorithm 1):\n");
    let mut cell_rows = Vec::new();
    let mut max_err_pct = 0.0f64;
    for cell in &cells() {
        let (delta, predicted, measured) = run_cell(cell, cal, best_kernel);
        let err_pct = 100.0 * (predicted - measured).abs() / measured;
        max_err_pct = max_err_pct.max(err_pct);
        let [p1, p2, p3] = cell.grid;
        cell_rows.push(vec![
            cell.name.to_string(),
            cell.dims.to_string(),
            format!("{p1}x{p2}x{p3}"),
            format!("{:.2}", delta * 1e9),
            format!("{predicted:.4}"),
            format!("{measured:.4}"),
            format!("{err_pct:.1}%"),
        ]);
        markers.push(format!(
            "KERNELS: cell name={} dims={} grid={p1}x{p2}x{p3} delta={delta:.6e} \
             predicted={predicted:.6} measured={measured:.6} err_pct={err_pct:.2}",
            cell.name, cell.dims
        ));
        checks.check(
            format!("cell {}: prediction within 25% ({err_pct:.1}%)", cell.name),
            err_pct <= 25.0,
        );
    }
    print_table(
        &["cell", "dims", "grid", "delta ns/w", "predicted s", "measured s", "err"],
        &cell_rows,
    );

    markers.push(format!(
        "KERNELS: summary best_kernel={best_kernel} best_gflops={best_gflops:.3} \
         naive_gflops={naive_at_1024:.3} speedup={speedup:.3} max_err_pct={max_err_pct:.2}"
    ));

    println!();
    for m in &markers {
        println!("{m}");
    }

    checks.finish();
}

/// Run one cell: fit δ from the half-scale probe, then predict and
/// measure the full-scale run. Returns `(delta, predicted, measured)`.
/// The prediction prices the run's own meter totals — not the analytic
/// eq. (3) — so the check isolates the *calibration*; the analytic word
/// counts are validated separately by `eq3_check`.
fn run_cell(cell: &Cell, cal: MachineCalibration, kernel: Kernel) -> (f64, f64, f64) {
    let probe = alg1_cell_run(cell.probe_dims, cell.grid, kernel, 2);
    let delta = fit_word_secs(&cal, &probe);
    let run = alg1_cell_run(cell.dims, cell.grid, kernel, 3);
    let predicted =
        cal.alpha * run.msgs + delta * run.words + cal.gamma * run.flops + cal.rank_secs;
    (delta, predicted, run.wall_secs)
}
