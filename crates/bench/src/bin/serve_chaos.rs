//! **Chaos load harness for `pmm serve`** — the robustness soak behind
//! `cargo xtask serve-soak`.
//!
//! Drives a live [`TcpService`] with mixed traffic for a wall-clock
//! budget (`PMM_SERVE_SOAK_SECS`, default 5):
//!
//! * **valid advisor queries** (4 connections, rotating through a small
//!   query pool so the memo cache sees repeats),
//! * **pipelined bursts** (8 simultaneous connections) that overflow the
//!   deliberately tiny queue and must be `SHED`, not buffered,
//! * **sleepers** (`__SLEEP` past the deadline) that pin workers and
//!   force `TIMEOUT`s,
//! * **panickers** (`__PANIC`) that the isolation boundary must absorb,
//! * **malformed bytes** (invalid UTF-8, NUL, truncated requests),
//! * **oversized lines** (~1 MiB against a 1 KiB cap), and
//! * **slowloris clients** that stall mid-line and must be disconnected.
//!
//! Invariants checked (exit nonzero on violation): the service answers
//! every request on every surviving connection (zero lost requests), the
//! process survives every panic and is still serving at the end, sheds /
//! timeouts / caught panics / disconnects all actually happened, the
//! cache got hits, and resident memory growth stays bounded.
//!
//! Emits machine-readable `SERVE: key=value ...` lines that
//! `cargo xtask serve-soak` turns into `BENCH_serve.json`.
//!
//! ```sh
//! cargo run --release -p pmm-bench --bin serve_chaos
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use pmm_bench::Checks;
use pmm_serve::{ServeConfig, TcpService};

/// Per-thread tally of requests sent and responses seen, merged into one
/// total at join time.
#[derive(Debug, Default, Clone)]
struct Tally {
    sent: u64,
    answered: u64,
    ok: u64,
    err: u64,
    shed: u64,
    timeout: u64,
    /// Connections the server closed on us (slowloris only, expected).
    disconnects: u64,
    /// Round-trip latencies of *valid* queries, microseconds.
    latencies_us: Vec<u64>,
}

impl Tally {
    fn absorb(&mut self, other: Tally) {
        self.sent += other.sent;
        self.answered += other.answered;
        self.ok += other.ok;
        self.err += other.err;
        self.shed += other.shed;
        self.timeout += other.timeout;
        self.disconnects += other.disconnects;
        self.latencies_us.extend(other.latencies_us);
    }

    fn classify(&mut self, line: &str) {
        self.answered += 1;
        if line.starts_with("OK") {
            self.ok += 1;
        } else if line.starts_with("ERR") {
            self.err += 1;
        } else if line.starts_with("SHED") {
            self.shed += 1;
        } else if line.starts_with("TIMEOUT") {
            self.timeout += 1;
        } else {
            panic!("unclassifiable response line: {line:?}");
        }
    }
}

fn connect(addr: std::net::SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).expect("connect to the soak service");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("set client read timeout");
    let reader = BufReader::new(stream.try_clone().expect("clone client stream"));
    (reader, stream)
}

/// One synchronous round trip; `None` if the server closed the
/// connection instead of answering.
fn round_trip(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    line: &[u8],
) -> Option<String> {
    writer.write_all(line).ok()?;
    let mut response = String::new();
    match reader.read_line(&mut response) {
        Ok(0) | Err(_) => None,
        Ok(_) => Some(response),
    }
}

/// Resident-set size in bytes from `/proc/self/statm`, if available.
fn rss_bytes() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(pages * 4096)
}

/// The rotating pool of valid queries: repeats guarantee cache hits, and
/// the pool spans all three Theorem 3 regimes.
const QUERY_POOL: [&[u8]; 6] = [
    b"ADVISE 96 24 6 2 inf\n",
    b"ADVISE 96 24 6 36 inf\n",
    b"ADVISE 96 24 6 512 inf\n",
    b"ADVISE 512 512 512 64 inf\n",
    b"ADVISE 9600 2400 600 512 inf\n",
    b"ADVISE 128 128 128 8 20000\n",
];

fn valid_worker(addr: std::net::SocketAddr, stop: Arc<AtomicBool>, lane: usize) -> Tally {
    let mut t = Tally::default();
    'outer: while !stop.load(Ordering::Relaxed) {
        let (mut reader, mut writer) = connect(addr);
        for i in 0..64 {
            if stop.load(Ordering::Relaxed) {
                break 'outer;
            }
            let query = QUERY_POOL[(lane + i) % QUERY_POOL.len()];
            let start = Instant::now();
            t.sent += 1;
            match round_trip(&mut reader, &mut writer, query) {
                Some(line) => {
                    t.classify(&line);
                    if line.starts_with("OK") {
                        t.latencies_us.push(start.elapsed().as_micros() as u64);
                    }
                }
                None => panic!("server dropped a well-behaved connection"),
            }
            // A paced client, not a spin loop: keeps the valid share of
            // the mix meaningful instead of drowning in instant sheds.
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    t
}

fn burst_worker(addr: std::net::SocketAddr, stop: Arc<AtomicBool>) -> Tally {
    const CONNS: usize = 8;
    const PER_CONN: usize = 24;
    let mut t = Tally::default();
    while !stop.load(Ordering::Relaxed) {
        // Pipeline a full burst on every connection first, then collect:
        // while the sleepers pin the workers this overflows the queue,
        // and every single line must still be answered (SHED counts).
        let mut conns: Vec<_> = (0..CONNS).map(|_| connect(addr)).collect();
        for (i, (_, writer)) in conns.iter_mut().enumerate() {
            let mut payload = Vec::new();
            for j in 0..PER_CONN {
                payload.extend_from_slice(QUERY_POOL[(i + j) % QUERY_POOL.len()]);
            }
            writer.write_all(&payload).expect("write burst");
            t.sent += PER_CONN as u64;
        }
        for (reader, _) in &mut conns {
            for _ in 0..PER_CONN {
                let mut line = String::new();
                match reader.read_line(&mut line) {
                    Ok(0) | Err(_) => panic!("burst connection lost a response"),
                    Ok(_) => t.classify(&line),
                }
            }
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    t
}

fn sleeper_worker(addr: std::net::SocketAddr, stop: Arc<AtomicBool>) -> Tally {
    let mut t = Tally::default();
    while !stop.load(Ordering::Relaxed) {
        let (mut reader, mut writer) = connect(addr);
        for _ in 0..32 {
            if stop.load(Ordering::Relaxed) {
                break;
            }
            t.sent += 1;
            // Three deadlines long: pins a worker and forces TIMEOUT.
            match round_trip(&mut reader, &mut writer, b"__SLEEP 150\n") {
                Some(line) => {
                    // When the queue is full the sleep is shed instantly;
                    // back off instead of spinning on instant SHEDs.
                    if line.starts_with("SHED") {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    t.classify(&line);
                }
                None => panic!("server dropped the sleeper connection"),
            }
        }
    }
    t
}

fn panic_worker(addr: std::net::SocketAddr, stop: Arc<AtomicBool>) -> Tally {
    let mut t = Tally::default();
    let mut n = 0u64;
    while !stop.load(Ordering::Relaxed) {
        let (mut reader, mut writer) = connect(addr);
        for _ in 0..16 {
            if stop.load(Ordering::Relaxed) {
                break;
            }
            n += 1;
            t.sent += 1;
            let req = format!("__PANIC chaos-{n}\n");
            match round_trip(&mut reader, &mut writer, req.as_bytes()) {
                Some(line) => {
                    assert!(
                        line.starts_with("ERR")
                            || line.starts_with("SHED")
                            || line.starts_with("TIMEOUT"),
                        "a panic must surface as a typed non-OK response, got {line:?}"
                    );
                    t.classify(&line);
                }
                None => panic!("server died on an injected panic"),
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    t
}

fn malformed_worker(addr: std::net::SocketAddr, stop: Arc<AtomicBool>) -> Tally {
    let garbage: [&[u8]; 5] = [
        b"\xFF\xFE\xFD utter nonsense\n",
        b"ADVISE 96 24\n",
        b"ADVISE x y z p m\n",
        b"FROBNICATE 1 2 3\n",
        b"ADVISE 1 2 3 4\x00inf\n",
    ];
    let mut t = Tally::default();
    while !stop.load(Ordering::Relaxed) {
        let (mut reader, mut writer) = connect(addr);
        for chunk in &garbage {
            t.sent += 1;
            match round_trip(&mut reader, &mut writer, chunk) {
                Some(line) => {
                    t.classify(&line);
                    assert!(!line.starts_with("OK"), "malformed input must never be OK: {line:?}");
                }
                None => panic!("server dropped the malformed-traffic connection"),
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    t
}

fn oversized_worker(addr: std::net::SocketAddr, stop: Arc<AtomicBool>) -> Tally {
    let mut big = vec![b'Z'; 1 << 20]; // ~1 MiB against a 1 KiB cap
    big.push(b'\n');
    let mut t = Tally::default();
    while !stop.load(Ordering::Relaxed) {
        let (mut reader, mut writer) = connect(addr);
        for _ in 0..4 {
            if stop.load(Ordering::Relaxed) {
                break;
            }
            t.sent += 1;
            match round_trip(&mut reader, &mut writer, &big) {
                Some(line) => {
                    assert!(line.starts_with("ERR line-too-long"), "oversized line: {line:?}");
                    t.classify(&line);
                }
                None => panic!("server dropped the oversized-line connection"),
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    t
}

fn slowloris_worker(addr: std::net::SocketAddr, stop: Arc<AtomicBool>) -> Tally {
    let mut t = Tally::default();
    while !stop.load(Ordering::Relaxed) {
        let (mut reader, mut writer) = connect(addr);
        // Dribble a partial request, then stall: the server must cut us
        // off around its read timeout rather than hold the thread.
        let _ = writer.write_all(b"ADVISE 96 24 ");
        let mut sink = String::new();
        loop {
            sink.clear();
            match reader.read_line(&mut sink) {
                Ok(0) | Err(_) => break, // disconnected, as required
                Ok(_) => {}              // the ERR read-timeout farewell line
            }
        }
        t.disconnects += 1;
    }
    t
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let budget_secs: u64 = std::env::var("PMM_SERVE_SOAK_SECS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(5)
        .max(1);

    // Deliberately tight knobs: 2 workers and a depth-4 queue against
    // ~15 concurrent in-flight requests is the ISSUE's "2× overload"
    // regime with room to spare; 50 ms deadlines and 250 ms read
    // timeouts keep every failure path hot.
    let config = ServeConfig {
        workers: 2,
        queue_depth: 4,
        deadline: Duration::from_millis(50),
        read_timeout: Duration::from_millis(250),
        max_line_bytes: 1024,
        cache_capacity: 256,
        chaos_verbs: true,
    };
    let service = TcpService::bind(config, "127.0.0.1:0").expect("bind the soak service");
    let addr = service.addr();
    println!("serve_chaos: soaking {addr} for {budget_secs}s");

    // Injected `__PANIC`s are the point of the soak; silence their
    // backtraces (the isolation boundary counts them) while keeping the
    // default report for any *unexpected* panic in a harness thread.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let worker =
            std::thread::current().name().is_some_and(|n| n.starts_with("pmm-serve-worker"));
        if !worker {
            default_hook(info);
        }
    }));

    let rss_before = rss_bytes();
    let stop = Arc::new(AtomicBool::new(false));
    let total = Arc::new(Mutex::new(Tally::default()));
    let started = Instant::now();

    let mut threads = Vec::new();
    type Worker = fn(std::net::SocketAddr, Arc<AtomicBool>) -> Tally;
    let spawn = |worker: Worker, name: &str, threads: &mut Vec<std::thread::JoinHandle<()>>| {
        let stop = Arc::clone(&stop);
        let total = Arc::clone(&total);
        let handle = std::thread::Builder::new()
            .name(format!("chaos-{name}"))
            .spawn(move || {
                let tally = worker(addr, stop);
                total.lock().expect("tally lock").absorb(tally);
            })
            .expect("spawn chaos thread");
        threads.push(handle);
    };
    for lane in 0..4 {
        let stop_c = Arc::clone(&stop);
        let total_c = Arc::clone(&total);
        let handle = std::thread::Builder::new()
            .name(format!("chaos-valid-{lane}"))
            .spawn(move || {
                let tally = valid_worker(addr, stop_c, lane);
                total_c.lock().expect("tally lock").absorb(tally);
            })
            .expect("spawn valid-traffic thread");
        threads.push(handle);
    }
    spawn(burst_worker, "burst", &mut threads);
    spawn(sleeper_worker, "sleep-a", &mut threads);
    spawn(sleeper_worker, "sleep-b", &mut threads);
    spawn(panic_worker, "panic", &mut threads);
    spawn(malformed_worker, "malformed", &mut threads);
    spawn(oversized_worker, "oversized", &mut threads);
    spawn(slowloris_worker, "loris-a", &mut threads);
    spawn(slowloris_worker, "loris-b", &mut threads);

    std::thread::sleep(Duration::from_secs(budget_secs));
    stop.store(true, Ordering::Relaxed);
    for handle in threads {
        if handle.join().is_err() {
            // A chaos thread's own assertion fired; the tally it held is
            // gone but the violation must fail the soak loudly.
            println!("SERVE: verdict=fail reason=client-invariant-violated");
            std::process::exit(1);
        }
    }
    let elapsed = started.elapsed().as_secs_f64();

    // The service must still be fully alive after the storm. Workers may
    // be pinned for one last chaos sleep, so give the PING a few tries.
    let mut alive = false;
    for _ in 0..20 {
        let (mut reader, mut writer) = connect(addr);
        if round_trip(&mut reader, &mut writer, b"PING\n").as_deref() == Some("OK pong\n") {
            alive = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    let rss_after = rss_bytes();
    let snapshot = service.shutdown();
    let tally = total.lock().expect("tally lock").clone();

    let mut lat: Vec<u64> = tally.latencies_us.clone();
    lat.sort_unstable();
    let p50 = percentile(&lat, 0.50);
    let p99 = percentile(&lat, 0.99);
    let throughput = snapshot.received as f64 / elapsed;
    let shed_rate = snapshot.shed as f64 / snapshot.received.max(1) as f64;
    let timeout_rate = snapshot.timeouts as f64 / snapshot.received.max(1) as f64;
    let cache_lookups = snapshot.cache_hits + snapshot.cache_misses;
    let cache_hit_rate = snapshot.cache_hits as f64 / cache_lookups.max(1) as f64;
    let rss_growth = match (rss_before, rss_after) {
        (Some(b), Some(a)) => Some(a.saturating_sub(b)),
        _ => None,
    };

    println!(
        "SERVE: budget_secs={budget_secs} elapsed_secs={elapsed:.2} requests={} answered={} \
         ok={} err={} shed={} timeout={} client_disconnects={}",
        tally.sent,
        tally.answered,
        tally.ok,
        tally.err,
        tally.shed,
        tally.timeout,
        tally.disconnects,
    );
    println!("SERVE: {}", snapshot.render().trim_start_matches("stats "));
    println!(
        "SERVE: throughput_rps={throughput:.1} p50_us={p50} p99_us={p99} \
         shed_rate={shed_rate:.4} timeout_rate={timeout_rate:.4} \
         cache_hit_rate={cache_hit_rate:.4} rss_growth_bytes={}",
        rss_growth.map_or_else(|| "unavailable".to_string(), |b| b.to_string()),
    );

    let mut checks = Checks::new();
    checks.check("service still answers PING after the storm", alive);
    checks.check(
        "every request on a surviving connection was answered",
        tally.answered == tally.sent,
    );
    checks.check("overload actually shed (backpressure exercised)", snapshot.shed > 0);
    checks.check("deadlines actually fired (timeout path exercised)", snapshot.timeouts > 0);
    checks.check("worker panics were caught, workers survived", snapshot.panics > 0);
    checks.check("slowloris clients were disconnected", snapshot.read_timeouts > 0);
    checks.check("slowloris clients observed their disconnects", tally.disconnects > 0);
    checks.check("oversized lines were rejected unbuffered", snapshot.oversized_lines > 0);
    checks.check("malformed traffic produced typed errors", snapshot.errors > 0);
    checks.check("the memo cache got hits", snapshot.cache_hits > 0);
    checks.check("valid traffic got OK responses", tally.ok > 0 && !lat.is_empty());
    checks.check(
        "post-drain totals reconcile (no lost responses server-side)",
        snapshot.received == snapshot.ok + snapshot.errors + snapshot.shed + snapshot.timeouts,
    );
    if let Some(growth) = rss_growth {
        checks.check("resident memory growth bounded (< 64 MiB)", growth < 64 * 1024 * 1024);
    }
    println!(
        "SERVE: verdict={}",
        if tally.answered == tally.sent && alive { "pass" } else { "fail" }
    );
    checks.finish();
}
