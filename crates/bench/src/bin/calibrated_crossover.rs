//! **E15 — §6.2 crossover with calibrated parameters**: re-express the
//! limited-memory bound comparison in *seconds* on the measured host.
//!
//! The §6.2 analysis (E7, `limited_memory`) compares the
//! memory-independent Theorem 3 bound against the memory-dependent
//! `2mnk/(P√M)` in words. This harness fits this host's calibration
//! (`pmm_bench::calibrate`) and reruns the comparison in predicted
//! wall-clock:
//!
//! 1. **invariance** — both bounds scale by the same β, so the
//!    dominance crossover `P` is exactly where the word comparison (and
//!    the closed-form §6.2 interval) puts it: calibration changes the
//!    units, never the winner;
//! 2. **compute-communication crossover** — a genuinely calibrated
//!    quantity: the `P` beyond which the *lower bound* on communication
//!    time (β × Theorem 3 words) exceeds the perfectly parallelized
//!    compute time (γ × mnk/P). Past that point the machine is
//!    communication-bound no matter the algorithm; the harness checks
//!    the sweep agrees with a closed-form bisection.
//!
//! ```sh
//! cargo run --release -p pmm-bench --bin calibrated_crossover [budget-secs]
//! ```

use pmm_bench::calibrate::calibrate;
use pmm_bench::{fnum, print_table, Checks};
use pmm_core::memlimit::{limited_memory_report, memory_dependent_dominance_range, Dominant};
use pmm_core::theorem3::lower_bound;
use pmm_dense::{kernel_from_env, Kernel};
use pmm_model::MatMulDims;

fn main() {
    let budget: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("budget must be a number of seconds"))
        .unwrap_or(5.0);
    let mut checks = Checks::new();

    // The paper's §5.3/§6.2 instance and memory budget.
    let dims = MatMulDims::new(9600, 2400, 600);
    let m_words = 9_000.0;
    let mnk = (dims.n1 * dims.n2 * dims.n3) as f64;

    let report = calibrate(budget, kernel_from_env(Kernel::default()));
    let cal = report.cal;
    println!(
        "§6.2 crossover in calibrated seconds: {dims}, M = {m_words} words/processor\n\
         calibration: alpha={:.3e}s beta={:.3e}s/word gamma={:.3e}s/madd\n",
        cal.alpha, cal.beta, cal.gamma
    );

    let range = memory_dependent_dominance_range(dims, m_words);
    let (lo, hi) = range.expect("the paper instance has a non-empty dominance interval");

    let mut rows = Vec::new();
    let mut words_winner_flips = Vec::new();
    let mut secs_winner_flips = Vec::new();
    let mut prev: Option<(bool, bool)> = None;
    let sweep: Vec<f64> = (6..=16).map(|e| (1u64 << e) as f64).collect();
    for &p in &sweep {
        let rep = limited_memory_report(dims, p, m_words);
        let indep_secs = cal.beta * rep.independent.d;
        let dep_secs = cal.beta * rep.dependent;
        let compute_secs = cal.gamma * mnk / p;
        let dep_wins_words = rep.dominant == Dominant::MemoryDependent;
        let dep_wins_secs = dep_secs > indep_secs;
        let comm_bound = indep_secs.max(dep_secs) > compute_secs;
        if let Some((w, s)) = prev {
            if w != dep_wins_words {
                words_winner_flips.push(p);
            }
            if s != dep_wins_secs {
                secs_winner_flips.push(p);
            }
        }
        prev = Some((dep_wins_words, dep_wins_secs));
        checks.check(
            format!("P={p}: seconds comparison agrees with the word comparison"),
            dep_wins_words == dep_wins_secs,
        );
        rows.push(vec![
            fnum(p),
            format!("{:.3e}", indep_secs),
            format!("{:.3e}", dep_secs),
            format!("{:.3e}", compute_secs),
            if dep_wins_secs { "2mnk/(P√M)".into() } else { "Theorem 3".into() },
            if comm_bound { "comm".into() } else { "compute".into() },
        ]);
    }
    print_table(
        &["P", "Thm 3 (s)", "mem-dep (s)", "compute (s)", "binding bound", "regime"],
        &rows,
    );

    // 1. Invariance: every winner flip in the seconds sweep must sit at a
    // boundary of the closed-form word interval (lo, hi].
    println!("\nclosed-form dominance interval: {lo:.0} < P <= {hi:.0}");
    checks.check("seconds sweep flips exactly where the words sweep flips", {
        words_winner_flips == secs_winner_flips
    });
    for p in &secs_winner_flips {
        let brackets_a_boundary = (p / 2.0 <= lo && lo < *p) || (p / 2.0 <= hi && hi < *p);
        checks.check(
            format!("flip at P={p} brackets a closed-form interval boundary"),
            brackets_a_boundary,
        );
    }

    // 2. The calibrated compute-communication crossover: bisect
    // β·bound(P) = γ·mnk/P over continuous P. The bound grows with P
    // while compute shrinks, so the crossing is unique.
    let comm_minus_compute = |p: f64| cal.beta * lower_bound(dims, p).bound - cal.gamma * mnk / p;
    let (mut a, mut b) = (1.0f64, 1e9f64);
    checks.check("comm < compute at P=1", comm_minus_compute(a) < 0.0);
    checks.check("comm > compute at P=1e9", comm_minus_compute(b) > 0.0);
    for _ in 0..200 {
        let mid = (a * b).sqrt();
        if comm_minus_compute(mid) < 0.0 {
            a = mid;
        } else {
            b = mid;
        }
    }
    let p_star = (a * b).sqrt();
    println!(
        "\ncalibrated compute-communication crossover: P* = {p_star:.0}\n\
         (beyond P*, even the Theorem 3 lower bound on communication time\n\
         exceeds gamma·mnk/P — this host is communication-bound there)"
    );
    let sweep_first_comm = sweep
        .iter()
        .copied()
        .find(|&p| cal.beta * lower_bound(dims, p).bound > cal.gamma * mnk / p);
    match sweep_first_comm {
        Some(p) => checks.check(
            format!("sweep's first comm-bound P={p} brackets P*={p_star:.0}"),
            p / 2.0 <= p_star && p_star <= p,
        ),
        None => checks.check(
            "no sweep point is comm-bound, so P* lies beyond the sweep",
            p_star > sweep[sweep.len() - 1],
        ),
    }

    checks.finish();
}
