//! **E3 — Theorem 3 / Corollary 4 tightness**: run Algorithm 1 with the
//! §5.2 optimal grid on the metered simulator and verify that the
//! measured per-processor critical-path communication **equals** the lower
//! bound, word for word, in all three cases.
//!
//! This is the executable version of the paper's headline claim: the
//! constants 1, 2, 3 are not just lower bounds — they are attained.
//!
//! ```sh
//! cargo run --release -p pmm-bench --bin tightness
//! ```

use pmm_algs::{alg1, assemble_c, Alg1Config};
use pmm_bench::{fnum, print_table, Checks};
use pmm_core::gridopt::best_grid;
use pmm_core::theorem3::{corollary4, lower_bound};
use pmm_dense::{gemm, random_int_matrix, Kernel};
use pmm_model::{Grid3, MatMulDims};
use pmm_simnet::{MachineParams, World};

fn measure(dims: MatMulDims, grid: [usize; 3], checks: &mut Checks) -> f64 {
    let g = Grid3::from_dims(grid);
    let cfg = Alg1Config::new(dims, g);
    let (n1, n2, n3) = (dims.n1 as usize, dims.n2 as usize, dims.n3 as usize);
    let out = World::new(g.size(), MachineParams::BANDWIDTH_ONLY).run(move |rank| {
        let a = random_int_matrix(n1, n2, -2..3, 7);
        let b = random_int_matrix(n2, n3, -2..3, 8);
        alg1(rank, &cfg, &a, &b)
    });
    // Verify numerical correctness too — tight *and* right.
    let a = random_int_matrix(n1, n2, -2..3, 7);
    let b = random_int_matrix(n2, n3, -2..3, 8);
    let want = gemm(&a, &b, Kernel::Tiled);
    let chunks: Vec<_> = out.values.iter().map(|v| v.c_chunk.clone()).collect();
    checks.check(
        format!("{dims} grid {grid:?}: product correct"),
        assemble_c(dims, g, &chunks) == want,
    );
    out.critical_path_time()
}

fn main() {
    println!("Tightness of Theorem 3: measured communication of Algorithm 1");
    println!("with the §5.2 grid vs. the lower bound (exact, divisible instances)\n");

    let mut checks = Checks::new();

    // Paper-shaped rectangular instance (m/n = 4, mn/k² = 64), all cases.
    // Exact attainment requires the continuous §5.2 grid to be integral
    // (the paper's analysis assumes integer grid dimensions dividing the
    // matrix dimensions); at other P we report the best integer grid's gap.
    let rect = MatMulDims::new(768, 192, 48);
    let mut rows = Vec::new();
    for p in [2usize, 3, 4, 8, 16, 36, 64, 128, 512] {
        let r = lower_bound(rect, p as f64);
        let choice = best_grid(rect, p);
        if !rect.divisible_by(choice.grid) {
            continue;
        }
        let cont = pmm_core::gridopt::continuous_grid(rect.sorted(), p as f64);
        let integral = cont.iter().all(|&x| (x - x.round()).abs() < 1e-9);
        let measured = measure(rect, choice.grid, &mut checks);
        let exact = (measured - r.bound).abs() <= 1e-9 * r.bound.max(1.0);
        if integral {
            checks.check(format!("{rect} P={p}: measured == bound"), exact);
        } else {
            checks.check(
                format!("{rect} P={p}: integer grid within 20% of bound"),
                measured <= 1.2 * r.bound && measured >= r.bound,
            );
        }
        rows.push(vec![
            p.to_string(),
            r.case.to_string(),
            choice.grid3().to_string(),
            fnum(r.bound),
            fnum(measured),
            if exact {
                "exact".into()
            } else {
                format!("+{:.1}% (non-integral optimal grid)", 100.0 * (measured / r.bound - 1.0))
            },
        ]);
    }
    println!("rectangular {rect}:");
    print_table(&["P", "case", "grid", "bound", "measured", "verdict"], &rows);

    // Square instances (Corollary 4) on cubic grids.
    println!("\nsquare instances (Corollary 4, 3n²/P^(2/3) − 3n²/P):");
    let mut rows = Vec::new();
    for (n, p) in [(64u64, 8usize), (144, 27), (64, 64), (160, 64), (144, 216)] {
        let dims = MatMulDims::square(n);
        let q = (p as f64).cbrt().round() as usize;
        let measured = measure(dims, [q, q, q], &mut checks);
        let bound = corollary4(n, p as f64);
        let exact = (measured - bound).abs() <= 1e-9 * bound.max(1.0);
        checks.check(format!("square n={n} P={p}: measured == corollary4"), exact);
        rows.push(vec![
            n.to_string(),
            p.to_string(),
            format!("{q}x{q}x{q}"),
            fnum(bound),
            fnum(measured),
            if exact { "exact".into() } else { format!("off by {:.2e}", measured - bound) },
        ]);
    }
    print_table(&["n", "P", "grid", "corollary4", "measured", "verdict"], &rows);

    checks.finish();
}
