//! **E11 — the memory/communication trade-off** (§6.2's closing remark:
//! "algorithms that smoothly trade off memory for communication savings
//! … are well studied"): execute the 2.5D algorithm across replication
//! factors `c` at fixed `P` and plot measured communication against
//! memory use, bracketed by the 2D regime at `c = 1` and the
//! memory-independent bound below.
//!
//! ```sh
//! cargo run --release -p pmm-bench --bin tradeoff_25d
//! ```

use pmm_algs::{twofived, TwoFiveDConfig};
use pmm_bench::{fnum, print_table, Checks};
use pmm_core::theorem3::lower_bound;
use pmm_dense::{random_int_matrix, Kernel};
use pmm_model::MatMulDims;
use pmm_simnet::{MachineParams, World};

fn main() {
    // P = 64: (q, c) ∈ {(8,1), (4,4)}; P = 256: {(16,1), (8,4)};
    // P = 1024: {(32,1), (16,4), (8,16)? 16∤8 → no} — c | q constrains the
    // ladder; we sweep what exists at each P.
    let dims = MatMulDims::new(64, 64, 64);
    println!("2.5D memory/communication trade-off, {dims}\n");

    let mut checks = Checks::new();
    let mut rows = Vec::new();
    let mut ratios = Vec::new(); // (P, words(c=4)/words(c=1))
    for (p, configs) in [
        (64usize, vec![(8usize, 1usize), (4, 4)]),
        (256, vec![(16, 1), (8, 4)]),
        (1024, vec![(32, 1), (16, 4)]),
    ] {
        let bound = lower_bound(dims, p as f64).bound;
        let mut flat_words = 0.0f64;
        let mut flat_mem = 0.0f64;
        for (q, c) in configs {
            assert_eq!(c * q * q, p);
            let cfg = TwoFiveDConfig { dims, q, c, kernel: Kernel::Naive };
            let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
                let a = random_int_matrix(64, 64, -2..3, 1);
                let b = random_int_matrix(64, 64, -2..3, 2);
                twofived(rank, &cfg, &a, &b)
            });
            let words = out.critical_path_time();
            let mem = out.max_peak_mem_words() as f64;
            checks.check(format!("P={p} q={q} c={c}: above the bound"), words >= bound - 1e-9);
            if c == 1 {
                flat_words = words;
                flat_mem = mem;
            } else {
                checks.check(format!("P={p} c={c}: more memory than c=1"), mem > flat_mem);
                ratios.push((p, words / flat_words));
            }
            rows.push(vec![
                p.to_string(),
                format!("{q}x{q}x{c}"),
                c.to_string(),
                fnum(words),
                fnum(mem),
                fnum(bound),
                format!("{:.2}x", words / bound.max(1.0)),
            ]);
        }
    }
    print_table(
        &["P", "layout", "c", "measured words", "peak mem/rank", "bound", "vs bound"],
        &rows,
    );

    // The crossover: replication overhead (broadcast + reduce of whole
    // blocks) amortizes only when each layer still does many shift steps,
    // i.e. at large P. The ratio c=4 / c=1 must fall monotonically with P
    // and drop below 1 by P = 1024.
    println!("\nwords(c=4) / words(c=1):");
    for (p, r) in &ratios {
        println!("  P = {p:>5}: {r:.3}");
    }
    for w in ratios.windows(2) {
        checks.check(format!("ratio falls from P={} to P={}", w[0].0, w[1].0), w[1].1 < w[0].1);
    }
    let last = ratios.last().expect("the P sweep is non-empty");
    checks.check("replication wins by P=1024", last.1 < 1.0);

    println!("\nreading the table: replication trades memory (~c× footprint) for");
    println!("communication, but only pays once the per-layer shift work dominates");
    println!("the broadcast/reduce overhead — the crossover sits between P = 256");
    println!("and P = 1024 here. The bound itself needs the full 3D grid (c = q)");
    println!("and the §6.2 memory headroom.");

    checks.finish();
}
