//! **E9 — algorithm comparison** (§2.4): who wins where? Measured
//! critical-path words of Algorithm 1 (optimal grid) vs Cannon, SUMMA,
//! 2.5D, and the CARMA recursive cost model, across aspect-ratio regimes.
//!
//! Expected shape: Algorithm 1 never loses; square-grid 2D algorithms are
//! competitive only for square-ish problems in the 2D regime; the 1D
//! regime punishes anything that communicates the big matrix; crossovers
//! track `P = m/n` and `P = mn/k²`.
//!
//! ```sh
//! cargo run --release -p pmm-bench --bin algo_compare
//! ```

use pmm_algs::{
    alg1, cannon, carma, carma_cost_words, carma_shares, summa, twofived, Alg1Config, CannonConfig,
    SummaConfig, TwoFiveDConfig,
};
use pmm_bench::{fnum, print_table, Checks};
use pmm_core::gridopt::best_grid;
use pmm_core::theorem3::lower_bound;
use pmm_dense::{random_int_matrix, Kernel, Matrix};
use pmm_model::MatMulDims;
use pmm_simnet::{MachineParams, World};

fn inputs(dims: MatMulDims, seed: u64) -> (Matrix, Matrix) {
    (
        random_int_matrix(dims.n1 as usize, dims.n2 as usize, -2..3, seed),
        random_int_matrix(dims.n2 as usize, dims.n3 as usize, -2..3, seed + 1),
    )
}

fn run_alg1(dims: MatMulDims, p: usize) -> f64 {
    let choice = best_grid(dims, p);
    let cfg = Alg1Config::new(dims, choice.grid3());
    World::new(p, MachineParams::BANDWIDTH_ONLY)
        .run(move |rank| {
            let (a, b) = inputs(dims, 50);
            alg1(rank, &cfg, &a, &b);
        })
        .critical_path_time()
}

fn run_cannon(dims: MatMulDims, q: usize) -> f64 {
    let cfg = CannonConfig { dims, q, kernel: Kernel::Naive };
    World::new(q * q, MachineParams::BANDWIDTH_ONLY)
        .run(move |rank| {
            let (a, b) = inputs(dims, 50);
            cannon(rank, &cfg, &a, &b);
        })
        .critical_path_time()
}

fn run_summa(dims: MatMulDims, pr: usize, pc: usize) -> f64 {
    let cfg = SummaConfig { dims, pr, pc, kernel: Kernel::Naive };
    World::new(pr * pc, MachineParams::BANDWIDTH_ONLY)
        .run(move |rank| {
            let (a, b) = inputs(dims, 50);
            summa(rank, &cfg, &a, &b);
        })
        .critical_path_time()
}

fn run_25d(dims: MatMulDims, q: usize, c: usize) -> f64 {
    let cfg = TwoFiveDConfig { dims, q, c, kernel: Kernel::Naive };
    World::new(c * q * q, MachineParams::BANDWIDTH_ONLY)
        .run(move |rank| {
            let (a, b) = inputs(dims, 50);
            twofived(rank, &cfg, &a, &b);
        })
        .critical_path_time()
}

fn run_carma_exec(dims: MatMulDims, p: usize) -> f64 {
    World::new(p, MachineParams::BANDWIDTH_ONLY)
        .run(move |rank| {
            let (a, b) = inputs(dims, 50);
            let (sa, sb) = carma_shares(p, rank.world_rank(), &a, &b);
            let comm = rank.world_comm();
            carma(rank, &comm, dims, Kernel::Naive, sa, sb);
        })
        .critical_path_time()
}

fn main() {
    let mut checks = Checks::new();

    // Three regimes, P = 64 everywhere (Cannon/SUMMA on 8×8, 2.5D at c=4).
    let p = 64usize;
    let regimes = [
        ("1D (m/n = 128)", MatMulDims::new(2048, 16, 16)),
        ("2D (m/n = 4, mn/k² = 1024)", MatMulDims::new(768, 192, 12)),
        ("3D (square)", MatMulDims::new(96, 96, 96)),
    ];

    println!("measured critical-path words per processor, P = {p}\n");
    let mut rows = Vec::new();
    for (label, dims) in regimes {
        let bound = lower_bound(dims, p as f64).bound;
        let a1 = run_alg1(dims, p);
        let ca = run_cannon(dims, 8);
        let su = run_summa(dims, 8, 8);
        let t25 = run_25d(dims, 4, 4);
        let carma_model = carma_cost_words(dims, p as u64);
        let carma_meas = run_carma_exec(dims, p);

        for (name, t) in [("cannon", ca), ("summa", su), ("2.5d", t25)] {
            checks.check(format!("{label}: alg1 <= {name}"), a1 <= t + 1e-9);
            checks.check(format!("{label}: {name} >= bound"), t >= bound - 1e-9);
        }
        checks.check(format!("{label}: alg1 within 1e-9 or above bound"), a1 >= bound - 1e-9);
        checks.check(format!("{label}: CARMA model >= bound"), carma_model >= bound * 0.999_999);
        checks.check(
            format!("{label}: executed CARMA == model"),
            (carma_meas - carma_model).abs() < 1e-9,
        );
        let carma = carma_meas;

        rows.push(vec![
            label.to_string(),
            fnum(bound),
            format!("{} ({:.2}x)", fnum(a1), a1 / bound.max(1.0)),
            format!("{} ({:.2}x)", fnum(ca), ca / bound.max(1.0)),
            format!("{} ({:.2}x)", fnum(su), su / bound.max(1.0)),
            format!("{} ({:.2}x)", fnum(t25), t25 / bound.max(1.0)),
            format!("{} ({:.2}x)", fnum(carma), carma / bound.max(1.0)),
        ]);
    }
    print_table(
        &[
            "regime",
            "bound",
            "Alg 1 (opt grid)",
            "Cannon 8x8",
            "SUMMA 8x8",
            "2.5D c=4",
            "CARMA (measured)",
        ],
        &rows,
    );

    // Crossover sweep: fix the paper-shaped instance, sweep P, and report
    // the Alg-1-vs-Cannon ratio — square-grid algorithms catch up as the
    // case moves toward 3D.
    println!("\ncrossover sweep on the paper-shaped instance (768x192x48):");
    let dims = MatMulDims::new(768, 192, 48);
    let mut rows = Vec::new();
    let mut prev_ratio = f64::INFINITY;
    for q in [2usize, 4, 8, 16] {
        let p = q * q;
        let a1 = run_alg1(dims, p);
        let ca = run_cannon(dims, q);
        let ratio = ca / a1.max(1.0);
        rows.push(vec![
            p.to_string(),
            lower_bound(dims, p as f64).case.to_string(),
            fnum(a1),
            fnum(ca),
            format!("{ratio:.2}x"),
        ]);
        checks.check(
            format!("P={p}: Cannon's disadvantage shrinks toward 3D"),
            ratio <= prev_ratio * 1.05,
        );
        prev_ratio = ratio;
    }
    print_table(&["P", "case", "Alg 1", "Cannon", "Cannon/Alg1"], &rows);

    println!("\nreading the tables:");
    println!(" * Algorithm 1 with the §5.2 grid sits on the bound (1.00x) whenever");
    println!("   the optimal grid is integral, and never loses;");
    println!(" * square-grid algorithms pay large factors in skewed regimes and");
    println!("   approach Alg 1 as P enters the 3D case;");
    println!(" * 2.5D interpolates: better than 2D at the same P, still above the");
    println!("   optimal 3D grid;");
    println!(
        " * the CARMA recursion (executed, and exactly matching its cost model)
   also sits on the bound here: on instances whose"
    );
    println!("   dimensions and P are power-of-two aligned, its halving schedule is");
    println!("   equivalent to an optimal grid. Demmel et al. proved only asymptotic");
    println!("   optimality; Theorem 3 supplies the constants that certify runs like");
    println!("   these as exactly optimal (and quantifies the loss when alignment");
    println!("   fails — see the non-integral rows of the tightness experiment).");

    checks.finish();
}
