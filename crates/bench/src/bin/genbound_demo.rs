//! **E12 — the §6.3 generalization in action**: the paper closes by
//! noting its optimization-problem technique "can be applied to many
//! other computations that have iteration spaces with uneven dimensions."
//! This harness exercises the generalized solver:
//!
//! 1. as a sanity anchor, the matmul instance reproduces Lemma 2 across a
//!    `P` sweep (identical case structure and values);
//! 2. the symmetric `d`-dimensional contraction family shows how the
//!    tight constant generalizes: in the unconstrained regime the bound
//!    is `d·(n^d/P)^{(d−1)/d}` — constant `d`, generalizing the paper's 3;
//! 3. an uneven 4-array example (an MTTKRP-shaped footprint problem)
//!    shows the case structure — which access bounds pin — shifting
//!    with `P`, exactly as Lemma 2's three cases do for matmul.
//!
//! ```sh
//! cargo run --release -p pmm-bench --bin genbound_demo
//! ```

use pmm_bench::{fnum, print_table, Checks};
use pmm_core::genbound::GenBoundProblem;
use pmm_core::optproblem::OptProblem;

fn main() {
    let mut checks = Checks::new();

    // ---- 1. anchor: matmul == Lemma 2 --------------------------------------
    println!("anchor: generalized solver vs Lemma 2 on (9600, 2400, 600):\n");
    let mut rows = Vec::new();
    for p in [1.0, 3.0, 36.0, 512.0, 65536.0] {
        let lemma2 = OptProblem::new(9600.0, 2400.0, 600.0, p).solve();
        let gen = GenBoundProblem::matmul(9600.0, 2400.0, 600.0, p).solve();
        let agree = (gen.total - lemma2.objective()).abs() < 1e-9 * lemma2.objective();
        checks.check(format!("P={p}: matches Lemma 2"), agree);
        rows.push(vec![
            fnum(p),
            lemma2.case.to_string(),
            fnum(lemma2.objective()),
            fnum(gen.total),
            format!("{:?}", gen.active),
        ]);
    }
    print_table(&["P", "Lemma 2 case", "Lemma 2 D", "general D", "pinned bounds"], &rows);

    // ---- 2. the d-dimensional family ----------------------------------------
    println!("\nsymmetric d-dimensional contraction (n = 256): the tight constant is d:\n");
    let mut rows = Vec::new();
    for d in [3usize, 4, 5, 6] {
        let n = 256.0f64;
        let p = 1e6;
        let sol = GenBoundProblem::symmetric_tensor(d, n, p).solve();
        let predicted = d as f64 * (n.powi(d as i32) / p).powf((d as f64 - 1.0) / d as f64);
        let unconstrained = sol.active.iter().all(|&a| !a);
        if unconstrained {
            checks.check(
                format!("d={d}: D = d·(n^d/P)^((d-1)/d)"),
                (sol.total - predicted).abs() < 1e-9 * predicted,
            );
        }
        rows.push(vec![
            d.to_string(),
            fnum(sol.total),
            fnum(predicted),
            if unconstrained {
                "3D-like (none pinned)".into()
            } else {
                format!("{:?}", sol.active)
            },
        ]);
    }
    print_table(&["d", "general D", "d·(n^d/P)^((d-1)/d)", "regime"], &rows);

    // ---- 3. an uneven 4-array instance --------------------------------------
    // MTTKRP-shaped: order-3 tensor (I×J×K) with factor matrices (I×R),
    // (J×R), (K×R); footprint exponents chosen so the product inequality
    // covers the I×J×K×R iteration space (tensor gets weight 1 on its
    // 3 indices, each factor 1/3-ish on the shared R): illustrative of how
    // the pinning pattern migrates as P grows.
    println!("\nuneven 4-array instance (tensor 512x256x64, rank R = 32):\n");
    let (i, j, k, r) = (512.0f64, 256.0, 64.0, 32.0);
    let work_total = i * j * k * r;
    let mut rows = Vec::new();
    let mut prev_pinned = usize::MAX;
    for p in [1.0, 8.0, 64.0, 512.0, 4096.0, 65536.0] {
        let prob = GenBoundProblem::new(
            // s chosen to satisfy a HBL-type covering of (i,j,k,r):
            // tensor (i,j,k) exponent 2/3 over its three indices plus each
            // factor matrix at 1/3 of (index, r) jointly covers every
            // coordinate with total weight ≥ 1.
            vec![2.0 / 3.0, 2.0 / 3.0, 2.0 / 3.0, 2.0 / 3.0],
            work_total / p,
            vec![i * j * k / p, i * r / p, j * r / p, k * r / p],
        );
        let sol = prob.solve();
        let pinned = sol.active.iter().filter(|&&a| a).count();
        checks.check(format!("P={p}: solution feasible"), prob.feasible(&sol.x, 1e-9));
        checks.check(format!("P={p}: pinned set shrinks with P"), pinned <= prev_pinned);
        prev_pinned = pinned;
        rows.push(vec![fnum(p), fnum(sol.total), format!("{:?}", sol.active), pinned.to_string()]);
    }
    print_table(&["P", "access bound D", "pinned (tensor, A, B, C)", "#pinned"], &rows);
    println!("\nreading: at small P the large-array access floors bind (the 1D/2D");
    println!("analogues); as P grows they release one by one until the pure");
    println!("product regime (the 3D analogue) — the same mechanism as Lemma 2,");
    println!("now with four arrays. This is the §6.3 program made executable.");

    checks.finish();
}
