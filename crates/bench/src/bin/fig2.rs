//! **E4 — Figure 2**: optimal parallelizations of the iteration space for
//! the paper's instance — multiplying a 9600×2400 matrix `A` by a
//! 2400×600 matrix `B` with `P ∈ {3, 36, 512}`.
//!
//! Reproduces the figure's content: the chosen grid (1D / 2D / 3D), the
//! per-axis tile shape, and which matrices are communicated. The
//! communication pattern is then *executed and measured* on a 12.5×-scaled
//! instance with identical aspect ratios (768×192×48 — same thresholds,
//! same grids), confirming the per-matrix traffic the figure describes.
//!
//! ```sh
//! cargo run --release -p pmm-bench --bin fig2
//! ```

use pmm_algs::{alg1, Alg1Config};
use pmm_bench::{fnum, print_table, Checks};
use pmm_core::gridopt::best_grid;
use pmm_core::theorem3::lower_bound;
use pmm_dense::random_int_matrix;
use pmm_model::MatMulDims;
use pmm_simnet::{MachineParams, World};

/// Per-matrix eq. 3 communication terms for a grid, in words/processor:
/// `[A, B, C]`.
fn per_matrix_words(dims: MatMulDims, grid: [usize; 3]) -> [f64; 3] {
    let [p1, p2, p3] = grid.map(|x| x as f64);
    let (n1, n2, n3) = (dims.n1 as f64, dims.n2 as f64, dims.n3 as f64);
    [
        (1.0 - 1.0 / p3) * n1 * n2 / (p1 * p2),
        (1.0 - 1.0 / p1) * n2 * n3 / (p2 * p3),
        (1.0 - 1.0 / p2) * n1 * n3 / (p1 * p3),
    ]
}

fn main() {
    let dims = MatMulDims::new(9600, 2400, 600);
    println!("Figure 2: parallelizations of the {dims} iteration space\n");

    let mut checks = Checks::new();
    let mut rows = Vec::new();
    for p in [3usize, 36, 512] {
        let choice = best_grid(dims, p);
        let [p1, p2, p3] = choice.grid;
        let tile = [9600 / p1 as u64, 2400 / p2 as u64, 600 / p3 as u64];
        let w = per_matrix_words(dims, choice.grid);
        let r = lower_bound(dims, p as f64);
        let dim_label = format!("{}D", choice.grid3().effective_dimensionality().max(1));
        rows.push(vec![
            p.to_string(),
            dim_label,
            choice.grid3().to_string(),
            format!("{}x{}x{}", tile[0], tile[1], tile[2]),
            fnum(w[0]),
            fnum(w[1]),
            fnum(w[2]),
            fnum(choice.cost_words),
            fnum(r.bound),
        ]);
        checks.check(
            format!("P={p}: grid cost equals bound"),
            (choice.cost_words - r.bound).abs() < 1e-6 * r.bound,
        );
    }
    print_table(
        &["P", "dim", "grid", "tile m×n×k", "A words", "B words", "C words", "total", "bound"],
        &rows,
    );

    // Paper's narrative checks (§5.3):
    let g3 = best_grid(dims, 3);
    checks.check("P=3 grid is 3x1x1", g3.grid == [3, 1, 1]);
    let w = per_matrix_words(dims, g3.grid);
    checks.check("P=3: only B communicated", w[0] == 0.0 && w[1] > 0.0 && w[2] == 0.0);
    let (tile_m, tile_n) = (9600 / g3.grid[0] as u64, 2400 / g3.grid[1] as u64);
    checks.check("P=3: tile is not a cube (m/p ≠ n/q)", tile_m != tile_n);

    let g36 = best_grid(dims, 36);
    checks.check("P=36 grid is 12x3x1", g36.grid == [12, 3, 1]);
    let w = per_matrix_words(dims, g36.grid);
    checks.check("P=36: B and C communicated, A not", w[0] == 0.0 && w[1] > 0.0 && w[2] > 0.0);
    let (tile_m, tile_n, tile_k) =
        (9600 / g36.grid[0] as u64, 2400 / g36.grid[1] as u64, 600 / g36.grid[2] as u64);
    checks.check("P=36: tile square in m,n (800=800), not k", tile_m == tile_n && tile_n != tile_k);

    let g512 = best_grid(dims, 512);
    checks.check("P=512 grid is 32x8x2", g512.grid == [32, 8, 2]);
    let w = per_matrix_words(dims, g512.grid);
    checks.check("P=512: all three matrices communicated", w.iter().all(|&x| x > 0.0));
    let (tile_m, tile_n, tile_k) =
        (9600 / g512.grid[0] as u64, 2400 / g512.grid[1] as u64, 600 / g512.grid[2] as u64);
    checks.check("P=512: tile is a cube (300³)", tile_m == tile_n && tile_n == tile_k);

    // ---- executed confirmation on the scaled instance ----------------------
    println!("\nmeasured per-phase traffic on the 12.5x-scaled instance (768x192x48):");
    let small = MatMulDims::new(768, 192, 48);
    let mut rows = Vec::new();
    for p in [3usize, 36, 512] {
        let choice = best_grid(small, p);
        let cfg = Alg1Config::new(small, choice.grid3());
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let a = random_int_matrix(768, 192, -2..3, 1);
            let b = random_int_matrix(192, 48, -2..3, 2);
            alg1(rank, &cfg, &a, &b)
        });
        // Traffic attributed per phase, max over ranks (balanced anyway).
        let mut per_phase = [0u64; 3];
        for v in &out.values {
            for (i, ph) in v.phases.iter().enumerate() {
                per_phase[i] = per_phase[i].max(ph.meter.duplex_words());
            }
        }
        let model = per_matrix_words(small, choice.grid);
        for i in 0..3 {
            checks.check(
                format!("scaled P={p}: measured phase {i} == eq3 term"),
                (per_phase[i] as f64 - model[i]).abs() < 1e-9,
            );
        }
        rows.push(vec![
            p.to_string(),
            choice.grid3().to_string(),
            per_phase[0].to_string(),
            per_phase[1].to_string(),
            per_phase[2].to_string(),
        ]);
    }
    print_table(&["P", "grid", "A moved (meas.)", "B moved (meas.)", "C moved (meas.)"], &rows);

    println!("\nreading the tables (matches Fig. 2a–c):");
    println!(" (a) P=3, 1D 3x1x1: only B moves — every processor needs all of B;");
    println!(" (b) P=36, 2D 12x3x1: B and C move, each A entry used by one processor;");
    println!(" (c) P=512, 3D 32x8x2: all three matrices move, local tile is a cube.");

    checks.finish();
}
