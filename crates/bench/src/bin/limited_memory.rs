//! **E7 — §6.2 limited-memory scenarios**: where the memory-dependent
//! bound `2mnk/(P√M)` overtakes Theorem 3, and what that means for
//! Algorithm 1's applicability.
//!
//! Reproduces the section's three quantitative claims:
//!  1. the dependent bound dominates exactly for
//!     `mn/k² < P ≤ (8/27)·mnk/M^{3/2}`;
//!  2. dominance implies `M < (4/9)(mnk/P)^{2/3}` — below Algorithm 1's
//!     3D-grid footprint, so the algorithm cannot run there;
//!  3. in the 1D/2D cases the memory-independent bound always dominates
//!     (given the problem fits at all), so Theorem 3 is unconditionally
//!     tight there.
//!
//! ```sh
//! cargo run --release -p pmm-bench --bin limited_memory
//! ```

use pmm_bench::{fnum, print_table, Checks};
use pmm_core::gridopt::best_grid;
use pmm_core::memlimit::{
    alg1_memory_words, limited_memory_report, memory_dependent_dominance_range, min_memory_words,
    three_d_memory_threshold, Dominant,
};
use pmm_model::MatMulDims;

fn main() {
    let dims = MatMulDims::new(9600, 2400, 600);
    let m_words = 9_000.0;
    let mut checks = Checks::new();

    println!("§6.2 limited-memory analysis: {dims}, M = {m_words} words/processor\n");

    let range = memory_dependent_dominance_range(dims, m_words);
    match range {
        Some((lo, hi)) => {
            println!("claim 1: memory-dependent bound dominates for {lo:.0} < P ≤ {hi:.0}");
            checks.check("dominance interval starts at mn/k²", (lo - 64.0).abs() < 1e-9);
        }
        None => println!("claim 1: interval empty at this M"),
    }

    println!();
    let mut rows = Vec::new();
    for p in [64.0, 512.0, 4096.0, 4600.0, 5000.0, 16384.0, 65536.0] {
        let feasible = min_memory_words(dims, p) <= m_words;
        if !feasible {
            rows.push(vec![
                fnum(p),
                "-".into(),
                "-".into(),
                "-".into(),
                "infeasible (M < data/P)".into(),
            ]);
            continue;
        }
        let rep = limited_memory_report(dims, p, m_words);
        let in_range = range.map(|(lo, hi)| p > lo && p <= hi).unwrap_or(false);
        let agrees = in_range == (rep.dominant == Dominant::MemoryDependent);
        checks.check(format!("P={p}: dominance matches the closed-form interval"), agrees);
        rows.push(vec![
            fnum(p),
            rep.independent.case.to_string(),
            fnum(rep.independent.d),
            fnum(rep.dependent),
            match rep.dominant {
                Dominant::MemoryIndependent => "Theorem 3".into(),
                Dominant::MemoryDependent => "2mnk/(P√M)".into(),
            },
        ]);
    }
    print_table(&["P", "case", "Theorem 3 D", "2mnk/(P√M)", "binding"], &rows);

    // Claim 2: inside the interval, M is below Algorithm 1's footprint.
    println!("\nclaim 2: inside the interval Algorithm 1 cannot run:");
    if let Some((lo, hi)) = range {
        let p = 4096.0;
        assert!(p > lo && p < hi);
        let thresh = three_d_memory_threshold(dims, p);
        let grid = best_grid(dims, p as usize);
        let footprint = alg1_memory_words(dims, grid.grid);
        println!(
            "  P = {p}: M = {m_words} < (4/9)(mnk/P)^(2/3) = {thresh:.0} \
             ≤ Alg 1 footprint {footprint:.0}"
        );
        checks.check("dominance ⇒ M below the 4/9 threshold", m_words < thresh);
        checks.check("4/9 threshold ≤ Alg 1 3D footprint", thresh <= footprint * 1.000001);
    }

    // Claim 3: cases 1 & 2 are never dominated when the problem fits.
    println!("\nclaim 3: 1D/2D cases are unconditionally tight:");
    let mut rows = Vec::new();
    for p in [2.0, 4.0, 16.0, 36.0, 64.0] {
        // Smallest feasible memory: one copy of the data spread over P.
        for mult in [1.0, 2.0, 8.0] {
            let m = min_memory_words(dims, p) * mult;
            let rep = limited_memory_report(dims, p, m);
            checks.check(
                format!("P={p} M={m:.0}: memory-independent dominates"),
                rep.dominant == Dominant::MemoryIndependent,
            );
            if mult == 1.0 {
                rows.push(vec![
                    fnum(p),
                    rep.independent.case.to_string(),
                    fnum(m),
                    fnum(rep.independent.d),
                    fnum(rep.dependent),
                ]);
            }
        }
    }
    print_table(&["P", "case", "M (min feasible)", "Theorem 3 D", "2mnk/(P√M)"], &rows);

    checks.finish();
}
