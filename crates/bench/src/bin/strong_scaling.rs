//! **E8 — strong scaling** (the Ballard et al. 2012b context of §2.3):
//! fix the problem, grow `P`, and watch how the per-processor and total
//! communication scale, both measured (Algorithm 1 on the simulator, up
//! to P = 512) and from the closed-form cost engine (beyond).
//!
//! Headline shape: total communication `P · W(P)` *grows* like `P^{1/3}`
//! in the 3D regime — perfect strong scaling of communication is
//! impossible once the memory-independent bound binds.
//!
//! ```sh
//! cargo run --release -p pmm-bench --bin strong_scaling
//! ```

use pmm_algs::{alg1, Alg1Config};
use pmm_bench::{fnum, print_table, Checks};
use pmm_core::gridopt::{alg1_cost_words, best_divisible_grid};
use pmm_core::theorem3::lower_bound;
use pmm_dense::random_int_matrix;
use pmm_model::MatMulDims;
use pmm_simnet::{MachineParams, World};

fn main() {
    let n = 512u64;
    let dims = MatMulDims::square(n);
    println!("strong scaling of square matmul, n = {n}\n");

    let mut checks = Checks::new();
    let mut rows = Vec::new();
    let mut prev_total = 0.0f64;
    for p in [1usize, 8, 64, 512, 4096, 32768, 262144] {
        let choice = best_divisible_grid(dims, p).expect("divisible grid");
        let predicted = alg1_cost_words(dims, choice.grid);
        let bound = lower_bound(dims, p as f64).bound;

        // Execute up to 512 simulated ranks; the closed form (validated by
        // eq3_check and by the executed rows here) extends the sweep.
        let measured: Option<f64> = if p <= 512 {
            let cfg = Alg1Config::new(dims, choice.grid3());
            let nn = n as usize;
            let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
                let a = random_int_matrix(nn, nn, -2..3, 7);
                let b = random_int_matrix(nn, nn, -2..3, 8);
                alg1(rank, &cfg, &a, &b)
            });
            Some(out.critical_path_time())
        } else {
            None
        };
        if let Some(m) = measured {
            checks.check(format!("P={p}: measured == closed form"), (m - predicted).abs() < 1e-9);
        }
        let total = predicted * p as f64;
        if p > 1 {
            checks.check(format!("P={p}: total communication grows"), total > prev_total);
        }
        prev_total = total;
        rows.push(vec![
            p.to_string(),
            choice.grid3().to_string(),
            measured.map(fnum).unwrap_or_else(|| "-".into()),
            fnum(predicted),
            fnum(bound),
            fnum(total),
            fnum(total / (n as f64 * n as f64)),
        ]);
    }
    print_table(
        &["P", "grid", "measured W", "closed-form W", "bound", "P·W total", "total/n²"],
        &rows,
    );

    // The P^{1/3} law: between cubic P values, total/n² should scale by
    // (P2/P1)^{1/3} up to the lower-order offset.
    let t1 = alg1_cost_words(dims, [8, 8, 8]) * 512.0;
    let t2 = alg1_cost_words(dims, [16, 16, 16]) * 4096.0;
    let growth = t2 / t1;
    println!("\ntotal-communication growth 512 → 4096 (8× more processors): {growth:.3}x");
    println!("P^(1/3) law predicts ≈ 2x (plus lower-order effects)");
    checks.check("growth within 15% of 2x", (growth - 2.0).abs() < 0.3);

    println!("\ninterpretation: in the 3D regime communication per processor falls");
    println!("only as P^(-2/3), so the aggregate volume — and with it the");
    println!("communication *time* at fixed per-link bandwidth — rises as P^(1/3).");
    println!("This is the memory-independent limit on strong scaling (§2.3).");

    checks.finish();
}
