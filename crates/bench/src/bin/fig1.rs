//! **E5 — Figure 1**: Algorithm 1 on a 3×3×3 grid, from the point of view
//! of one processor — the paper highlights processor `(1,3,1)` (0-based:
//! `(0,2,0)`).
//!
//! Reproduces the figure's content quantitatively: the input data the
//! processor owns initially, the output data it owns finally, the data it
//! gathers from others (the light shading), and the three fibers along
//! which its collectives run (the arrows). All quantities are *measured*
//! from a traced simulator run.
//!
//! ```sh
//! cargo run --release -p pmm-bench --bin fig1
//! ```

use std::collections::BTreeSet;

use pmm_algs::{alg1, Alg1Config};
use pmm_bench::{print_table, Checks};
use pmm_dense::random_int_matrix;
use pmm_model::{Grid3, MatMulDims};
use pmm_simnet::{MachineParams, TraceOp, World};

fn main() {
    // n1 = n2 = n3 as in the figure; 18 keeps every block and chunk even.
    let n = 18u64;
    let dims = MatMulDims::square(n);
    let grid = Grid3::new(3, 3, 3);
    let hero = grid.rank_of([0, 2, 0]); // the paper's processor (1,3,1)

    println!("Figure 1: Algorithm 1 on a 3x3x3 grid, n1 = n2 = n3 = {n}");
    println!("hero processor: (1,3,1) in the paper's 1-based coords = rank {hero}\n");

    let cfg = Alg1Config::new(dims, grid);
    let nn = n as usize;
    let out = World::new(27, MachineParams::BANDWIDTH_ONLY).with_trace(true).run(move |rank| {
        let a = random_int_matrix(nn, nn, -2..3, 31);
        let b = random_int_matrix(nn, nn, -2..3, 32);
        alg1(rank, &cfg, &a, &b)
    });

    let mut checks = Checks::new();

    // ---- owned vs gathered data sizes (dark vs light shading) -------------
    let block = n / 3 * n / 3; // 6x6 = 36 words per face block
    let chunk = block / 3; // spread over the 3-processor fiber
    let hero_out = &out.values[hero];
    let phases = &hero_out.phases;
    let mut rows = Vec::new();
    for (matrix, ph, comm_words) in [
        ("A (block A_13)", &phases[0], phases[0].meter.words_recv),
        ("B (block B_31)", &phases[1], phases[1].meter.words_recv),
        ("C (block C_11)", &phases[2], phases[2].meter.words_recv),
    ] {
        let _ = ph;
        rows.push(vec![
            matrix.to_string(),
            block.to_string(),
            chunk.to_string(),
            comm_words.to_string(),
        ]);
    }
    print_table(
        &["matrix", "block words (light+dark)", "owned words (dark)", "received (light)"],
        &rows,
    );

    // The processor receives exactly block − chunk words of A and B, and
    // (for C) the partial sums for its chunk from the two fiber peers ⇒
    // 2·chunk words received in the reduce-scatter.
    checks.check("A received == block − owned", phases[0].meter.words_recv == block - chunk);
    checks.check("B received == block − owned", phases[1].meter.words_recv == block - chunk);
    checks.check("C received == (1 − 1/p2)·block", phases[2].meter.words_recv == block - chunk);

    // ---- the three fibers (the arrows of the figure) -----------------------
    println!("\ncollective fibers through (1,3,1):");
    let coord = grid.coord_of(hero);
    let mut rows = Vec::new();
    for (axis, label) in [
        (2usize, "All-Gather A over (1,3,:)"),
        (0, "All-Gather B over (:,3,1)"),
        (1, "Reduce-Scatter C over (1,:,1)"),
    ] {
        let fiber = grid.fiber(coord, axis);
        let paper_coords: Vec<String> = fiber
            .iter()
            .map(|&r| {
                let c = grid.coord_of(r);
                format!("({},{},{})", c[0] + 1, c[1] + 1, c[2] + 1)
            })
            .collect();
        rows.push(vec![label.to_string(), format!("{}", paper_coords.join(" "))]);
    }
    print_table(&["collective", "processors (1-based, as in the figure)"], &rows);

    // ---- verify from the trace: the hero talked ONLY to its fiber peers ----
    let trace = out.reports[hero].trace.as_ref().expect("trace enabled");
    let mut partners = BTreeSet::new();
    for ev in trace {
        match ev.op {
            TraceOp::Send { to_world } => {
                partners.insert(to_world);
            }
            TraceOp::Recv { from_world } => {
                partners.insert(from_world);
            }
            _ => {}
        }
    }
    let mut fiber_peers = BTreeSet::new();
    for axis in 0..3 {
        for r in grid.fiber(coord, axis) {
            if r != hero {
                fiber_peers.insert(r);
            }
        }
    }
    println!("\ntraced communication partners of rank {hero}: {partners:?}");
    println!("fiber peers per the grid:                    {fiber_peers:?}");
    checks.check("hero communicates exactly with its three fibers", partners == fiber_peers);

    // Every collective involves 3 processors; the hero exchanges with at
    // most 2 peers per collective (recursive doubling is not applicable at
    // p = 3; the ring touches both neighbors).
    checks.check("hero has 6 distinct partners (2 per fiber)", partners.len() == 6);

    checks.finish();
}
