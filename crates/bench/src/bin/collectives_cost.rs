//! **E10 — collective cost optimality** (§3.1 / §5.1): the All-Gather and
//! Reduce-Scatter implementations used by Algorithm 1 move exactly
//! `(1 − 1/p)·w` words per processor (Thakur et al. 2005; Chan et al.
//! 2007) — the property §5.1's cost analysis, and hence the tightness
//! claim, relies on.
//!
//! Sweeps `p` and `w`, measures every algorithm variant, and compares to
//! the closed forms. Also shows the latency ablation (ring vs recursive
//! doubling: same bandwidth, `p−1` vs `log2 p` messages).
//!
//! ```sh
//! cargo run --release -p pmm-bench --bin collectives_cost
//! ```

use pmm_bench::{fnum, print_table, Checks};
use pmm_collectives::{
    all_gather, all_reduce, all_to_all, bcast, costs, reduce_scatter, AllGatherAlgo, AllReduceAlgo,
    AllToAllAlgo, BcastAlgo, ReduceScatterAlgo,
};
use pmm_simnet::{MachineParams, World};

fn main() {
    let mut checks = Checks::new();

    println!("collective bandwidth per processor (measured on the simulator)");
    println!("vs the (1 − 1/p)·W optimum, W = total data\n");

    let mut rows = Vec::new();
    for p in [2usize, 3, 4, 7, 8, 16, 32] {
        let w = 120usize; // per-rank block; W = p·w for AG/RS

        // All-Gather (both algorithms where applicable).
        for (name, algo) in [
            ("all-gather/ring", AllGatherAlgo::Ring),
            ("all-gather/recdoubling", AllGatherAlgo::RecursiveDoubling),
        ] {
            if matches!(algo, AllGatherAlgo::RecursiveDoubling) && !p.is_power_of_two() {
                continue;
            }
            let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
                let comm = rank.world_comm();
                all_gather(rank, &comm, &vec![1.0; w], algo);
                rank.time()
            });
            let measured = out.critical_path_time();
            let optimal = (1.0 - 1.0 / p as f64) * (p * w) as f64;
            let model = costs::all_gather_cost(algo, p, w);
            checks.check(format!("{name} p={p}: measured == model"), measured == model.words);
            checks.check(
                format!("{name} p={p}: bandwidth-optimal"),
                (measured - optimal).abs() < 1e-9,
            );
            rows.push(vec![name.into(), p.to_string(), fnum(measured), fnum(optimal)]);
        }

        // Reduce-Scatter.
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let comm = rank.world_comm();
            reduce_scatter(rank, &comm, &vec![1.0; p * w], ReduceScatterAlgo::Auto);
            rank.time()
        });
        let measured = out.critical_path_time();
        let optimal = (1.0 - 1.0 / p as f64) * (p * w) as f64;
        checks.check(
            format!("reduce-scatter p={p}: bandwidth-optimal"),
            (measured - optimal).abs() < 1e-9,
        );
        rows.push(vec!["reduce-scatter/auto".into(), p.to_string(), fnum(measured), fnum(optimal)]);

        // All-Reduce (Rabenseifner): optimal 2(1 − 1/p)·w.
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let comm = rank.world_comm();
            all_reduce(rank, &comm, &vec![1.0; p * w], AllReduceAlgo::ReduceScatterAllGather);
            rank.time()
        });
        let measured = out.critical_path_time();
        let optimal = 2.0 * (1.0 - 1.0 / p as f64) * (p * w) as f64;
        checks.check(format!("all-reduce p={p}: 2(1-1/p)w"), (measured - optimal).abs() < 1e-9);
        rows.push(vec!["all-reduce/rsag".into(), p.to_string(), fnum(measured), fnum(optimal)]);

        // All-to-All (pairwise): (p−1)·w.
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let comm = rank.world_comm();
            all_to_all(rank, &comm, &vec![1.0; p * w], AllToAllAlgo::Pairwise);
            rank.time()
        });
        let measured = out.critical_path_time();
        let optimal = ((p - 1) * w) as f64;
        checks.check(format!("all-to-all p={p}: (p-1)w"), (measured - optimal).abs() < 1e-9);
        rows.push(vec!["all-to-all/pairwise".into(), p.to_string(), fnum(measured), fnum(optimal)]);
    }
    print_table(&["collective", "p", "measured words", "optimal"], &rows);

    // ---- latency ablation ---------------------------------------------------
    println!("\nlatency ablation (α = 1, β = γ = 0): messages on the critical path");
    let params = MachineParams::new(1.0, 0.0, 0.0);
    let mut rows = Vec::new();
    for p in [4usize, 8, 16, 32] {
        let ring = World::new(p, params)
            .run(move |rank| {
                let comm = rank.world_comm();
                all_gather(rank, &comm, &[1.0; 4], AllGatherAlgo::Ring);
                rank.time()
            })
            .critical_path_time();
        let rd = World::new(p, params)
            .run(move |rank| {
                let comm = rank.world_comm();
                all_gather(rank, &comm, &[1.0; 4], AllGatherAlgo::RecursiveDoubling);
                rank.time()
            })
            .critical_path_time();
        checks.check(format!("latency p={p}: ring == p-1"), ring == (p - 1) as f64);
        checks.check(format!("latency p={p}: recdoubling == log2 p"), rd == (p.ilog2()) as f64);
        rows.push(vec![p.to_string(), fnum(ring), fnum(rd)]);
    }
    print_table(&["p", "ring (p-1 msgs)", "recursive doubling (log2 p)"], &rows);

    // ---- bcast variants -----------------------------------------------------
    println!("\nbroadcast bandwidth: binomial log2(p)·w vs scatter-allgather 2(1-1/p)·w");
    let mut rows = Vec::new();
    for p in [4usize, 8, 16] {
        let w = 160usize;
        let run = |algo: BcastAlgo| {
            World::new(p, MachineParams::BANDWIDTH_ONLY)
                .run(move |rank| {
                    let comm = rank.world_comm();
                    bcast(rank, &comm, &vec![1.0; w], 0, algo);
                })
                .critical_path_time()
        };
        let bin = run(BcastAlgo::Binomial);
        let sag = run(BcastAlgo::ScatterAllGather);
        checks.check(format!("bcast p={p}: SAG beats binomial at large w"), sag < bin);
        checks.check(
            format!("bcast p={p}: SAG == 2(1-1/p)w"),
            (sag - 2.0 * (1.0 - 1.0 / p as f64) * w as f64).abs() < 1e-9,
        );
        rows.push(vec![p.to_string(), fnum(bin), fnum(sag)]);
    }
    print_table(&["p", "binomial", "scatter-allgather"], &rows);

    checks.finish();
}
