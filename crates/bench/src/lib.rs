//! # pmm-bench — experiment harnesses and criterion benches
//!
//! One binary per table/figure/claim of the paper (see DESIGN.md §4):
//!
//! | binary | paper artifact |
//! |--------|----------------|
//! | `table1` | Table 1 — constants of prior vs. this work |
//! | `lemma2_cases` | Lemma 2 — the three solution regimes |
//! | `tightness` | Theorem 3 / Corollary 4 — measured == bound |
//! | `fig2` | Figure 2 — optimal grids for the §5.3 instance |
//! | `fig1` | Figure 1 — data/communication sets on a 3×3×3 grid |
//! | `eq3_check` | eq. (3) — Alg 1 cost formula vs. execution |
//! | `limited_memory` | §6.2 — bound crossover and memory footprints |
//! | `strong_scaling` | strong-scaling behavior (Ballard et al. 2012b) |
//! | `algo_compare` | §2.4 — Alg 1 vs Cannon/SUMMA/2.5D/CARMA |
//! | `collectives_cost` | §3.1/§5.1 — collective cost optimality |
//! | `phase_attribution` | eq. (3) per phase from the structured trace |
//! | `kernel_bench` | kernel tiers + calibrated α-β-γ-δ prediction gate |
//! | `calibrated_crossover` | §6.2 crossover re-expressed in calibrated seconds |
//!
//! Run all of them with `scripts/run_experiments.sh`. Criterion
//! wall-clock benches live in `benches/`; the [`calibrate`] module holds
//! the measured-hardware probes shared by `kernel_bench`,
//! `calibrated_crossover`, `pmm calibrate`, and `cargo xtask calibrate`
//! (see `docs/PERFORMANCE.md`).

pub mod calibrate;

use std::fmt::Display;

/// Render rows as a fixed-width aligned table with a header rule.
pub fn print_table<H: Display, C: Display>(headers: &[H], rows: &[Vec<C>]) {
    let headers: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    let rows: Vec<Vec<String>> =
        rows.iter().map(|r| r.iter().map(|c| c.to_string()).collect()).collect();
    let ncols = headers.len();
    let mut width = vec![0usize; ncols];
    for (i, h) in headers.iter().enumerate() {
        width[i] = width[i].max(h.chars().count());
    }
    for r in &rows {
        assert_eq!(r.len(), ncols, "row width disagrees with headers");
        for (i, c) in r.iter().enumerate() {
            width[i] = width[i].max(c.chars().count());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                s.push_str("  ");
            }
            let pad = width[i] - c.chars().count();
            for _ in 0..pad {
                s.push(' ');
            }
            s.push_str(c);
        }
        s
    };
    println!("{}", line(&headers));
    println!("{}", "-".repeat(width.iter().sum::<usize>() + 2 * (ncols - 1)));
    for r in &rows {
        println!("{}", line(r));
    }
}

/// Track pass/fail of in-harness verification checks and summarize.
#[derive(Default)]
pub struct Checks {
    passed: usize,
    failed: Vec<String>,
}

impl Checks {
    /// New empty check set.
    pub fn new() -> Checks {
        Checks::default()
    }

    /// Record a named check.
    pub fn check(&mut self, name: impl Into<String>, ok: bool) {
        if ok {
            self.passed += 1;
        } else {
            self.failed.push(name.into());
        }
    }

    /// Print a summary; exits nonzero on failure so harnesses can gate CI.
    pub fn finish(self) {
        if self.failed.is_empty() {
            println!("\n[checks] {} passed", self.passed);
        } else {
            println!("\n[checks] {} passed, {} FAILED:", self.passed, self.failed.len());
            for f in &self.failed {
                println!("  FAIL: {f}");
            }
            std::process::exit(1);
        }
    }
}

/// Format a float compactly (integers without decimals, large values in
/// scientific form).
pub fn fnum(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.fract() == 0.0 && x.abs() < 1e9 {
        format!("{x:.0}")
    } else if x.abs() >= 1e7 || x.abs() < 1e-3 {
        format!("{x:.3e}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(42.0), "42");
        assert_eq!(fnum(1.5), "1.500");
        assert_eq!(fnum(1e9), "1.000e9");
    }

    #[test]
    fn checks_pass_counting() {
        let mut c = Checks::new();
        c.check("a", true);
        c.check("b", true);
        assert_eq!(c.passed, 2);
        assert!(c.failed.is_empty());
        c.finish();
    }

    #[test]
    fn table_renders_without_panic() {
        print_table(&["x", "yy"], &[vec!["1".to_string(), "2".into()]]);
    }
}
